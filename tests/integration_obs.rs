//! End-to-end observability: the CLI captures a JSONL event trace and
//! a metrics snapshot, and the replay verifier reconstructs the
//! packing outcome from the trace **bit-for-bit**.

use dbp_core::Runner;
use mindbp::core::FirstFit;
use mindbp::obs::{parse_jsonl, verify, StepSeries};
use mindbp::workloads::load_instance;
use std::path::Path;

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("mindbp-integration-obs");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn cli_trace_replays_bit_identically() {
    let workload = tmp("workload.json");
    let events = tmp("events.jsonl");
    let metrics = tmp("metrics.json");

    // Generate a workload and pack it with observability attached.
    mindbp_cli::run(&args(&[
        "generate", "--family", "random", "--n", "40", "--mu", "4", "--seed", "11", "--out",
        &workload,
    ]))
    .unwrap();
    let packed = mindbp_cli::run(&args(&[
        "pack",
        "--trace",
        &workload,
        "--algo",
        "firstfit",
        "--events",
        &events,
        "--metrics",
        &metrics,
    ]))
    .unwrap();
    assert!(packed.contains("trace events"), "{packed}");
    assert!(Path::new(&events).exists());
    assert!(Path::new(&metrics).exists());

    // Re-run the same instance through the engine directly…
    let (_, instance) = load_instance(Path::new(&workload)).unwrap();
    let outcome = Runner::new(&instance).run(&mut FirstFit::new()).unwrap();

    // …and check the CLI-emitted trace reconstructs the outcome
    // exactly: same total usage (as an exact rational), same peak.
    let text = std::fs::read_to_string(&events).unwrap();
    let trace = parse_jsonl(&text).unwrap();
    let summary = verify(&trace, &outcome).unwrap();
    assert_eq!(summary.total_usage, outcome.total_usage());
    assert_eq!(summary.max_open_bins, outcome.max_open_bins());
    assert_eq!(summary.bins_opened, outcome.bins_opened());
    assert_eq!(summary.arrivals, 40);
    assert_eq!(summary.departures, 40);

    // The step series derived from the same trace agrees too.
    let series = StepSeries::from_events(&trace);
    let s = series.summary().unwrap();
    assert_eq!(s.usage_integral, outcome.total_usage());
    assert_eq!(s.utilization, outcome.utilization());

    // The metrics snapshot is valid JSON and counted every event.
    let snap = serde_json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counter = |name: &str| {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_int())
            .unwrap()
    };
    assert_eq!(counter("arrivals"), 40);
    assert_eq!(counter("departures"), 40);
    assert_eq!(counter("bins_opened"), outcome.bins_opened() as i128);

    // `stats` reads the emitted event log and reports a clean replay.
    let stats = mindbp_cli::run(&args(&["stats", "--trace", &events])).unwrap();
    assert!(stats.contains("replay: OK"), "{stats}");

    for f in [&workload, &events, &metrics] {
        std::fs::remove_file(f).unwrap();
    }
}
