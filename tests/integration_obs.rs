//! End-to-end observability: the CLI captures a JSONL event trace and
//! a metrics snapshot, and the replay verifier reconstructs the
//! packing outcome from the trace **bit-for-bit**.

use dbp_core::Runner;
use mindbp::core::FirstFit;
use mindbp::obs::{parse_jsonl, verify, StepSeries};
use mindbp::workloads::load_instance;
use std::path::Path;

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("mindbp-integration-obs");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn cli_trace_replays_bit_identically() {
    let workload = tmp("workload.json");
    let events = tmp("events.jsonl");
    let metrics = tmp("metrics.json");

    // Generate a workload and pack it with observability attached.
    mindbp_cli::run(&args(&[
        "generate", "--family", "random", "--n", "40", "--mu", "4", "--seed", "11", "--out",
        &workload,
    ]))
    .unwrap();
    let packed = mindbp_cli::run(&args(&[
        "pack",
        "--trace",
        &workload,
        "--algo",
        "firstfit",
        "--events",
        &events,
        "--metrics",
        &metrics,
    ]))
    .unwrap();
    assert!(packed.contains("trace events"), "{packed}");
    assert!(Path::new(&events).exists());
    assert!(Path::new(&metrics).exists());

    // Re-run the same instance through the engine directly…
    let (_, instance) = load_instance(Path::new(&workload)).unwrap();
    let outcome = Runner::new(&instance).run(&mut FirstFit::new()).unwrap();

    // …and check the CLI-emitted trace reconstructs the outcome
    // exactly: same total usage (as an exact rational), same peak.
    let text = std::fs::read_to_string(&events).unwrap();
    let trace = parse_jsonl(&text).unwrap();
    let summary = verify(&trace, &outcome).unwrap();
    assert_eq!(summary.total_usage, outcome.total_usage());
    assert_eq!(summary.max_open_bins, outcome.max_open_bins());
    assert_eq!(summary.bins_opened, outcome.bins_opened());
    assert_eq!(summary.arrivals, 40);
    assert_eq!(summary.departures, 40);

    // The step series derived from the same trace agrees too.
    let series = StepSeries::from_events(&trace);
    let s = series.summary().unwrap();
    assert_eq!(s.usage_integral, outcome.total_usage());
    assert_eq!(s.utilization, outcome.utilization());

    // The metrics snapshot is valid JSON and counted every event.
    let snap = serde_json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counter = |name: &str| {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_int())
            .unwrap()
    };
    assert_eq!(counter("arrivals"), 40);
    assert_eq!(counter("departures"), 40);
    assert_eq!(counter("bins_opened"), outcome.bins_opened() as i128);

    // `stats` reads the emitted event log and reports a clean replay.
    let stats = mindbp_cli::run(&args(&["stats", "--trace", &events])).unwrap();
    assert!(stats.contains("replay: OK"), "{stats}");

    for f in [&workload, &events, &metrics] {
        std::fs::remove_file(f).unwrap();
    }
}

#[test]
fn live_session_telemetry_pipeline_is_bounded_and_lossless() {
    use mindbp::core::session::{Event, Session};
    use mindbp::core::{event_schedule, FirstFitFast};
    use mindbp::numeric::rat;
    use mindbp::obs::{
        parse_jsonl, set_ratio_gauge, telemetry_registry, verify, TelemetrySink, Watchdog,
    };
    use mindbp::simcore::EventClass;
    use mindbp::workloads::RandomWorkload;

    let instance = RandomWorkload::with_mu(80, rat(4, 1), 7).generate();
    let events: Vec<Event> = event_schedule(&instance)
        .iter()
        .map(|e| match e.class {
            EventClass::Arrival => Event::Arrive {
                id: e.payload,
                size: instance.item(e.payload).size,
                time: e.time,
            },
            EventClass::Departure => Event::Depart {
                id: e.payload,
                time: e.time,
            },
            EventClass::Control => unreachable!(),
        })
        .collect();

    // Stream the whole instance through a live session with stream
    // telemetry on and a small bounded sink spilling every event.
    let spill_path = tmp("live-spill.jsonl");
    let mut sink = TelemetrySink::new()
        .ring(16)
        .spill(std::fs::File::create(&spill_path).unwrap());
    let mut session = Session::builder(FirstFitFast::new())
        .telemetry()
        .observer(&mut sink)
        .build()
        .unwrap();
    session.ingest(&events).unwrap();
    let metrics = session.metrics();
    let outcome = session.finish().unwrap();
    sink.flush();

    // The ring stayed bounded while the spill stayed lossless: the
    // JSONL file replays against the outcome bit-for-bit even though
    // only the 16 most recent events are held in memory.
    assert_eq!(sink.recent().count(), 16);
    assert_eq!(sink.evicted(), sink.kept() - 16);
    assert_eq!(sink.kept(), sink.seen());
    assert!(sink.spill_error().is_none());
    let trace = parse_jsonl(&std::fs::read_to_string(&spill_path).unwrap()).unwrap();
    assert_eq!(sink.spilled_lines() as usize, trace.len());
    let summary = verify(&trace, &outcome).unwrap();
    assert_eq!(summary.total_usage, outcome.total_usage());
    assert_eq!(summary.max_open_bins, outcome.max_open_bins());

    // Session telemetry feeds the lower-bound machinery: vol/span are
    // genuine lower bounds, so the live ratio upper estimate is ≥ 1,
    // and a deliberately tight watchdog threshold trips on it.
    let ratio = metrics.ratio_upper_estimate().unwrap();
    assert!(ratio >= rat(1, 1));
    let mut dog = Watchdog::with_threshold(rat(1, 1000));
    assert!(dog.check(&metrics).is_some());

    // The same metrics render as a valid OpenMetrics page with the
    // ratio gauge the scrape endpoint publishes.
    let mut registry = telemetry_registry(&metrics);
    set_ratio_gauge(&mut registry);
    let page = registry.to_openmetrics();
    assert!(page.contains("dbp_ratio_upper_estimate"), "{page}");
    assert!(page.ends_with("# EOF\n"), "{page}");

    std::fs::remove_file(&spill_path).unwrap();
}
