//! Small-scale runs of every experiment module: the tables that
//! EXPERIMENTS.md reports must be regenerable (and shaped correctly)
//! under `cargo test`, not just by the release binaries.

use dbp_bench as bench;

#[test]
fn e1_theorem1_table() {
    let (rows, table) = bench::e1_theorem1::run(&[2, 8], 30, 4);
    assert_eq!(rows.len(), 2);
    assert_eq!(table.len(), 2);
    assert!(table.col("µ+4").is_some());
    for r in &rows {
        assert!(r.max_ratio <= r.bound);
    }
}

#[test]
fn e2_nextfit_table() {
    let (rows, table) = bench::e2_nextfit::run(&[4, 8], &[3]);
    assert_eq!(rows.len(), 2);
    assert!(rows[1].ratio > rows[0].ratio);
    assert!(table.to_string().contains("NF/OPT"));
}

#[test]
fn e3_universal_table() {
    let (rows, _) = bench::e3_universal::run(&[3], &[4, 8]);
    let first = bench::e3_universal::ratio_of(&rows[0], "FirstFit").unwrap();
    let later = bench::e3_universal::ratio_of(&rows[1], "FirstFit").unwrap();
    assert!(later > first);
}

#[test]
fn e4_ladder_table() {
    let (rows, _) = bench::e4_anyfit::run(&[2], &[4, 8]);
    assert!(rows[1].ratios[0].1 > rows[0].ratios[0].1);
}

#[test]
fn e5_scatter_table() {
    let (rows, _) = bench::e5_bestfit::run(&[6], &[6]);
    assert!(rows[0].bf_ratio > rows[0].ff_ratio);
}

#[test]
fn e6_beta_table() {
    let (rows, _) = bench::e6_beta::run(&[2], &[2], 24, 3);
    assert!(rows[0].instances > 0);
}

#[test]
fn e7_hybrid_table() {
    let (rows, _) = bench::e7_hybrid::run(&[6], 8, 24, 2);
    assert!(rows[0].hff_adversarial < rows[0].ff_adversarial);
}

#[test]
fn e8_gaming_table() {
    let (rows, table) = bench::e8_gaming::run(&[15], 1);
    assert!(rows[0].sessions > 0);
    assert!(table.len() >= 5);
}

#[test]
fn e9_billing_table() {
    let (rows, _) = bench::e9_billing::run(4);
    assert!(rows.iter().all(|r| r.billed >= r.usage));
}

#[test]
fn e10_certify_table() {
    let (tallies, _) = bench::e10_certify::run(&[4], 16, 4);
    assert!(tallies.values().all(|t| t.fail == 0));
}

#[test]
fn e11_multidim_table() {
    let (rows, _) = bench::e11_multidim::run(&[2], 20, 3);
    assert_eq!(rows.len(), 3); // three correlation profiles
}

#[test]
fn e12_clairvoyance_table() {
    let (rows, _) = bench::e12_clairvoyance::run(&[8], 8, 20, 2);
    assert!(rows[0].cv_gadget < rows[0].ff_gadget);
}

#[test]
fn e13_standard_dbp_table() {
    let (rows, _) = bench::e13_standard_dbp::run(&[2], 30, 3);
    assert!(rows.iter().any(|r| r.algorithm == "NextFit"));
}

#[test]
fn e14_adaptive_table() {
    let (rows, _) = bench::e14_adaptive::run(&[4], 8);
    let ff = rows.iter().find(|r| r.algorithm == "FirstFit").unwrap();
    assert_eq!(ff.cost, dbp_numeric::rat(32, 1));
}

#[test]
fn all_figures_render() {
    for fig in [
        bench::figures::fig1_span(),
        bench::figures::fig2_usage_periods(),
        bench::figures::fig3_selection(),
        bench::figures::fig4_supplier(),
        bench::figures::fig5_case3(),
        bench::figures::fig6_case4(),
    ] {
        assert!(fig.contains("Figure"));
        assert!(fig.lines().count() > 4);
    }
}
