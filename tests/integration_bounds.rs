//! Integration tests of the paper's quantitative landscape: the
//! upper/lower-bound ecosystem reproduced end to end.

use mindbp::analysis::optimal::{opt_total, OptConfig};
use mindbp::analysis::{measure_ratio, profile_lower_bound, ExactBinPacking};
use mindbp::numeric::{rat, Rational};
use mindbp::prelude::*;
use mindbp::workloads::adversarial::{any_fit_ladder, next_fit_pairs, universal_mu_pairs};

/// Theorem 1 never breaks, even on the adversarial families designed
/// to be worst cases.
#[test]
fn theorem1_on_adversarial_families() {
    for mu in [1u32, 2, 5, 9] {
        for (inst, _) in [
            next_fit_pairs(10, mu),
            universal_mu_pairs(10, mu, 10),
            any_fit_ladder(10, mu),
        ] {
            let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
            let rep = measure_ratio(&inst, &out);
            let bound = rep.theorem1_bound().unwrap();
            let ratio = rep.exact_ratio().or(rep.ratio_upper).unwrap();
            assert!(ratio <= bound, "µ={mu}: FF ratio {ratio} > bound {bound}");
        }
    }
}

/// The ordering of the bound ecosystem on gadgets:
/// universal family pushes FF above µ−ε, ladder pushes Any Fit above
/// µ (towards µ+1), and everything respects µ+4.
#[test]
fn lower_bound_ordering() {
    let mu = 6u32;
    let mu_r = rat(mu as i128, 1);

    // Universal family at large k: ratio close to µ.
    let (inst, _) = universal_mu_pairs(14, mu, 14);
    let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    let universal = measure_ratio(&inst, &out).exact_ratio().unwrap();
    // kµ/(k+µ−1) with k = 14, µ = 6 is 84/19 ≈ 4.42 — already most of
    // the way to µ.
    assert!(
        universal > mu_r * rat(2, 3),
        "universal ratio {universal} too low"
    );
    assert!(universal < mu_r, "universal family cannot exceed µ");

    // Ladder at the same scale: strictly stronger (→ µ+1).
    let (inst, _) = any_fit_ladder(14, mu);
    let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    let ladder = measure_ratio(&inst, &out).exact_ratio().unwrap();
    assert!(
        ladder > universal,
        "ladder ({ladder}) should beat the universal family ({universal})"
    );
    assert!(ladder < mu_r + Rational::ONE);
}

/// `∫OPT(R,t)dt` through the exact solver is consistent with the
/// certified profile bound and with FFD-based brackets at every
/// capping level.
#[test]
fn adversary_brackets_are_nested() {
    for seed in 0..6 {
        let inst = RandomWorkload::with_mu(36, rat(5, 1), seed).generate();
        let solver = ExactBinPacking::new();
        let exact = opt_total(&inst, &solver, OptConfig::default());
        let profile_lb = profile_lower_bound(&inst);
        assert!(profile_lb <= exact.lower);
        let mut prev = (Rational::ZERO, exact.upper + Rational::ONE);
        for cap in [0usize, 2, 6, 12, 28] {
            let bracket = opt_total(&inst, &solver, OptConfig::with_max_exact(cap));
            assert!(bracket.lower <= exact.lower, "cap {cap}");
            assert!(bracket.upper >= exact.upper, "cap {cap}");
            // Brackets tighten (weakly) as the cap rises.
            assert!(bracket.lower >= prev.0, "cap {cap} lower regressed");
            assert!(bracket.upper <= prev.1, "cap {cap} upper regressed");
            prev = (bracket.lower, bracket.upper);
        }
    }
}

/// Every algorithm's measured cost is sandwiched:
/// `OPT ≤ cost ≤ (paper bound for FF) / (known gadget behavior)`.
#[test]
fn costs_always_dominate_the_adversary() {
    for seed in 0..5 {
        let inst = RandomWorkload::with_mu(40, rat(4, 1), seed).generate();
        let solver = ExactBinPacking::new();
        let opt = opt_total(&inst, &solver, OptConfig::default());
        for mut algo in [
            Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(NextFit::new()),
            Box::new(HybridFirstFit::classic()),
        ] {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            assert!(
                out.total_usage() >= opt.lower,
                "{} beat the adversary",
                out.algorithm()
            );
        }
    }
}

/// Decimal sanity for the §VIII formulas across n at fixed µ: the
/// measured ratio is monotone and bracketed by the paper's printed
/// formula and 2µ.
#[test]
fn section8_ratio_bracket() {
    let mu = 3u32;
    let mut prev = Rational::ZERO;
    for n in [4u32, 8, 16, 32, 64] {
        let (inst, pred) = next_fit_pairs(n, mu);
        let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        let ratio = rep.exact_ratio().unwrap();
        let paper = mindbp::workloads::adversarial::next_fit_paper_formula(n, mu);
        assert!(ratio >= paper, "n={n}");
        assert!(ratio < pred.limit_ratio, "n={n}");
        assert!(ratio > prev, "n={n} not monotone");
        prev = ratio;
    }
}
