//! End-to-end pipeline tests: generators → engine → analysis →
//! certification → cloud simulation, across crates.

use mindbp::analysis::{certify_first_fit, certify_packing, measure_ratio, opt_lower_bound};
use mindbp::cloudsim::{simulate, BillingModel};
use mindbp::numeric::{rat, Rational};
use mindbp::prelude::*;
use mindbp::workloads::adversarial::{
    any_fit_ladder, best_fit_scatter, next_fit_pairs, universal_mu_pairs,
};
use mindbp::workloads::{load_instance, save_instance, Trace};

/// The full line-up used across integration tests.
fn lineup() -> Vec<Box<dyn PackingAlgorithm>> {
    vec![
        Box::new(FirstFit::new()),
        Box::new(BestFit::new()),
        Box::new(WorstFit::new()),
        Box::new(NextFit::new()),
        Box::new(HybridFirstFit::classic()),
    ]
}

#[test]
fn random_workloads_flow_through_the_whole_stack() {
    for seed in 0..8 {
        let inst = RandomWorkload::with_mu(60, rat(6, 1), seed).generate();
        for mut algo in lineup() {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            // Cost dominated by the certified lower bound.
            assert!(out.total_usage() >= opt_lower_bound(&inst));
            // Structural certification holds for every algorithm.
            let report = certify_packing(&inst, &out, false);
            assert!(report.all_passed(), "{}: {report}", out.algorithm());
        }
        // Full certification (incl. Theorem 1) for First Fit.
        let report = certify_first_fit(&inst);
        assert!(report.all_passed(), "{report}");
    }
}

#[test]
fn gadget_instances_certify_under_first_fit() {
    let gadgets = vec![
        next_fit_pairs(8, 4).0,
        universal_mu_pairs(8, 4, 8).0,
        any_fit_ladder(8, 3).0,
        best_fit_scatter(8, 4).0,
    ];
    for inst in gadgets {
        let report = certify_first_fit(&inst);
        assert!(report.all_passed(), "{report}");
    }
}

#[test]
fn cloudsim_agrees_with_core_accounting() {
    let trace = GamingConfig {
        peak_sessions_per_hour: 30,
        ..Default::default()
    }
    .generate();
    let inst = &trace.instance;
    let outcome = Runner::new(inst).run(&mut FirstFit::new()).unwrap();
    let report = simulate(inst)
        .billing(BillingModel::Continuous)
        .run(&mut FirstFit::new())
        .unwrap();
    // Same dispatch, same books.
    assert_eq!(report.usage_time, outcome.total_usage());
    assert_eq!(report.billed_time, outcome.total_usage());
    assert_eq!(report.servers_used, outcome.bins_opened());
    assert_eq!(report.peak_servers, outcome.max_open_bins());
    // Quantized billing only ever adds cost.
    let hourly = simulate(inst)
        .billing(BillingModel::hourly())
        .run(&mut FirstFit::new())
        .unwrap();
    assert!(hourly.billed_time >= report.billed_time);
    assert_eq!(hourly.usage_time, report.usage_time);
}

#[test]
fn traces_round_trip_and_reproduce_results() {
    let inst = RandomWorkload::with_sharp_mu(40, rat(5, 1), 77).generate();
    let before = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();

    let dir = std::env::temp_dir().join("mindbp-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let trace = Trace::from_instance("integration", "round trip", &inst).with_meta("seed", 77);
    save_instance(&path, &trace).unwrap();
    let (_trace2, inst2) = load_instance(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(inst, inst2);
    let after = Runner::new(&inst2).run(&mut FirstFit::new()).unwrap();
    assert_eq!(before, after, "replay from disk must be identical");
}

#[test]
fn ratio_reports_are_internally_consistent() {
    for seed in [1u64, 9, 23] {
        let inst = RandomWorkload::with_mu(30, rat(3, 1), seed).generate();
        for mut algo in lineup() {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            let rep = measure_ratio(&inst, &out);
            assert!(rep.opt_lower <= rep.opt_upper);
            if let (Some(lo), Some(hi)) = (rep.ratio_lower, rep.ratio_upper) {
                assert!(lo <= hi);
                assert!(
                    lo >= Rational::ONE,
                    "{}: beat the adversary?",
                    rep.algorithm
                );
            }
            assert!(rep.within_theorem1() || rep.algorithm != "FirstFit");
        }
    }
}

#[test]
fn parallel_sweep_matches_serial() {
    let seeds: Vec<u64> = (0..12).collect();
    let serial: Vec<Rational> = seeds
        .iter()
        .map(|&s| {
            let inst = RandomWorkload::with_mu(40, rat(4, 1), s).generate();
            Runner::new(&inst)
                .run(&mut FirstFit::new())
                .unwrap()
                .total_usage()
        })
        .collect();
    let parallel = mindbp::par::par_map(&seeds, |&s| {
        let inst = RandomWorkload::with_mu(40, rat(4, 1), s).generate();
        Runner::new(&inst)
            .run(&mut FirstFit::new())
            .unwrap()
            .total_usage()
    });
    assert_eq!(serial, parallel);
}
