//! Property-based tests for exact arithmetic and interval algebra.
//!
//! These are the foundation invariants the whole certification suite
//! leans on: if `Rational` or `IntervalSet` misbehaved, the checks of
//! the paper's propositions would be meaningless.

use dbp_numeric::{Interval, IntervalSet, Rational};
use proptest::prelude::*;

/// Small-magnitude rationals: numerators in ±10⁴, denominators in
/// 1..=100 — comfortably inside i128 for any polynomial combination.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-10_000i128..=10_000, 1i128..=100).prop_map(|(n, d)| Rational::new(n, d))
}

fn small_interval() -> impl Strategy<Value = Interval> {
    (small_rational(), small_rational()).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // ---- Rational: ordered-field laws ----

    #[test]
    fn add_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in small_rational()) {
        prop_assert_eq!(a + (-a), Rational::ZERO);
        prop_assert_eq!(a - a, Rational::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::ONE);
        prop_assert_eq!(a / a, Rational::ONE);
    }

    #[test]
    fn normalization_is_canonical(n in -10_000i128..=10_000, d in 1i128..=100, k in 1i128..=50) {
        prop_assert_eq!(Rational::new(n, d), Rational::new(n * k, d * k));
        prop_assert_eq!(Rational::new(n, d), Rational::new(-n * k, -d * k));
    }

    #[test]
    fn order_total_and_compatible(a in small_rational(), b in small_rational(), c in small_rational()) {
        // trichotomy
        let lt = a < b;
        let gt = a > b;
        let eq = a == b;
        prop_assert_eq!(u8::from(lt) + u8::from(gt) + u8::from(eq), 1);
        // translation invariance
        prop_assert_eq!(a < b, a + c < b + c);
        // scaling by a positive preserves order
        prop_assume!(c.is_positive());
        prop_assert_eq!(a < b, a * c < b * c);
    }

    #[test]
    fn floor_ceil_sandwich(a in small_rational()) {
        let f = Rational::from_int(a.floor());
        let c = Rational::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Rational::ONE);
        prop_assert!(c - a < Rational::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        } else {
            prop_assert_eq!(c - f, Rational::ONE);
        }
    }

    #[test]
    fn parse_display_round_trip(a in small_rational()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
    }

    #[test]
    fn to_f64_monotone(a in small_rational(), b in small_rational()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    // ---- Interval laws ----

    #[test]
    fn intersection_commutes(a in small_interval(), b in small_interval()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.overlap_len(&b), b.overlap_len(&a));
    }

    #[test]
    fn intersection_within_hull(a in small_interval(), b in small_interval()) {
        if let Some(x) = a.intersect(&b) {
            prop_assert!(a.contains(&x));
            prop_assert!(b.contains(&x));
            prop_assert!(x.len() <= a.len().min(b.len()));
        }
        let h = a.hull(&b);
        prop_assert!(h.contains(&a) && h.contains(&b));
    }

    #[test]
    fn split_partitions(a in small_interval(), t in small_rational()) {
        let (l, r) = a.split_at(t);
        prop_assert_eq!(l.len() + r.len(), a.len());
        if !l.is_empty() { prop_assert_eq!(l.lo(), a.lo()); }
        if !r.is_empty() { prop_assert_eq!(r.hi(), a.hi()); }
        prop_assert_eq!(l.hi(), r.lo());
    }

    // ---- IntervalSet laws ----

    #[test]
    fn set_measure_subadditive(ivs in prop::collection::vec(small_interval(), 0..20)) {
        let total: Rational = ivs.iter().map(Interval::len).sum();
        let set = IntervalSet::from_intervals(ivs.iter().copied());
        prop_assert!(set.measure() <= total);
        // Every input interval is covered by the set.
        for i in &ivs {
            prop_assert!(set.contains_interval(i));
        }
    }

    #[test]
    fn set_components_normalized(ivs in prop::collection::vec(small_interval(), 0..20)) {
        let set = IntervalSet::from_intervals(ivs.iter().copied());
        let comps = set.components();
        for w in comps.windows(2) {
            prop_assert!(w[0].hi() < w[1].lo(), "components must be separated: {:?}", comps);
        }
        for c in comps {
            prop_assert!(!c.is_empty());
        }
    }

    #[test]
    fn incremental_insert_matches_batch(ivs in prop::collection::vec(small_interval(), 0..20)) {
        let batch = IntervalSet::from_intervals(ivs.iter().copied());
        let mut inc = IntervalSet::new();
        for i in &ivs {
            inc.insert(*i);
        }
        prop_assert_eq!(batch, inc);
    }

    #[test]
    fn union_is_lub(a in prop::collection::vec(small_interval(), 0..10),
                    b in prop::collection::vec(small_interval(), 0..10)) {
        let sa = IntervalSet::from_intervals(a.iter().copied());
        let sb = IntervalSet::from_intervals(b.iter().copied());
        let u = sa.union(&sb);
        prop_assert!(u.measure() >= sa.measure().max(sb.measure()));
        prop_assert!(u.measure() <= sa.measure() + sb.measure());
        for c in sa.components().iter().chain(sb.components()) {
            prop_assert!(u.contains_interval(c));
        }
    }

    #[test]
    fn inclusion_exclusion(a in prop::collection::vec(small_interval(), 0..10),
                           b in prop::collection::vec(small_interval(), 0..10)) {
        let sa = IntervalSet::from_intervals(a.iter().copied());
        let sb = IntervalSet::from_intervals(b.iter().copied());
        let u = sa.union(&sb).measure();
        let i = sa.intersection(&sb).measure();
        prop_assert_eq!(u + i, sa.measure() + sb.measure());
    }

    #[test]
    fn overlap_len_matches_intersection(ivs in prop::collection::vec(small_interval(), 0..10),
                                        probe in small_interval()) {
        let set = IntervalSet::from_intervals(ivs.iter().copied());
        let expected = set
            .intersection(&IntervalSet::from_intervals([probe]))
            .measure();
        prop_assert_eq!(set.overlap_len(&probe), expected);
    }

    #[test]
    fn point_membership_agrees_with_components(
        ivs in prop::collection::vec(small_interval(), 0..10),
        t in small_rational()
    ) {
        let set = IntervalSet::from_intervals(ivs.iter().copied());
        let direct = set.components().iter().any(|c| c.contains_point(t));
        prop_assert_eq!(set.contains_point(t), direct);
    }
}
