//! Normalized unions of disjoint half-open intervals.
//!
//! [`IntervalSet`] is the measure-theoretic workhorse of the
//! reproduction: the paper's `span(R)` (§III.A, Figure 1) is the
//! measure of the union of the items' active intervals, and Lemma 2
//! ("the supplier periods of all the single and consolidated
//! l-subperiods do not intersect with each other") is checked by
//! asserting that the measure of the union equals the sum of the
//! individual lengths.

use crate::{Interval, Rational};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of rationals represented as a sorted list of disjoint,
/// non-abutting, non-empty half-open intervals.
///
/// ```
/// use dbp_numeric::{iv, rat, IntervalSet};
/// let mut s = IntervalSet::new();
/// s.insert(iv(0, 2));
/// s.insert(iv(5, 7));
/// s.insert(iv(1, 6)); // bridges the gap
/// assert_eq!(s.measure(), rat(7, 1));
/// assert_eq!(s.components().len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Invariant: sorted by `lo`, pairwise disjoint, no abutting
    /// pairs (`a.hi < b.lo` for consecutive members), no empties.
    parts: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    #[inline]
    pub fn new() -> IntervalSet {
        IntervalSet { parts: Vec::new() }
    }

    /// Builds a set from arbitrary intervals (normalizing).
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> IntervalSet {
        let mut parts: Vec<Interval> = iter.into_iter().filter(|i| !i.is_empty()).collect();
        parts.sort_by(|a, b| a.lo().cmp(&b.lo()).then(a.hi().cmp(&b.hi())));
        let mut merged: Vec<Interval> = Vec::with_capacity(parts.len());
        for p in parts {
            match merged.last_mut() {
                Some(last) if p.lo() <= last.hi() => {
                    if p.hi() > last.hi() {
                        *last = Interval::new(last.lo(), p.hi());
                    }
                }
                _ => merged.push(p),
            }
        }
        IntervalSet { parts: merged }
    }

    /// The maximal disjoint intervals composing the set.
    #[inline]
    pub fn components(&self) -> &[Interval] {
        &self.parts
    }

    /// `true` iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total measure (sum of component lengths). This is the paper's
    /// `span(R)` when the set is the union of item activity intervals.
    #[inline]
    pub fn measure(&self) -> Rational {
        self.parts.iter().map(Interval::len).sum()
    }

    /// Inserts an interval, merging as needed. Amortized `O(n)`.
    pub fn insert(&mut self, interval: Interval) {
        if interval.is_empty() {
            return;
        }
        // Fast path: append beyond the current end (the packing engine
        // inserts usage periods in roughly increasing order).
        if let Some(last) = self.parts.last_mut() {
            if interval.lo() > last.hi() {
                self.parts.push(interval);
                return;
            }
            if interval.lo() >= last.lo() {
                if interval.hi() > last.hi() {
                    if interval.lo() <= last.hi() {
                        *last = Interval::new(last.lo(), interval.hi());
                        return;
                    }
                } else {
                    return; // fully covered
                }
            }
        } else {
            self.parts.push(interval);
            return;
        }
        // General path: locate the affected range with binary search.
        let lo_idx = self.parts.partition_point(|p| p.hi() < interval.lo());
        let hi_idx = self.parts.partition_point(|p| p.lo() <= interval.hi());
        if lo_idx == hi_idx {
            self.parts.insert(lo_idx, interval);
            return;
        }
        let new_lo = interval.lo().min(self.parts[lo_idx].lo());
        let new_hi = interval.hi().max(self.parts[hi_idx - 1].hi());
        self.parts
            .splice(lo_idx..hi_idx, [Interval::new(new_lo, new_hi)]);
    }

    /// `true` iff `t` belongs to the set.
    pub fn contains_point(&self, t: Rational) -> bool {
        let idx = self.parts.partition_point(|p| p.hi() <= t);
        self.parts.get(idx).is_some_and(|p| p.contains_point(t))
    }

    /// `true` iff the interval is entirely covered by the set.
    pub fn contains_interval(&self, interval: &Interval) -> bool {
        if interval.is_empty() {
            return true;
        }
        let idx = self.parts.partition_point(|p| p.hi() <= interval.lo());
        self.parts.get(idx).is_some_and(|p| p.contains(interval))
    }

    /// Union of two sets.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.parts.iter().chain(other.parts.iter()).copied())
    }

    /// Intersection of two sets (linear merge).
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.parts.len() && j < other.parts.len() {
            let a = self.parts[i];
            let b = other.parts[j];
            if let Some(x) = a.intersect(&b) {
                out.push(x);
            }
            if a.hi() <= b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { parts: out }
    }

    /// Measure of the intersection with a single interval.
    pub fn overlap_len(&self, interval: &Interval) -> Rational {
        if interval.is_empty() {
            return Rational::ZERO;
        }
        let start = self.parts.partition_point(|p| p.hi() <= interval.lo());
        self.parts[start..]
            .iter()
            .take_while(|p| p.lo() < interval.hi())
            .map(|p| p.overlap_len(interval))
            .sum()
    }

    /// Measure of `self \ other`.
    pub fn difference_measure(&self, other: &IntervalSet) -> Rational {
        self.measure() - self.intersection(other).measure()
    }

    /// The convex hull of the set, or `None` when empty.
    pub fn hull(&self) -> Option<Interval> {
        match (self.parts.first(), self.parts.last()) {
            (Some(f), Some(l)) => Some(Interval::new(f.lo(), l.hi())),
            _ => None,
        }
    }

    /// Checks that a family of intervals is pairwise disjoint, i.e.
    /// the measure of the union equals the sum of lengths. Empty
    /// members are ignored. This is the executable form of Lemma 2.
    pub fn pairwise_disjoint<'a, I>(intervals: I) -> bool
    where
        I: IntoIterator<Item = &'a Interval>,
    {
        let items: Vec<Interval> = intervals.into_iter().copied().collect();
        let total: Rational = items.iter().map(Interval::len).sum();
        let set = IntervalSet::from_intervals(items);
        set.measure() == total
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.parts.iter().enumerate() {
            if k > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{iv, rat};

    #[test]
    fn from_intervals_normalizes() {
        let s = IntervalSet::from_intervals([iv(4, 6), iv(0, 2), iv(1, 3), iv(8, 8)]);
        assert_eq!(s.components(), &[iv(0, 3), iv(4, 6)]);
        assert_eq!(s.measure(), rat(5, 1));
    }

    #[test]
    fn abutting_intervals_merge() {
        let s = IntervalSet::from_intervals([iv(0, 2), iv(2, 4)]);
        assert_eq!(s.components(), &[iv(0, 4)]);
    }

    #[test]
    fn insert_fast_path_appends() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 1));
        s.insert(iv(2, 3));
        s.insert(iv(5, 6));
        assert_eq!(s.components().len(), 3);
        assert_eq!(s.measure(), rat(3, 1));
    }

    #[test]
    fn insert_extends_last() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 2));
        s.insert(iv(1, 4)); // overlaps last
        assert_eq!(s.components(), &[iv(0, 4)]);
        s.insert(iv(4, 5)); // abuts last
        assert_eq!(s.components(), &[iv(0, 5)]);
        s.insert(iv(2, 3)); // covered
        assert_eq!(s.components(), &[iv(0, 5)]);
    }

    #[test]
    fn insert_general_path_bridges() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 1));
        s.insert(iv(3, 4));
        s.insert(iv(6, 7));
        s.insert(iv(1, 6)); // bridges first two gaps (abuts both ends)
        assert_eq!(s.components(), &[iv(0, 7)]);
    }

    #[test]
    fn insert_in_middle() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 1));
        s.insert(iv(10, 11));
        s.insert(iv(4, 5));
        assert_eq!(s.components(), &[iv(0, 1), iv(4, 5), iv(10, 11)]);
    }

    #[test]
    fn membership_queries() {
        let s = IntervalSet::from_intervals([iv(0, 2), iv(5, 8)]);
        assert!(s.contains_point(rat(1, 1)));
        assert!(!s.contains_point(rat(2, 1)));
        assert!(s.contains_point(rat(5, 1)));
        assert!(!s.contains_point(rat(3, 1)));
        assert!(s.contains_interval(&iv(6, 8)));
        assert!(!s.contains_interval(&iv(1, 6)));
        assert!(s.contains_interval(&Interval::empty()));
    }

    #[test]
    fn union_and_intersection() {
        let a = IntervalSet::from_intervals([iv(0, 4), iv(6, 10)]);
        let b = IntervalSet::from_intervals([iv(2, 7), iv(9, 12)]);
        assert_eq!(a.union(&b).components(), &[iv(0, 12)]);
        assert_eq!(
            a.intersection(&b).components(),
            &[iv(2, 4), iv(6, 7), iv(9, 10)]
        );
        assert_eq!(a.difference_measure(&b), rat(4, 1));
    }

    #[test]
    fn overlap_len_queries() {
        let s = IntervalSet::from_intervals([iv(0, 2), iv(5, 8)]);
        assert_eq!(s.overlap_len(&iv(1, 6)), rat(2, 1));
        assert_eq!(s.overlap_len(&iv(2, 5)), Rational::ZERO);
        assert_eq!(s.overlap_len(&Interval::empty()), Rational::ZERO);
    }

    #[test]
    fn hull_and_empty() {
        let s = IntervalSet::from_intervals([iv(1, 2), iv(7, 9)]);
        assert_eq!(s.hull(), Some(iv(1, 9)));
        assert_eq!(IntervalSet::new().hull(), None);
        assert!(IntervalSet::new().is_empty());
    }

    #[test]
    fn pairwise_disjoint_detects_overlap() {
        assert!(IntervalSet::pairwise_disjoint([iv(0, 1), iv(2, 3)].iter()));
        // Abutting counts as disjoint (no shared point).
        assert!(IntervalSet::pairwise_disjoint([iv(0, 1), iv(1, 2)].iter()));
        assert!(!IntervalSet::pairwise_disjoint([iv(0, 2), iv(1, 3)].iter()));
        assert!(IntervalSet::pairwise_disjoint(
            [iv(0, 1), Interval::empty(), iv(1, 2)].iter()
        ));
    }
}
