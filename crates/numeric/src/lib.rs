#![warn(missing_docs)]

//! # `dbp-numeric` — exact arithmetic and interval algebra
//!
//! Foundation crate for the MinUsageTime Dynamic Bin Packing
//! reproduction. The competitive analysis of Tang, Li, Ren & Cai
//! (IPDPS 2016) manipulates quantities such as subperiod boundaries
//! at `t + µ`, supplier windows `[t − |x|/2, t + |x|/2)` and exact
//! bin levels; verifying the paper's propositions on concrete
//! instances therefore demands *exact* arithmetic — floating point
//! would make the certification checks flaky around the many
//! boundary-equality cases the proofs rely on (e.g. "within a
//! duration µ *(including µ)*").
//!
//! The crate provides:
//!
//! * [`Rational`] — an `i128`-backed reduced fraction with total
//!   order, hashing and serde support. Used for both *time* and
//!   *size* throughout the workspace (bins have unit capacity, so
//!   sizes are rationals in `(0, 1]`).
//! * [`Interval`] — a half-open interval `[lo, hi)` exactly as the
//!   paper defines item activity and bin usage periods (§III.A).
//! * [`IntervalSet`] — a normalized union of disjoint intervals with
//!   measure, union, intersection and containment; implements the
//!   paper's `span(·)` and the disjointness checks of Lemma 2.
//!
//! All operations are deterministic and panic-free for inputs built
//! through the checked constructors; arithmetic overflow on the
//! `i128` backing store panics in both debug and release (the
//! workload generators keep magnitudes far below the overflow
//! threshold, and a panic is preferable to a silently wrong
//! certificate).

pub mod interval;
pub mod rational;
pub mod set;

pub use interval::Interval;
pub use rational::{checked_lcm, gcd128, gcd_stats, ParseRationalError, Rational};
pub use set::IntervalSet;

/// Convenience constructor: `rat(n, d)` builds `n/d`.
///
/// # Panics
/// Panics if `d == 0`.
///
/// ```
/// use dbp_numeric::{rat, Rational};
/// assert_eq!(rat(2, 4), rat(1, 2));
/// assert_eq!(rat(5, 1), Rational::from_int(5));
/// ```
#[inline]
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}

/// Convenience constructor for a half-open interval `[lo, hi)` from
/// integer endpoints.
///
/// # Panics
/// Panics if `lo > hi`.
#[inline]
pub fn iv(lo: i128, hi: i128) -> Interval {
    Interval::new(Rational::from_int(lo), Rational::from_int(hi))
}
