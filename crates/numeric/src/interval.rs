//! Half-open time intervals `[lo, hi)`.
//!
//! The paper (§III.A) views all intervals — item activity `I(r)`,
//! bin usage periods `U_k`, subperiods, supplier periods — as
//! half-open. Treating them half-open makes abutting intervals
//! (`[a, b)` and `[b, c)`) disjoint-but-mergeable, which is exactly
//! the semantics needed for the span and the Lemma 2 disjointness
//! arguments.

use crate::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval `[lo, hi)` with rational endpoints.
///
/// Empty intervals (`lo == hi`) are permitted and behave as the empty
/// set; the paper's constructions produce genuinely empty subperiods
/// (e.g. `x_{h,i} = ∅` when a period does not exceed length `µ`).
///
/// ```
/// use dbp_numeric::{iv, rat, Interval};
/// let a = iv(0, 2);
/// let b = iv(1, 3);
/// assert_eq!(a.intersect(&b), Some(iv(1, 2)));
/// assert_eq!(a.len(), rat(2, 1));
/// assert!(a.contains_point(rat(0, 1)));
/// assert!(!a.contains_point(rat(2, 1))); // right endpoint excluded
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    lo: Rational,
    hi: Rational,
}

impl Interval {
    /// Builds `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: Rational, hi: Rational) -> Interval {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi})");
        Interval { lo, hi }
    }

    /// The canonical empty interval `[0, 0)`.
    #[inline]
    pub fn empty() -> Interval {
        Interval {
            lo: Rational::ZERO,
            hi: Rational::ZERO,
        }
    }

    /// Left endpoint (`I^-` in the paper's notation).
    #[inline]
    pub fn lo(&self) -> Rational {
        self.lo
    }

    /// Right endpoint (`I^+` in the paper's notation; excluded).
    #[inline]
    pub fn hi(&self) -> Rational {
        self.hi
    }

    /// Length `|I| = I^+ − I^-`.
    #[inline]
    pub fn len(&self) -> Rational {
        self.hi - self.lo
    }

    /// `true` iff the interval contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` iff `t ∈ [lo, hi)`.
    #[inline]
    pub fn contains_point(&self, t: Rational) -> bool {
        self.lo <= t && t < self.hi
    }

    /// `true` iff `other ⊆ self` (the empty set is contained in
    /// everything).
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// `true` iff the two intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo.max(other.lo) < self.hi.min(other.hi)
    }

    /// Intersection, or `None` if the intervals are disjoint.
    /// Abutting intervals (`[a,b)`, `[b,c)`) are disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Length of the intersection (zero when disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> Rational {
        self.intersect(other).map_or(Rational::ZERO, |i| i.len())
    }

    /// The smallest interval containing both inputs (convex hull).
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Translates the interval by `dt`.
    #[inline]
    pub fn shift(&self, dt: Rational) -> Interval {
        Interval {
            lo: self.lo + dt,
            hi: self.hi + dt,
        }
    }

    /// Splits at `t`, clamped to the interval: returns
    /// `([lo, clamp(t)), [clamp(t), hi))`.
    ///
    /// This is the primitive behind the paper's l/h-subperiod split
    /// (§V): a period `x_i` longer than `µ` is split at `x_i^- + µ`.
    #[inline]
    pub fn split_at(&self, t: Rational) -> (Interval, Interval) {
        let t = t.max(self.lo).min(self.hi);
        (
            Interval { lo: self.lo, hi: t },
            Interval { lo: t, hi: self.hi },
        )
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{iv, rat};

    #[test]
    fn construction_and_accessors() {
        let i = iv(1, 5);
        assert_eq!(i.lo(), rat(1, 1));
        assert_eq!(i.hi(), rat(5, 1));
        assert_eq!(i.len(), rat(4, 1));
        assert!(!i.is_empty());
        assert!(Interval::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "endpoints out of order")]
    fn reversed_endpoints_panic() {
        let _ = iv(5, 1);
    }

    #[test]
    fn half_open_membership() {
        let i = iv(1, 3);
        assert!(i.contains_point(rat(1, 1)));
        assert!(i.contains_point(rat(5, 2)));
        assert!(!i.contains_point(rat(3, 1)));
        assert!(!i.contains_point(rat(0, 1)));
        assert!(!Interval::empty().contains_point(Rational::ZERO));
    }

    #[test]
    fn abutting_intervals_are_disjoint() {
        let a = iv(0, 2);
        let b = iv(2, 4);
        assert!(!a.overlaps(&b));
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.overlap_len(&b), Rational::ZERO);
    }

    #[test]
    fn intersection_and_hull() {
        let a = iv(0, 3);
        let b = iv(2, 5);
        assert_eq!(a.intersect(&b), Some(iv(2, 3)));
        assert_eq!(a.overlap_len(&b), rat(1, 1));
        assert_eq!(a.hull(&b), iv(0, 5));
        assert_eq!(a.hull(&Interval::empty()), a);
        assert_eq!(Interval::empty().hull(&b), b);
    }

    #[test]
    fn containment() {
        let a = iv(0, 10);
        assert!(a.contains(&iv(2, 5)));
        assert!(a.contains(&a));
        assert!(a.contains(&Interval::empty()));
        assert!(!iv(2, 5).contains(&a));
        assert!(!a.contains(&iv(5, 11)));
    }

    #[test]
    fn split_at_clamps() {
        let a = iv(0, 10);
        let (l, r) = a.split_at(rat(4, 1));
        assert_eq!(l, iv(0, 4));
        assert_eq!(r, iv(4, 10));
        let (l, r) = a.split_at(rat(-3, 1));
        assert!(l.is_empty());
        assert_eq!(r, a);
        let (l, r) = a.split_at(rat(99, 1));
        assert_eq!(l, a);
        assert!(r.is_empty());
    }

    #[test]
    fn shift_translates() {
        assert_eq!(
            iv(1, 3).shift(rat(5, 2)),
            Interval::new(rat(7, 2), rat(11, 2))
        );
    }

    #[test]
    fn display() {
        assert_eq!(iv(1, 3).to_string(), "[1, 3)");
        assert_eq!(
            Interval::new(rat(1, 2), rat(3, 4)).to_string(),
            "[1/2, 3/4)"
        );
    }
}
