//! Reduced `i128` fractions with a total order.
//!
//! [`Rational`] is the single numeric type used for times, durations,
//! item sizes and bin levels across the workspace. Invariants:
//!
//! * the denominator is always strictly positive;
//! * numerator and denominator are always coprime (`gcd == 1`);
//! * zero is represented canonically as `0/1`.
//!
//! These invariants make `Eq`/`Ord`/`Hash` structural and cheap.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number backed by `i128`.
///
/// ```
/// use dbp_numeric::Rational;
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert!(half > third);
/// assert_eq!((half * third).to_string(), "1/6");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Serde shadow type: re-normalizes on deserialization so that
/// hand-written trace files cannot violate the reduced-form invariant.
///
/// The conversion is hand-written (the vendored offline `serde_derive`
/// does not implement container-level `#[serde(from/into)]`), but the
/// wire format is identical to the derived one: `{"num": n, "den": d}`
/// with both legs carried as exact `i128`.
#[derive(Serialize, Deserialize)]
struct RawRational {
    num: i128,
    den: i128,
}

impl Serialize for Rational {
    fn to_value(&self) -> serde::Value {
        RawRational::from(*self).to_value()
    }
}

impl Deserialize for Rational {
    fn from_value(v: &serde::Value) -> Result<Rational, serde::Error> {
        RawRational::from_value(v).map(Rational::from)
    }
}

impl From<RawRational> for Rational {
    fn from(r: RawRational) -> Rational {
        // A zero denominator in external data maps to zero rather than
        // panicking inside serde; trace loaders validate separately.
        if r.den == 0 {
            Rational::ZERO
        } else {
            Rational::new(r.num, r.den)
        }
    }
}

impl From<Rational> for RawRational {
    fn from(r: Rational) -> RawRational {
        RawRational {
            num: r.num,
            den: r.den,
        }
    }
}

/// Optional accounting of Euclidean-gcd work, for profilers.
///
/// The engines' exact hot paths spend a measurable share of their
/// cycles inside [`Rational`] normalization; counting gcd calls and
/// remainder steps attributes that cost without sampling. Off by
/// default: disabled, the only overhead on the gcd path is one
/// relaxed atomic load and a predicted-not-taken branch, which is
/// present on both sides of any before/after comparison and therefore
/// cancels out of the overhead gates.
pub mod gcd_stats {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static CALLS: AtomicU64 = AtomicU64::new(0);
    static STEPS: AtomicU64 = AtomicU64::new(0);

    /// Starts counting gcd calls and remainder steps process-wide.
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Stops counting (the tallies are kept until [`reset`]).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Clears both tallies.
    pub fn reset() {
        CALLS.store(0, Ordering::Relaxed);
        STEPS.store(0, Ordering::Relaxed);
    }

    /// `(calls, remainder_steps)` accumulated while enabled.
    pub fn snapshot() -> (u64, u64) {
        (CALLS.load(Ordering::Relaxed), STEPS.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn record(steps: u32) {
        if ENABLED.load(Ordering::Relaxed) {
            CALLS.fetch_add(1, Ordering::Relaxed);
            STEPS.fetch_add(u64::from(steps), Ordering::Relaxed);
        }
    }
}

/// Greatest common divisor of two unsigned integers.
///
/// Euclid's remainder sequence, with the loop dropping to `u64`
/// operands as soon as both fit: 128-bit remainders lower to the
/// `__umodti3` software-division libcall, which dominates reduction
/// cost, while practically every value the engines reduce (grid
/// denominators, ticks, level integrals) fits 64 bits and takes
/// hardware division — or, for the power-of-two operands binary
/// grids produce, no division at all (see [`gcd_u64`]).
#[inline]
fn gcd_u(mut a: u128, mut b: u128) -> u128 {
    const W: u128 = u64::MAX as u128;
    let mut steps = 0u32;
    while b != 0 {
        if a <= W && b <= W {
            return u128::from(gcd_u64(a as u64, b as u64, steps));
        }
        let t = a % b;
        a = b;
        b = t;
        steps += 1;
    }
    gcd_stats::record(steps);
    a
}

/// The 64-bit tail of [`gcd_u`], continuing its step count. Two
/// division-free shortcuts ahead of the remainder loop: a zero
/// operand (the gcd is the other operand), and a power-of-two
/// operand — ubiquitous on binary tick grids — where the gcd is the
/// largest shared power of two, one mask and shift. Shortcut
/// reductions record zero remainder steps: no division ran.
#[inline]
fn gcd_u64(a: u64, b: u64, steps: u32) -> u64 {
    if a == 0 || b == 0 {
        gcd_stats::record(steps);
        return a | b;
    }
    if (a & (a - 1)) == 0 || (b & (b - 1)) == 0 {
        gcd_stats::record(steps);
        return 1 << a.trailing_zeros().min(b.trailing_zeros());
    }
    let (mut a, mut b, mut steps) = (a, b, steps);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
        steps += 1;
    }
    gcd_stats::record(steps);
    a
}

/// Greatest common divisor of two non-negative signed integers.
#[inline]
fn gcd(a: i128, b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    gcd_u(a as u128, b as u128) as i128
}

/// Checked least common multiple of two positive integers; `None` on
/// `i128` overflow (or non-positive input).
///
/// This is the workhorse of tick compilation (`dbp-core::tick`): the
/// LCM of every timestamp (resp. size) denominator in an instance is
/// the common grid on which the whole instance becomes integral.
///
/// ```
/// use dbp_numeric::checked_lcm;
/// assert_eq!(checked_lcm(4, 6), Some(12));
/// assert_eq!(checked_lcm(7, 13), Some(91));
/// assert_eq!(checked_lcm(i128::MAX, 2), None); // would overflow
/// assert_eq!(checked_lcm(0, 3), None);
/// ```
#[inline]
pub fn checked_lcm(a: i128, b: i128) -> Option<i128> {
    if a <= 0 || b <= 0 {
        return None;
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Greatest common divisor of two non-negative integers
/// (`gcd128(a, 0) = a`, `gcd128(0, 0) = 0`).
///
/// The public face of the reduction kernel behind [`Rational::new`]
/// (same shortcuts, same [`gcd_stats`] accounting), for callers that
/// batch-reduce families of fractions sharing a denominator — e.g.
/// the tick engine's `finish`, which extracts the common factor of
/// every per-bin integral once instead of re-deriving it per bin.
///
/// ```
/// use dbp_numeric::gcd128;
/// assert_eq!(gcd128(12, 18), 6);
/// assert_eq!(gcd128(7, 0), 7);
/// ```
///
/// # Panics
/// Debug-panics on negative input.
#[inline]
pub fn gcd128(a: i128, b: i128) -> i128 {
    gcd(a, b)
}

impl Rational {
    /// The rational zero, `0/1`.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one, `1/1`.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// One half, `1/2` — the paper's small/large item threshold (§V).
    pub const HALF: Rational = Rational { num: 1, den: 2 };
    /// The rational two, `2/1`.
    pub const TWO: Rational = Rational { num: 2, den: 1 };

    /// Builds the reduced fraction `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0` or if `num/den` cannot be normalized
    /// within `i128` (only possible for `i128::MIN` inputs).
    #[inline]
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "Rational denominator must be non-zero");
        let negative = (num < 0) != (den < 0);
        let n = num.unsigned_abs();
        let d = den.unsigned_abs();
        const W: u128 = u64::MAX as u128;
        if n <= W && d <= W {
            // Hardware-division path: covers every tick-grid
            // conversion (numerators bounded by capacity·horizon).
            let g = gcd_u64(n as u64, d as u64, 0).max(1);
            if g == 1 {
                // Already reduced — skip both normalization divides.
                let n = n as i128;
                return Rational {
                    num: if negative { -n } else { n },
                    den: d as i128,
                };
            }
            let n = (n as u64 / g) as i128;
            return Rational {
                num: if negative { -n } else { n },
                den: (d as u64 / g) as i128,
            };
        }
        let g = gcd_u(n, d).max(1);
        let n = n / g;
        let d = d / g;
        assert!(
            n <= i128::MAX as u128 && d <= i128::MAX as u128,
            "Rational normalization overflow"
        );
        let num = if negative { -(n as i128) } else { n as i128 };
        Rational {
            num,
            den: d as i128,
        }
    }

    /// Builds the integer `n` as a rational.
    #[inline]
    pub const fn from_int(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The reduced numerator (sign-carrying).
    #[inline]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The reduced denominator (always positive).
    #[inline]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff this value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff this value is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff this value is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// `true` iff this value is an integer.
    #[inline]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Rational {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[inline]
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// The minimum of two rationals.
    #[inline]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals.
    #[inline]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Floor as an integer (largest `n` with `n ≤ self`).
    #[inline]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling as an integer (smallest `n` with `n ≥ self`).
    ///
    /// Used by the `⌈total active size⌉` lower bound on `OPT(R, t)`.
    #[inline]
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Lossy conversion to `f64` (reporting/plotting only; never used
    /// in correctness-relevant computation).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition; `None` on `i128` overflow.
    ///
    /// Hot-path structure: the engine adds item sizes to bin levels
    /// and advances integer-ish clocks millions of times per sweep,
    /// so the common shapes skip the generic double-gcd route:
    ///
    /// * equal denominators — one gcd of the summed numerator;
    /// * an integer operand — **no** gcd at all: for reduced `a/d`,
    ///   `gcd(a + k·d, d) = gcd(a, d) = 1`, so `(a + k·d)/d` is
    ///   already in lowest terms.
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        if self.den == rhs.den {
            let num = self.num.checked_add(rhs.num)?;
            if self.den == 1 {
                return Some(Rational { num, den: 1 });
            }
            // g divides the (positive) denominator, so it fits i128
            // even when `num` is i128::MIN.
            let g = (gcd_u(num.unsigned_abs(), self.den as u128) as i128).max(1);
            return Some(Rational {
                num: num / g,
                den: self.den / g,
            });
        }
        if rhs.den == 1 {
            let num = self.num.checked_add(rhs.num.checked_mul(self.den)?)?;
            return Some(Rational { num, den: self.den });
        }
        if self.den == 1 {
            let num = rhs.num.checked_add(self.num.checked_mul(rhs.den)?)?;
            return Some(Rational { num, den: rhs.den });
        }
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rational::new(num, den))
    }

    /// Rescales onto the integer grid `1/scale`: returns the integer
    /// `k` with `self == k / scale`, or `None` when the value does
    /// not lie on that grid (`scale` is not a multiple of the reduced
    /// denominator) or the multiplication overflows.
    ///
    /// This is the exact conversion used by tick compilation: with
    /// `scale` the LCM of all denominators in an instance, every
    /// timestamp and size maps losslessly to machine integers.
    ///
    /// ```
    /// use dbp_numeric::rat;
    /// assert_eq!(rat(3, 4).scaled_to(12), Some(9));
    /// assert_eq!(rat(-5, 2).scaled_to(6), Some(-15));
    /// assert_eq!(rat(1, 3).scaled_to(8), None); // 8/3 not integral
    /// ```
    #[inline]
    pub fn scaled_to(self, scale: i128) -> Option<i128> {
        if scale <= 0 {
            return None;
        }
        // u64 fast path: tick grids are `u32`-bounded and reduced
        // denominators are positive, so the divisibility check and
        // quotient almost always fit one native division instead of
        // two software `i128` ones — this sits on the streaming
        // session's per-event path.
        if let (Ok(s), Ok(d)) = (u64::try_from(scale), u64::try_from(self.den)) {
            if s % d != 0 {
                return None;
            }
            let quot = (s / d) as i128;
            // quot < 2^64, so any numerator below 2^63 multiplies
            // without overflow on the inlined 128-bit product;
            // `checked_mul` (a libcall on x86-64) covers the rest.
            if self.num.unsigned_abs() < 1 << 63 {
                return Some(self.num * quot);
            }
            return self.num.checked_mul(quot);
        }
        if scale % self.den != 0 {
            return None;
        }
        self.num.checked_mul(scale / self.den)
    }

    /// Checked multiplication; `None` on `i128` overflow.
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(
            if self.num == i128::MIN {
                rhs.den
            } else {
                self.num.abs()
            },
            rhs.den,
        )
        .max(1);
        let g2 = gcd(
            if rhs.num == i128::MIN {
                self.den
            } else {
                rhs.num.abs()
            },
            self.den,
        )
        .max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        // Already in lowest terms: a prime dividing `den` divides
        // `b/g2` or `d/g1`, each coprime to both numerator factors —
        // so the `Rational::new` normalization gcd would be 1.
        debug_assert_eq!(gcd_u(num.unsigned_abs(), den as u128), 1);
        Some(Rational { num, den })
    }
}

impl Default for Rational {
    #[inline]
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Equal (in particular unit) denominators: compare numerators
        // directly — no multiplication, no overflow path. This is the
        // dominant shape for engine clocks and level checks.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        //
        // When every magnitude is below 2^63 the cross products stay
        // below 2^126 and the plain (inlined) 128-bit multiply cannot
        // overflow — `checked_mul` is a libcall on x86-64 and this
        // comparison sits on streaming per-event paths.
        const HALF: u128 = 1 << 63;
        if self.num.unsigned_abs() < HALF
            && other.num.unsigned_abs() < HALF
            && (self.den as u128) < HALF
            && (other.den as u128) < HALF
        {
            return (self.num * other.den).cmp(&(other.num * self.den));
        }
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Overflow path: fall back to widening comparison through
            // subtraction of integer parts; practically unreachable for
            // workload-scale values but kept total for safety.
            _ => {
                let li = self.floor();
                let ri = other.floor();
                if li != ri {
                    return li.cmp(&ri);
                }
                let lf = *self - Rational::from_int(li);
                let rf = *other - Rational::from_int(ri);
                lf.num
                    .checked_mul(rf.den)
                    .unwrap()
                    .cmp(&rf.num.checked_mul(lf.den).unwrap())
            }
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    #[inline]
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs).expect("Rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[inline]
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    #[inline]
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
            .expect("Rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·(1/b) is the definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[inline]
    fn neg(self) -> Rational {
        Rational {
            num: self.num.checked_neg().expect("Rational negation overflow"),
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    #[inline]
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    #[inline]
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    #[inline]
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    #[inline]
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |acc, x| acc + *x)
    }
}

impl From<i128> for Rational {
    #[inline]
    fn from(n: i128) -> Rational {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    #[inline]
    fn from(n: i64) -> Rational {
        Rational::from_int(n as i128)
    }
}

impl From<i32> for Rational {
    #[inline]
    fn from(n: i32) -> Rational {
        Rational::from_int(n as i128)
    }
}

impl From<u32> for Rational {
    #[inline]
    fn from(n: u32) -> Rational {
        Rational::from_int(n as i128)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned by [`Rational::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(pub String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"`, `"n/d"` or decimal `"a.b"` forms.
    ///
    /// ```
    /// use dbp_numeric::Rational;
    /// assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
    /// assert_eq!("0.25".parse::<Rational>().unwrap(), Rational::new(1, 4));
    /// assert_eq!("-2".parse::<Rational>().unwrap(), Rational::from_int(-2));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseRationalError(s.to_string());
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| bad())?;
            let d: i128 = d.trim().parse().map_err(|_| bad())?;
            if d == 0 {
                return Err(bad());
            }
            Ok(Rational::new(n, d))
        } else if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let i: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.parse().map_err(|_| bad())?
            };
            if frac_part.is_empty()
                || frac_part.len() > 30
                || !frac_part.bytes().all(|b| b.is_ascii_digit())
            {
                return Err(bad());
            }
            let fnum: i128 = frac_part.parse().map_err(|_| bad())?;
            let fden: i128 = 10i128.checked_pow(frac_part.len() as u32).ok_or_else(bad)?;
            let frac = Rational::new(fnum, fden);
            let base = Rational::from_int(i);
            Ok(if neg { base - frac } else { base + frac })
        } else {
            let n: i128 = s.parse().map_err(|_| bad())?;
            Ok(Rational::from_int(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(0, 5).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn field_operations() {
        let a = Rational::new(3, 4);
        let b = Rational::new(5, 6);
        assert_eq!(a + b, Rational::new(19, 12));
        assert_eq!(a - b, Rational::new(-1, 12));
        assert_eq!(a * b, Rational::new(5, 8));
        assert_eq!(a / b, Rational::new(9, 10));
        assert_eq!(-a, Rational::new(-3, 4));
        assert_eq!(a.recip(), Rational::new(4, 3));
    }

    #[test]
    fn ordering_is_consistent() {
        let vals = [
            Rational::new(-3, 2),
            Rational::new(-1, 3),
            Rational::ZERO,
            Rational::new(1, 7),
            Rational::new(1, 2),
            Rational::ONE,
            Rational::new(22, 7),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
        assert_eq!(Rational::ZERO.ceil(), 0);
    }

    #[test]
    fn min_max_abs() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 4);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(Rational::new(-5, 3).abs(), Rational::new(5, 3));
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(1, 6),
        ];
        let total: Rational = parts.iter().sum();
        assert_eq!(total, Rational::ONE);
        let total2: Rational = parts.into_iter().sum();
        assert_eq!(total2, Rational::ONE);
    }

    #[test]
    fn parse_forms() {
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::from_int(5));
        assert_eq!("-5".parse::<Rational>().unwrap(), Rational::from_int(-5));
        assert_eq!("10/4".parse::<Rational>().unwrap(), Rational::new(5, 2));
        assert_eq!("0.5".parse::<Rational>().unwrap(), Rational::HALF);
        assert_eq!("-1.25".parse::<Rational>().unwrap(), Rational::new(-5, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1.x".parse::<Rational>().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(3, 7).to_string(), "3/7");
        assert_eq!(Rational::new(-3, 7).to_string(), "-3/7");
    }

    #[test]
    fn serde_shadow_renormalizes() {
        // Deserialization goes through RawRational and must restore
        // the reduced-form invariant even for non-canonical input.
        let r: Rational = RawRational { num: 4, den: -8 }.into();
        assert_eq!(r, Rational::new(-1, 2));
        let z: Rational = RawRational { num: 3, den: 0 }.into();
        assert_eq!(z, Rational::ZERO);
        let raw: RawRational = Rational::new(22, 7).into();
        assert_eq!((raw.num, raw.den), (22, 7));
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Rational::from_int(i128::MAX / 2);
        assert!(big.checked_mul(Rational::from_int(4)).is_none());
        assert!(big.checked_add(big).is_some());
        assert!(Rational::from_int(i128::MAX)
            .checked_add(Rational::ONE)
            .is_none());
    }

    #[test]
    fn to_f64_is_close() {
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    /// The add fast paths (equal denominators, integer operands) must
    /// keep the reduced-form invariant bit-for-bit.
    #[test]
    fn add_fast_paths_stay_reduced() {
        // Equal denominators that reduce after summing.
        let r = Rational::new(1, 6) + Rational::new(1, 6);
        assert_eq!((r.numer(), r.denom()), (1, 3));
        let r = Rational::new(1, 2) + Rational::new(1, 2);
        assert_eq!((r.numer(), r.denom()), (1, 1));
        let r = Rational::new(-5, 6) + Rational::new(1, 6);
        assert_eq!((r.numer(), r.denom()), (-2, 3));
        // Integer + integer.
        let r = Rational::from_int(3) + Rational::from_int(-7);
        assert_eq!((r.numer(), r.denom()), (-4, 1));
        // Integer + fraction (both orders): no renormalization needed.
        let r = Rational::from_int(2) + Rational::new(3, 4);
        assert_eq!((r.numer(), r.denom()), (11, 4));
        let r = Rational::new(3, 4) + Rational::from_int(-1);
        assert_eq!((r.numer(), r.denom()), (-1, 4));
        // Subtraction rides the same paths via negation.
        let r = Rational::new(5, 6) - Rational::new(1, 6);
        assert_eq!((r.numer(), r.denom()), (2, 3));
        // Cancellation to zero stays canonical 0/1.
        let r = Rational::new(2, 7) - Rational::new(2, 7);
        assert_eq!((r.numer(), r.denom()), (0, 1));
    }

    #[test]
    fn lcm_and_grid_scaling() {
        assert_eq!(checked_lcm(1, 1), Some(1));
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(6, 4), Some(12));
        assert_eq!(checked_lcm(12, 4), Some(12));
        assert_eq!(checked_lcm(-3, 4), None);
        assert_eq!(checked_lcm(i128::MAX, i128::MAX - 1), None);
        // Folding denominators of a mixed-grid instance.
        let scale = [2i128, 3, 4, 6]
            .into_iter()
            .try_fold(1i128, checked_lcm)
            .unwrap();
        assert_eq!(scale, 12);
        for r in [
            Rational::new(1, 2),
            Rational::new(2, 3),
            Rational::new(-7, 4),
            Rational::new(5, 6),
        ] {
            let k = r.scaled_to(scale).unwrap();
            assert_eq!(Rational::new(k, scale), r);
        }
        assert_eq!(Rational::new(1, 5).scaled_to(scale), None);
        assert_eq!(Rational::new(1, 2).scaled_to(0), None);
        assert_eq!(Rational::from_int(2).scaled_to(i128::MAX), None);
    }

    #[test]
    fn gcd_stats_count_only_while_enabled() {
        gcd_stats::reset();
        let _ = Rational::new(6, 4);
        assert_eq!(gcd_stats::snapshot(), (0, 0), "disabled: nothing counted");
        gcd_stats::enable();
        let _ = Rational::new(1071, 462); // Euclid's classic: 3 remainder steps
        let (calls, steps) = gcd_stats::snapshot();
        gcd_stats::disable();
        assert!(calls >= 1);
        assert!(steps >= 3);
        gcd_stats::reset();
        assert_eq!(gcd_stats::snapshot(), (0, 0));
    }

    #[test]
    fn cmp_fast_path_matches_generic() {
        // Equal denominators (fast path) vs mixed (generic path).
        assert!(Rational::new(3, 7) < Rational::new(4, 7));
        assert!(Rational::new(-4, 7) < Rational::new(-3, 7));
        assert_eq!(
            Rational::new(4, 7).cmp(&Rational::new(4, 7)),
            Ordering::Equal
        );
        assert!(Rational::from_int(3) < Rational::from_int(4));
        assert!(Rational::new(1, 2) < Rational::new(2, 3));
    }
}
