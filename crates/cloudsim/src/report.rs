//! Cost and fleet reporting.

use crate::billing::BillingModel;
use dbp_core::PackingOutcome;
use dbp_numeric::{Interval, Rational};
use serde::Serialize;

/// One rented server's history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ServerRecord {
    /// Server index in rental order.
    pub server: u32,
    /// Rental period (first job arrival to last job departure).
    pub rental: Interval,
    /// Billed time under the report's billing model.
    pub billed: Rational,
    /// Number of jobs the server ever hosted.
    pub jobs: usize,
    /// Mean resource utilization over the rental.
    pub mean_utilization: Rational,
}

/// The outcome of a dispatch simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CostReport {
    /// Dispatch algorithm name.
    pub algorithm: String,
    /// Billing model applied.
    pub billing: BillingModel,
    /// Number of jobs dispatched.
    pub jobs: usize,
    /// Servers rented over the run.
    pub servers_used: usize,
    /// Peak simultaneously-open servers.
    pub peak_servers: usize,
    /// Total raw usage time `Σ |rental|` (the paper's objective).
    pub usage_time: Rational,
    /// Total billed time under the billing model (`≥ usage_time`).
    pub billed_time: Rational,
    /// Demand-weighted utilization: packed job volume / usage time.
    pub utilization: Option<Rational>,
    /// Per-server details.
    pub servers: Vec<ServerRecord>,
    /// Step function of open-server count: `(time, count)` at each
    /// change point, in time order.
    pub open_series: Vec<(Rational, usize)>,
}

impl CostReport {
    /// Assembles the report from a finished packing outcome — batch
    /// ([`crate::dispatcher::simulate`]) and live streaming sessions
    /// ([`dbp_core::session::Session::finish`]) alike. `jobs` is the
    /// number of jobs dispatched over the run.
    pub fn from_outcome(
        outcome: &PackingOutcome,
        jobs: usize,
        billing: BillingModel,
    ) -> CostReport {
        let mut servers = Vec::with_capacity(outcome.bins().len());
        let mut billed_total = Rational::ZERO;
        for bin in outcome.bins() {
            let billed = billing.bill(bin.usage.len());
            billed_total += billed;
            servers.push(ServerRecord {
                server: bin.id.0,
                rental: bin.usage,
                billed,
                jobs: bin.items.len(),
                mean_utilization: bin.mean_level().unwrap_or(Rational::ZERO),
            });
        }

        // Open-server step series from rental endpoints (ends before
        // starts at equal times, matching half-open rentals).
        let mut events: Vec<(Rational, i32)> = Vec::with_capacity(servers.len() * 2);
        for s in &servers {
            events.push((s.rental.lo(), 1));
            events.push((s.rental.hi(), -1));
        }
        events.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut open_series: Vec<(Rational, usize)> = Vec::new();
        let mut open = 0i64;
        for (t, delta) in events {
            open += i64::from(delta);
            match open_series.last_mut() {
                Some((last_t, count)) if *last_t == t => *count = open as usize,
                _ => open_series.push((t, open as usize)),
            }
        }

        CostReport {
            algorithm: outcome.algorithm().to_string(),
            billing,
            jobs,
            servers_used: outcome.bins_opened(),
            peak_servers: outcome.max_open_bins(),
            usage_time: outcome.total_usage(),
            billed_time: billed_total,
            utilization: outcome.utilization(),
            servers,
            open_series,
        }
    }

    /// Billing overhead factor `billed/usage` (`None` for an idle
    /// run).
    pub fn billing_overhead(&self) -> Option<Rational> {
        (!self.usage_time.is_zero()).then(|| self.billed_time / self.usage_time)
    }

    /// Open-server count at a time `t` (for plotting/tests).
    pub fn open_at(&self, t: Rational) -> usize {
        let idx = self.open_series.partition_point(|(ts, _)| *ts <= t);
        if idx == 0 {
            0
        } else {
            self.open_series[idx - 1].1
        }
    }
}
