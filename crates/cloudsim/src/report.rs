//! Cost and fleet reporting.

use crate::billing::BillingModel;
use dbp_numeric::{Interval, Rational};
use serde::Serialize;

/// One rented server's history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ServerRecord {
    /// Server index in rental order.
    pub server: u32,
    /// Rental period (first job arrival to last job departure).
    pub rental: Interval,
    /// Billed time under the report's billing model.
    pub billed: Rational,
    /// Number of jobs the server ever hosted.
    pub jobs: usize,
    /// Mean resource utilization over the rental.
    pub mean_utilization: Rational,
}

/// The outcome of a dispatch simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CostReport {
    /// Dispatch algorithm name.
    pub algorithm: String,
    /// Billing model applied.
    pub billing: BillingModel,
    /// Number of jobs dispatched.
    pub jobs: usize,
    /// Servers rented over the run.
    pub servers_used: usize,
    /// Peak simultaneously-open servers.
    pub peak_servers: usize,
    /// Total raw usage time `Σ |rental|` (the paper's objective).
    pub usage_time: Rational,
    /// Total billed time under the billing model (`≥ usage_time`).
    pub billed_time: Rational,
    /// Demand-weighted utilization: packed job volume / usage time.
    pub utilization: Option<Rational>,
    /// Per-server details.
    pub servers: Vec<ServerRecord>,
    /// Step function of open-server count: `(time, count)` at each
    /// change point, in time order.
    pub open_series: Vec<(Rational, usize)>,
}

impl CostReport {
    /// Billing overhead factor `billed/usage` (`None` for an idle
    /// run).
    pub fn billing_overhead(&self) -> Option<Rational> {
        (!self.usage_time.is_zero()).then(|| self.billed_time / self.usage_time)
    }

    /// Open-server count at a time `t` (for plotting/tests).
    pub fn open_at(&self, t: Rational) -> usize {
        let idx = self.open_series.partition_point(|(ts, _)| *ts <= t);
        if idx == 0 {
            0
        } else {
            self.open_series[idx - 1].1
        }
    }
}
