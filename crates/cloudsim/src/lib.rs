#![warn(missing_docs)]

//! # `dbp-cloudsim` — online cloud server allocation
//!
//! The application layer the paper motivates (§I): a stream of jobs
//! (game sessions, batch tasks, …) is dispatched on arrival to cloud
//! servers of unit resource capacity; servers are rented
//! pay-as-you-go, so the provider's bill is the total server usage
//! time — rounded up to the billing quantum, as public clouds do
//! (per-hour billing for classic EC2, per-second with a minimum for
//! modern instance types).
//!
//! This crate wraps the `dbp-core` packing engine with:
//!
//! * [`billing`] — billing models (continuous, quantized) applied
//!   per server rental;
//! * [`dispatcher`] — end-to-end simulation: replay a job stream
//!   against a dispatch algorithm and produce a [`report::CostReport`]
//!   with billed cost, utilization, peak fleet size and an
//!   open-server time series.
//!
//! ```
//! use dbp_cloudsim::prelude::*;
//! use dbp_core::prelude::*;
//! use dbp_numeric::rat;
//!
//! // Two half-server jobs, an hour each (times in minutes).
//! let jobs = Instance::builder()
//!     .item(rat(1, 2), rat(0, 1), rat(60, 1))
//!     .item(rat(1, 2), rat(10, 1), rat(70, 1))
//!     .build()
//!     .unwrap();
//! let report = simulate(&jobs)
//!     .billing(BillingModel::hourly())
//!     .run(&mut FirstFit::new())
//!     .unwrap();
//! assert_eq!(report.servers_used, 1);
//! assert_eq!(report.usage_time, rat(70, 1));      // one server, 70 min
//! assert_eq!(report.billed_time, rat(120, 1));    // rounded to 2 hours
//! ```

pub mod billing;
pub mod dispatcher;
pub mod report;

pub use billing::BillingModel;
#[allow(deprecated)] // compat re-export; gone next release
pub use dispatcher::simulate_observed;
pub use dispatcher::{simulate, Simulation};
pub use report::{CostReport, ServerRecord};

/// One-stop imports.
pub mod prelude {
    pub use crate::billing::BillingModel;
    pub use crate::dispatcher::{simulate, Simulation};
    pub use crate::report::CostReport;
}
