//! Pay-as-you-go billing models.
//!
//! The paper's cost model charges each server for its *usage time*;
//! real clouds round each rental up to a billing quantum. The
//! MinUsageTime objective is the `quantum → 0` limit, and `exp_billing`
//! (E9) shows empirically that minimizing usage time remains the right
//! proxy under realistic quanta.

use dbp_numeric::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a single server rental of some duration is billed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingModel {
    /// Bill exactly the usage time (the paper's objective).
    Continuous,
    /// Round each rental up to a multiple of `quantum` (same time
    /// unit as the job stream), with an optional minimum charge.
    Quantized {
        /// Billing granularity, > 0.
        quantum: Rational,
        /// Minimum billed time per rental (e.g. per-second billing
        /// with a 60-second minimum). Zero for none.
        minimum: Rational,
    },
}

impl BillingModel {
    /// Per-hour billing for a job stream whose times are minutes.
    pub fn hourly() -> BillingModel {
        BillingModel::Quantized {
            quantum: Rational::from_int(60),
            minimum: Rational::ZERO,
        }
    }

    /// Per-minute billing (minute time unit).
    pub fn per_minute() -> BillingModel {
        BillingModel::Quantized {
            quantum: Rational::ONE,
            minimum: Rational::ZERO,
        }
    }

    /// Per-second billing with a one-minute minimum (minute unit):
    /// quantum 1/60, minimum 1.
    pub fn per_second_min_minute() -> BillingModel {
        BillingModel::Quantized {
            quantum: Rational::new(1, 60),
            minimum: Rational::ONE,
        }
    }

    /// Billed time for one server rental of length `usage`.
    pub fn bill(&self, usage: Rational) -> Rational {
        debug_assert!(!usage.is_negative());
        match *self {
            BillingModel::Continuous => usage,
            BillingModel::Quantized { quantum, minimum } => {
                assert!(quantum.is_positive(), "billing quantum must be positive");
                let units = (usage / quantum).ceil().max(0);
                (Rational::from_int(units) * quantum).max(minimum)
            }
        }
    }
}

impl fmt::Display for BillingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BillingModel::Continuous => write!(f, "continuous"),
            BillingModel::Quantized { quantum, minimum } => {
                write!(f, "quantized(q={quantum}")?;
                if minimum.is_positive() {
                    write!(f, ", min={minimum}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn continuous_is_identity() {
        assert_eq!(BillingModel::Continuous.bill(rat(7, 3)), rat(7, 3));
        assert_eq!(
            BillingModel::Continuous.bill(Rational::ZERO),
            Rational::ZERO
        );
    }

    #[test]
    fn hourly_rounds_up() {
        let h = BillingModel::hourly();
        assert_eq!(h.bill(rat(1, 1)), rat(60, 1)); // 1 min → 1 h
        assert_eq!(h.bill(rat(60, 1)), rat(60, 1)); // exactly 1 h
        assert_eq!(h.bill(rat(61, 1)), rat(120, 1)); // 61 min → 2 h
        assert_eq!(h.bill(Rational::ZERO), Rational::ZERO);
    }

    #[test]
    fn minimum_charge_applies() {
        let m = BillingModel::per_second_min_minute();
        // 10 seconds = 1/6 minute → rounded to 10/60 = 1/6, then min 1.
        assert_eq!(m.bill(rat(1, 6)), rat(1, 1));
        // 2.5 minutes → ceil to 150 seconds = 2.5 min (already multiple).
        assert_eq!(m.bill(rat(5, 2)), rat(5, 2));
    }

    #[test]
    fn quantized_monotone_and_dominating() {
        let q = BillingModel::Quantized {
            quantum: rat(7, 2),
            minimum: Rational::ZERO,
        };
        let mut last = Rational::ZERO;
        for i in 0..20 {
            let usage = rat(i, 3);
            let b = q.bill(usage);
            assert!(b >= usage, "billed below usage");
            assert!(b >= last, "billing must be monotone");
            last = b;
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(BillingModel::Continuous.to_string(), "continuous");
        assert_eq!(BillingModel::hourly().to_string(), "quantized(q=60)");
        assert_eq!(
            BillingModel::per_second_min_minute().to_string(),
            "quantized(q=1/60, min=1)"
        );
    }
}
