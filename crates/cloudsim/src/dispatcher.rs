//! End-to-end dispatch simulation.
//!
//! Jobs map one-to-one onto DBP items (the paper's reduction, §I):
//! the job's resource demand is the item size, its lifetime the item
//! interval, a server a unit bin. Dispatch is migration-free and
//! online — exactly the packing engine's contract — so the simulator
//! replays the stream through a [`dbp_core::session::Runner`] and
//! derives the billing and fleet reports from the outcome.
//!
//! [`simulate`] is a builder: configure billing, an observer, and an
//! engine backend, then [`run`](Simulation::run) a dispatch
//! algorithm. Live streaming sessions produce the same reports via
//! [`CostReport::from_outcome`] on their finished outcome.

use crate::billing::BillingModel;
use crate::report::CostReport;
use dbp_core::session::{Backend, Runner, SessionError};
use dbp_core::{EngineObserver, Instance, PackingAlgorithm, PackingError};

/// Starts a dispatch simulation over the job stream `jobs`.
///
/// Defaults: [`BillingModel::Continuous`], no observer,
/// [`Backend::Auto`] (the engine picks the integer tick path when the
/// algorithm and stream allow it — outcomes are identical either
/// way).
///
/// ```
/// use dbp_cloudsim::prelude::*;
/// use dbp_core::prelude::*;
/// use dbp_numeric::rat;
///
/// let jobs = Instance::builder()
///     .item(rat(1, 2), rat(0, 1), rat(60, 1))
///     .build()
///     .unwrap();
/// let report = simulate(&jobs)
///     .billing(BillingModel::hourly())
///     .run(&mut FirstFit::new())
///     .unwrap();
/// assert_eq!(report.billed_time, rat(60, 1));
/// ```
pub fn simulate(jobs: &Instance) -> Simulation<'_> {
    Simulation {
        jobs,
        billing: BillingModel::Continuous,
        observer: None,
        backend: Backend::Auto,
    }
}

/// A configured-but-not-yet-run dispatch simulation. Built by
/// [`simulate`]; consumed by [`run`](Simulation::run).
pub struct Simulation<'a> {
    jobs: &'a Instance,
    billing: BillingModel,
    observer: Option<&'a mut dyn EngineObserver>,
    backend: Backend,
}

impl<'a> Simulation<'a> {
    /// Sets the billing model applied per server rental.
    pub fn billing(mut self, billing: BillingModel) -> Simulation<'a> {
        self.billing = billing;
        self
    }

    /// Attaches an [`EngineObserver`]: every dispatch decision
    /// streams through it before the report is assembled. Observed
    /// runs always use the exact engine.
    pub fn observer(mut self, observer: &'a mut dyn EngineObserver) -> Simulation<'a> {
        self.observer = Some(observer);
        self
    }

    /// Pins the engine backend (see [`Backend`]); [`Backend::Auto`]
    /// by default.
    pub fn backend(mut self, backend: Backend) -> Simulation<'a> {
        self.backend = backend;
        self
    }

    /// Replays the job stream against `algo` and assembles the
    /// [`CostReport`].
    pub fn run(self, algo: &mut dyn PackingAlgorithm) -> Result<CostReport, SessionError> {
        let mut runner = Runner::new(self.jobs).backend(self.backend);
        if let Some(observer) = self.observer {
            runner = runner.observer(observer);
        }
        let outcome = runner.run(algo)?;
        Ok(CostReport::from_outcome(
            &outcome,
            self.jobs.len(),
            self.billing,
        ))
    }
}

/// Pre-builder entry point, kept as a thin shim.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate(jobs).billing(b).observer(obs).run(algo)`"
)]
pub fn simulate_observed(
    jobs: &Instance,
    algo: &mut dyn PackingAlgorithm,
    billing: BillingModel,
    observer: &mut dyn EngineObserver,
) -> Result<CostReport, PackingError> {
    simulate(jobs)
        .billing(billing)
        .observer(observer)
        .backend(Backend::Exact)
        .run(algo)
        .map_err(|e| match e {
            SessionError::Packing(e) => e,
            other => unreachable!("exact batch replay surfaces only packing errors: {other}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_core::session::Session;
    use dbp_numeric::{rat, Rational};

    fn jobs() -> Instance {
        // Times in minutes. Three jobs over ~2 hours.
        Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(50, 1))
            .item(rat(1, 2), rat(20, 1), rat(90, 1))
            .item(rat(3, 4), rat(30, 1), rat(100, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn continuous_billing_matches_usage() {
        let r = simulate(&jobs()).run(&mut FirstFit::new()).unwrap();
        assert_eq!(r.billed_time, r.usage_time);
        assert_eq!(r.billing_overhead(), Some(rat(1, 1)));
        assert_eq!(r.jobs, 3);
    }

    #[test]
    fn hourly_billing_rounds_each_rental() {
        // FF: jobs 1+2 share server A ([0,90), 90 min → 120 billed);
        // job 3 (3/4) needs server B ([30,100), 70 min → 120 billed).
        let r = simulate(&jobs())
            .billing(BillingModel::hourly())
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(r.servers_used, 2);
        assert_eq!(r.usage_time, rat(160, 1));
        assert_eq!(r.billed_time, rat(240, 1));
        assert_eq!(r.billing_overhead(), Some(rat(3, 2)));
        for s in &r.servers {
            assert!(s.billed >= s.rental.len());
            assert!(s.mean_utilization <= Rational::ONE);
        }
    }

    #[test]
    fn open_series_tracks_fleet() {
        let r = simulate(&jobs()).run(&mut FirstFit::new()).unwrap();
        assert_eq!(r.open_at(rat(-1, 1)), 0);
        assert_eq!(r.open_at(rat(0, 1)), 1);
        assert_eq!(r.open_at(rat(40, 1)), 2);
        assert_eq!(r.open_at(rat(95, 1)), 1);
        assert_eq!(r.open_at(rat(100, 1)), 0);
        assert_eq!(r.peak_servers, 2);
    }

    #[test]
    fn backends_agree_on_the_bill() {
        let exact = simulate(&jobs())
            .billing(BillingModel::hourly())
            .backend(Backend::Exact)
            .run(&mut FirstFitFast::new())
            .unwrap();
        let auto = simulate(&jobs())
            .billing(BillingModel::hourly())
            .run(&mut FirstFitFast::new())
            .unwrap();
        assert_eq!(exact, auto);
    }

    #[test]
    fn live_session_reports_the_same_bill() {
        // Stream the same jobs through a Session and bill its
        // outcome: identical report to the batch simulation.
        let batch = simulate(&jobs())
            .billing(BillingModel::hourly())
            .run(&mut FirstFit::new())
            .unwrap();
        let mut session = Session::builder(FirstFit::new()).build().unwrap();
        session.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        session.arrive(ItemId(1), rat(1, 2), rat(20, 1)).unwrap();
        session.arrive(ItemId(2), rat(3, 4), rat(30, 1)).unwrap();
        session.depart(ItemId(0), rat(50, 1)).unwrap();
        session.depart(ItemId(1), rat(90, 1)).unwrap();
        session.depart(ItemId(2), rat(100, 1)).unwrap();
        let outcome = session.finish().unwrap();
        let live = CostReport::from_outcome(&outcome, 3, BillingModel::hourly());
        assert_eq!(live, batch);
    }

    #[test]
    fn deprecated_observed_shim_still_works() {
        let mut obs = NoopObserver;
        #[allow(deprecated)]
        let r = simulate_observed(
            &jobs(),
            &mut FirstFit::new(),
            BillingModel::hourly(),
            &mut obs,
        )
        .unwrap();
        assert_eq!(r.billed_time, rat(240, 1));
    }

    #[test]
    fn different_dispatchers_compared_fairly() {
        let stream = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(10, 1))
            .item(rat(1, 4), rat(0, 1), rat(120, 1))
            .item(rat(1, 2), rat(15, 1), rat(30, 1))
            .item(rat(1, 2), rat(40, 1), rat(55, 1))
            .build()
            .unwrap();
        let ff = simulate(&stream)
            .billing(BillingModel::hourly())
            .run(&mut FirstFit::new())
            .unwrap();
        let nf = simulate(&stream)
            .billing(BillingModel::hourly())
            .run(&mut NextFit::new())
            .unwrap();
        // Both dispatch everything; cost comparison is meaningful.
        assert_eq!(ff.jobs, nf.jobs);
        assert!(ff.billed_time <= nf.billed_time, "FF should not lose here");
    }

    #[test]
    fn empty_stream_yields_idle_report() {
        let empty = Instance::new(vec![]).unwrap();
        let r = simulate(&empty)
            .billing(BillingModel::hourly())
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(r.servers_used, 0);
        assert_eq!(r.billed_time, Rational::ZERO);
        assert_eq!(r.billing_overhead(), None);
        assert!(r.open_series.is_empty());
    }

    #[test]
    fn equal_time_rental_end_and_start_merge_in_open_series() {
        // A full-size job forces its server closed at t=10, and the
        // next full-size job arrives exactly then. Closed servers
        // never reopen, so a second server starts at the same instant
        // the first one ends: the step series must merge the two
        // endpoint deltas into one entry (end applied before start)
        // rather than dipping to 0 at t=10.
        let stream = Instance::builder()
            .item(rat(1, 1), rat(0, 1), rat(10, 1))
            .item(rat(1, 1), rat(10, 1), rat(20, 1))
            .build()
            .unwrap();
        let r = simulate(&stream).run(&mut FirstFit::new()).unwrap();
        assert_eq!(r.servers_used, 2);
        assert_eq!(r.peak_servers, 1);
        assert_eq!(
            r.open_series,
            vec![
                (rat(0, 1), 1),
                (rat(10, 1), 1), // merged: -1 (end) then +1 (start)
                (rat(20, 1), 0),
            ]
        );
        assert_eq!(r.open_at(rat(10, 1)), 1);
    }

    #[test]
    fn degenerate_outcomes_utilization_and_mean_level() {
        // Empty run: no usage, so utilization is undefined.
        let empty = Instance::new(vec![]).unwrap();
        let out = Runner::new(&empty).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.utilization(), None);
        assert!(out.bins().is_empty());

        // Single item: the bin's mean level is exactly the item size,
        // and the run's utilization equals it.
        let single = Instance::builder()
            .item(rat(1, 3), rat(0, 1), rat(7, 1))
            .build()
            .unwrap();
        let out = Runner::new(&single).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins().len(), 1);
        assert_eq!(out.bins()[0].mean_level(), Some(rat(1, 3)));
        assert_eq!(out.utilization(), Some(rat(1, 3)));

        // Perfectly packed run: utilization is exactly 1.
        let full = Instance::builder()
            .item(rat(1, 1), rat(0, 1), rat(5, 1))
            .build()
            .unwrap();
        let out = Runner::new(&full).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.utilization(), Some(Rational::ONE));
        assert_eq!(out.bins()[0].mean_level(), Some(Rational::ONE));
    }

    #[test]
    fn gaming_trace_end_to_end() {
        // Smoke: a day of synthetic cloud gaming dispatches cleanly
        // and produces a sane bill.
        let trace = dbp_workloads::GamingConfig::default().generate();
        let r = simulate(&trace.instance)
            .billing(BillingModel::hourly())
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(r.jobs, trace.instance.len());
        assert!(r.billed_time >= r.usage_time);
        assert!(r.utilization.unwrap() <= Rational::ONE);
        assert!(r.peak_servers >= 1);
    }
}
