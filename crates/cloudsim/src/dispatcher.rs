//! End-to-end dispatch simulation.
//!
//! Jobs map one-to-one onto DBP items (the paper's reduction, §I):
//! the job's resource demand is the item size, its lifetime the item
//! interval, a server a unit bin. Dispatch is migration-free and
//! online — exactly the packing engine's contract — so the simulator
//! replays the stream through [`dbp_core::run_packing`] and derives
//! the billing and fleet reports from the outcome.

use crate::billing::BillingModel;
use crate::report::{CostReport, ServerRecord};
use dbp_core::{EngineObserver, Instance, NoopObserver, PackingAlgorithm, PackingError};
use dbp_numeric::Rational;

/// Replays the job stream `jobs` against `algo` under `billing`.
pub fn simulate(
    jobs: &Instance,
    algo: &mut dyn PackingAlgorithm,
    billing: BillingModel,
) -> Result<CostReport, PackingError> {
    simulate_observed(jobs, algo, billing, &mut NoopObserver)
}

/// [`simulate`] with an [`EngineObserver`] attached to the underlying
/// packing run — every dispatch decision streams through `observer`
/// before the report is assembled.
pub fn simulate_observed(
    jobs: &Instance,
    algo: &mut dyn PackingAlgorithm,
    billing: BillingModel,
    observer: &mut dyn EngineObserver,
) -> Result<CostReport, PackingError> {
    let outcome = dbp_core::run_packing_observed(jobs, algo, observer)?;

    let mut servers = Vec::with_capacity(outcome.bins().len());
    let mut billed_total = Rational::ZERO;
    for bin in outcome.bins() {
        let billed = billing.bill(bin.usage.len());
        billed_total += billed;
        servers.push(ServerRecord {
            server: bin.id.0,
            rental: bin.usage,
            billed,
            jobs: bin.items.len(),
            mean_utilization: bin.mean_level().unwrap_or(Rational::ZERO),
        });
    }

    // Open-server step series from rental endpoints (ends before
    // starts at equal times, matching half-open rentals).
    let mut events: Vec<(Rational, i32)> = Vec::with_capacity(servers.len() * 2);
    for s in &servers {
        events.push((s.rental.lo(), 1));
        events.push((s.rental.hi(), -1));
    }
    events.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut open_series: Vec<(Rational, usize)> = Vec::new();
    let mut open = 0i64;
    for (t, delta) in events {
        open += i64::from(delta);
        match open_series.last_mut() {
            Some((last_t, count)) if *last_t == t => *count = open as usize,
            _ => open_series.push((t, open as usize)),
        }
    }

    Ok(CostReport {
        algorithm: outcome.algorithm().to_string(),
        billing,
        jobs: jobs.len(),
        servers_used: outcome.bins_opened(),
        peak_servers: outcome.max_open_bins(),
        usage_time: outcome.total_usage(),
        billed_time: billed_total,
        utilization: outcome.utilization(),
        servers,
        open_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;

    fn jobs() -> Instance {
        // Times in minutes. Three jobs over ~2 hours.
        Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(50, 1))
            .item(rat(1, 2), rat(20, 1), rat(90, 1))
            .item(rat(3, 4), rat(30, 1), rat(100, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn continuous_billing_matches_usage() {
        let r = simulate(&jobs(), &mut FirstFit::new(), BillingModel::Continuous).unwrap();
        assert_eq!(r.billed_time, r.usage_time);
        assert_eq!(r.billing_overhead(), Some(rat(1, 1)));
        assert_eq!(r.jobs, 3);
    }

    #[test]
    fn hourly_billing_rounds_each_rental() {
        // FF: jobs 1+2 share server A ([0,90), 90 min → 120 billed);
        // job 3 (3/4) needs server B ([30,100), 70 min → 120 billed).
        let r = simulate(&jobs(), &mut FirstFit::new(), BillingModel::hourly()).unwrap();
        assert_eq!(r.servers_used, 2);
        assert_eq!(r.usage_time, rat(160, 1));
        assert_eq!(r.billed_time, rat(240, 1));
        assert_eq!(r.billing_overhead(), Some(rat(3, 2)));
        for s in &r.servers {
            assert!(s.billed >= s.rental.len());
            assert!(s.mean_utilization <= Rational::ONE);
        }
    }

    #[test]
    fn open_series_tracks_fleet() {
        let r = simulate(&jobs(), &mut FirstFit::new(), BillingModel::Continuous).unwrap();
        assert_eq!(r.open_at(rat(-1, 1)), 0);
        assert_eq!(r.open_at(rat(0, 1)), 1);
        assert_eq!(r.open_at(rat(40, 1)), 2);
        assert_eq!(r.open_at(rat(95, 1)), 1);
        assert_eq!(r.open_at(rat(100, 1)), 0);
        assert_eq!(r.peak_servers, 2);
    }

    #[test]
    fn different_dispatchers_compared_fairly() {
        let stream = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(10, 1))
            .item(rat(1, 4), rat(0, 1), rat(120, 1))
            .item(rat(1, 2), rat(15, 1), rat(30, 1))
            .item(rat(1, 2), rat(40, 1), rat(55, 1))
            .build()
            .unwrap();
        let ff = simulate(&stream, &mut FirstFit::new(), BillingModel::hourly()).unwrap();
        let nf = simulate(&stream, &mut NextFit::new(), BillingModel::hourly()).unwrap();
        // Both dispatch everything; cost comparison is meaningful.
        assert_eq!(ff.jobs, nf.jobs);
        assert!(ff.billed_time <= nf.billed_time, "FF should not lose here");
    }

    #[test]
    fn empty_stream_yields_idle_report() {
        let empty = Instance::new(vec![]).unwrap();
        let r = simulate(&empty, &mut FirstFit::new(), BillingModel::hourly()).unwrap();
        assert_eq!(r.servers_used, 0);
        assert_eq!(r.billed_time, Rational::ZERO);
        assert_eq!(r.billing_overhead(), None);
        assert!(r.open_series.is_empty());
    }

    #[test]
    fn equal_time_rental_end_and_start_merge_in_open_series() {
        // A full-size job forces its server closed at t=10, and the
        // next full-size job arrives exactly then. Closed servers
        // never reopen, so a second server starts at the same instant
        // the first one ends: the step series must merge the two
        // endpoint deltas into one entry (end applied before start)
        // rather than dipping to 0 at t=10.
        let stream = Instance::builder()
            .item(rat(1, 1), rat(0, 1), rat(10, 1))
            .item(rat(1, 1), rat(10, 1), rat(20, 1))
            .build()
            .unwrap();
        let r = simulate(&stream, &mut FirstFit::new(), BillingModel::Continuous).unwrap();
        assert_eq!(r.servers_used, 2);
        assert_eq!(r.peak_servers, 1);
        assert_eq!(
            r.open_series,
            vec![
                (rat(0, 1), 1),
                (rat(10, 1), 1), // merged: -1 (end) then +1 (start)
                (rat(20, 1), 0),
            ]
        );
        assert_eq!(r.open_at(rat(10, 1)), 1);
    }

    #[test]
    fn degenerate_outcomes_utilization_and_mean_level() {
        // Empty run: no usage, so utilization is undefined.
        let empty = Instance::new(vec![]).unwrap();
        let out = dbp_core::run_packing(&empty, &mut FirstFit::new()).unwrap();
        assert_eq!(out.utilization(), None);
        assert!(out.bins().is_empty());

        // Single item: the bin's mean level is exactly the item size,
        // and the run's utilization equals it.
        let single = Instance::builder()
            .item(rat(1, 3), rat(0, 1), rat(7, 1))
            .build()
            .unwrap();
        let out = dbp_core::run_packing(&single, &mut FirstFit::new()).unwrap();
        assert_eq!(out.bins().len(), 1);
        assert_eq!(out.bins()[0].mean_level(), Some(rat(1, 3)));
        assert_eq!(out.utilization(), Some(rat(1, 3)));

        // Perfectly packed run: utilization is exactly 1.
        let full = Instance::builder()
            .item(rat(1, 1), rat(0, 1), rat(5, 1))
            .build()
            .unwrap();
        let out = dbp_core::run_packing(&full, &mut FirstFit::new()).unwrap();
        assert_eq!(out.utilization(), Some(Rational::ONE));
        assert_eq!(out.bins()[0].mean_level(), Some(Rational::ONE));
    }

    #[test]
    fn gaming_trace_end_to_end() {
        // Smoke: a day of synthetic cloud gaming dispatches cleanly
        // and produces a sane bill.
        let trace = dbp_workloads::GamingConfig::default().generate();
        let r = simulate(
            &trace.instance,
            &mut FirstFit::new(),
            BillingModel::hourly(),
        )
        .unwrap();
        assert_eq!(r.jobs, trace.instance.len());
        assert!(r.billed_time >= r.usage_time);
        assert!(r.utilization.unwrap() <= Rational::ONE);
        assert!(r.peak_servers >= 1);
    }
}
