//! Request/response frames spoken between `dbp-server` and its clients.
//!
//! Every frame is one versioned JSON object (see [`crate::framing`] for
//! how frames are delimited on the socket). Requests are externally
//! tagged — `{"v":1,"hello":{...}}`, `{"v":1,"batch":[...]}` — and a
//! single-event request is *exactly* the stream-CLI line format
//! (`{"v":1,"arrive":{...}}`), so a captured JSONL trace replays
//! against a live server without translation.
//!
//! # Request tracing
//!
//! Any v1 frame may carry an optional `trace` entry next to `v` — a
//! client-supplied request id (`{"v":1,"trace":7,"arrive":{...}}`).
//! Tracing is per-frame, never negotiated: `hello` is unchanged, a
//! server echoes the id on the matching response, and a frame without
//! the entry encodes byte-identically to the pre-tracing format, so
//! untraced clients and captured traces are unaffected. Servers MUST
//! accept traced frames from clients that never announced tracing
//! (accept-and-echo, not refuse) — the property
//! `trace_is_optional_and_never_breaks_untraced_frames` pins this
//! down.

use crate::line::{strip_version, tag_version};
use crate::{Backend, BinId, Event, PackingOutcome, SessionMetrics, SessionSnapshot, TickGrid};
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// Session parameters a client declares when attaching to a tenant.
///
/// Mirrors `Session::builder`: algorithm by name, backend selection,
/// optional declared tick grid, optional sharding. The first hello for
/// a tenant creates its session (or resumes it from a journal); later
/// hellos must agree with the live configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Tenant key this connection drives.
    pub tenant: String,
    /// Auth token, checked against the server's token policy.
    pub token: Option<String>,
    /// Algorithm name (`firstfit`, `bestfit`, ... — same names as the CLI).
    pub algo: String,
    /// Engine backend selection.
    pub backend: Backend,
    /// Declared integer grid for the tick backend.
    pub grid: Option<TickGrid>,
    /// Number of session shards; `1` keeps a single `Session`,
    /// anything larger drives a `Fleet` routed by `id % shards`.
    pub shards: u32,
    /// Record per-session telemetry counters.
    pub telemetry: bool,
    /// Journal every accepted event for crash recovery. Load
    /// generators turn this off to keep server memory flat; `snapshot`
    /// frames then answer with a typed error.
    pub journal: bool,
}

impl Hello {
    /// A hello with the workspace defaults: auto backend, no grid,
    /// one shard, telemetry off, journaling on.
    pub fn new(tenant: impl Into<String>, algo: impl Into<String>) -> Self {
        Hello {
            tenant: tenant.into(),
            token: None,
            algo: algo.into(),
            backend: Backend::Auto,
            grid: None,
            shards: 1,
            telemetry: false,
            journal: true,
        }
    }
}

// `Hello` holds an `Option<TickGrid>`; the vendored derive can't see
// through generic impl requirements on field types it didn't derive
// in the same crate, so the impls are written out (and double as the
// wire-format spec: absent optional fields take their defaults).
impl Serialize for Hello {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("tenant".to_string(), Value::Str(self.tenant.clone())),
            ("algo".to_string(), Value::Str(self.algo.clone())),
            ("backend".to_string(), self.backend.to_value()),
            ("shards".to_string(), Value::Int(self.shards as i128)),
            ("telemetry".to_string(), Value::Bool(self.telemetry)),
            ("journal".to_string(), Value::Bool(self.journal)),
        ];
        if let Some(token) = &self.token {
            obj.push(("token".to_string(), Value::Str(token.clone())));
        }
        if let Some(grid) = &self.grid {
            obj.push(("grid".to_string(), grid.to_value()));
        }
        Value::Object(obj)
    }
}

impl Deserialize for Hello {
    fn from_value(v: &Value) -> Result<Hello, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        let get = |name: &str| obj.iter().find_map(|(k, val)| (k == name).then_some(val));
        let req_str = |name: &str| -> Result<String, Error> {
            get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| Error::missing_field(name, "hello"))
        };
        Ok(Hello {
            tenant: req_str("tenant")?,
            token: match get("token") {
                Some(Value::Null) | None => None,
                Some(v) => Some(String::from_value(v)?),
            },
            algo: req_str("algo")?,
            backend: match get("backend") {
                Some(v) => Backend::from_value(v)?,
                None => Backend::Auto,
            },
            grid: match get("grid") {
                Some(Value::Null) | None => None,
                Some(v) => Some(TickGrid::from_value(v)?),
            },
            shards: match get("shards") {
                Some(v) => u32::from_value(v)?,
                None => 1,
            },
            telemetry: match get("telemetry") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
            journal: match get("journal") {
                Some(v) => bool::from_value(v)?,
                None => true,
            },
        })
    }
}

/// Inserts a `trace` request id directly after the `v` entry, keeping
/// the canonical field order `v`, `trace`, `<tag>`. `None` returns the
/// frame untouched, so untraced encodings stay byte-identical.
fn attach_trace(frame: Value, trace: Option<u64>) -> Value {
    let Some(id) = trace else { return frame };
    let Value::Object(entries) = frame else {
        return frame;
    };
    let mut out = Vec::with_capacity(entries.len() + 1);
    for (k, v) in entries {
        let was_version = k == "v";
        out.push((k, v));
        if was_version {
            out.push(("trace".to_string(), Value::Int(id as i128)));
        }
    }
    Value::Object(out)
}

/// Removes a `trace` entry (if any) from a version-stripped payload,
/// returning the remaining payload and the request id. A present
/// `trace` must be a non-negative integer.
fn split_trace(payload: Value, context: &str) -> Result<(Value, Option<u64>), Error> {
    let Value::Object(entries) = payload else {
        return Ok((payload, None));
    };
    let mut trace = None;
    let mut rest = Vec::with_capacity(entries.len());
    for (k, v) in entries {
        if k == "trace" {
            trace = Some(u64::from_value(&v).map_err(|_| {
                Error::custom(format!("{context}: `trace` must be a non-negative integer"))
            })?);
        } else {
            rest.push((k, v));
        }
    }
    Ok((Value::Object(rest), trace))
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Attach this connection to a tenant (must be the first frame).
    Hello(Hello),
    /// One stream event; answered with the placement
    /// ([`Response::Bin`]) for arrivals, [`Response::Bin`] of the
    /// freed bin for departures.
    Event(Event),
    /// Many events in submission order; answered with
    /// [`Response::Bins`], one `BinId` per event.
    Batch(Vec<Event>),
    /// Ask for a resumable checkpoint of the tenant session.
    Snapshot,
    /// Ask for the tenant's live stream metrics.
    Metrics,
    /// Finish the tenant session and return its packing outcomes
    /// (one per shard).
    Finish,
    /// Stop the whole server (subject to the server's token policy).
    Shutdown {
        /// Auth token, checked like a tenant token.
        token: Option<String>,
    },
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let payload = match self {
            // An event frame *is* the stream line: `{"arrive":{...}}`.
            Request::Event(ev) => ev.to_value(),
            Request::Hello(h) => Value::Object(vec![("hello".to_string(), h.to_value())]),
            Request::Batch(events) => Value::Object(vec![(
                "batch".to_string(),
                Value::Array(events.iter().map(Serialize::to_value).collect()),
            )]),
            Request::Snapshot => {
                Value::Object(vec![("snapshot".to_string(), Value::Object(vec![]))])
            }
            Request::Metrics => Value::Object(vec![("metrics".to_string(), Value::Object(vec![]))]),
            Request::Finish => Value::Object(vec![("finish".to_string(), Value::Object(vec![]))]),
            Request::Shutdown { token } => Value::Object(vec![(
                "shutdown".to_string(),
                Value::Object(match token {
                    Some(t) => vec![("token".to_string(), Value::Str(t.clone()))],
                    None => vec![],
                }),
            )]),
        };
        tag_version(payload)
    }
}

impl Request {
    /// The versioned frame with an optional request id attached:
    /// `{"v":1,"trace":N,"arrive":{...}}`. `trace: None` is exactly
    /// [`Serialize::to_value`].
    pub fn to_traced_value(&self, trace: Option<u64>) -> Value {
        attach_trace(self.to_value(), trace)
    }

    /// Parses a frame and its optional `trace` request id. Frames
    /// without the entry parse with `None` — the two wire shapes share
    /// one grammar.
    pub fn from_traced_value(v: &Value) -> Result<(Request, Option<u64>), Error> {
        let payload = strip_version(v).map_err(Error::custom)?;
        let (payload, trace) = split_trace(payload, "request")?;
        Ok((Request::from_stripped(&payload)?, trace))
    }

    fn from_stripped(payload: &Value) -> Result<Request, Error> {
        let obj = payload
            .as_object()
            .ok_or_else(|| Error::expected("object", payload))?;
        let [(tag, body)] = obj else {
            return Err(Error::custom(
                "request: expected exactly one frame tag next to `v`",
            ));
        };
        match tag.as_str() {
            "arrive" | "depart" => Ok(Request::Event(Event::from_value(payload)?)),
            "hello" => Ok(Request::Hello(Hello::from_value(body)?)),
            "batch" => Ok(Request::Batch(Vec::from_value(body)?)),
            "snapshot" => Ok(Request::Snapshot),
            "metrics" => Ok(Request::Metrics),
            "finish" => Ok(Request::Finish),
            "shutdown" => Ok(Request::Shutdown {
                token: match body.get("token") {
                    Some(Value::Null) | None => None,
                    Some(t) => Some(String::from_value(t)?),
                },
            }),
            other => Err(Error::custom(format!(
                "request: unknown frame tag `{other}`"
            ))),
        }
    }
}

impl Deserialize for Request {
    /// The compatibility rule for old servers and tools: a `trace`
    /// entry is accepted and discarded, never refused.
    fn from_value(v: &Value) -> Result<Request, Error> {
        Request::from_traced_value(v).map(|(request, _)| request)
    }
}

/// What went wrong, as a machine-matchable class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Missing or wrong auth token.
    Auth,
    /// A per-tenant quota (bins, in-flight items, events/sec) was hit.
    Quota,
    /// The frame itself was malformed or out of protocol order.
    Protocol,
    /// The session rejected the event (off-grid, duplicate id, ...).
    Session,
    /// The request is valid but this server can't serve it
    /// (e.g. `snapshot` on a journal-less tenant).
    Unavailable,
}

impl ErrorKind {
    fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::Auth => "auth",
            ErrorKind::Quota => "quota",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Session => "session",
            ErrorKind::Unavailable => "unavailable",
        }
    }
}

impl Serialize for ErrorKind {
    fn to_value(&self) -> Value {
        Value::Str(self.wire_name().to_string())
    }
}

impl Deserialize for ErrorKind {
    fn from_value(v: &Value) -> Result<ErrorKind, Error> {
        match v.as_str() {
            Some("auth") => Ok(ErrorKind::Auth),
            Some("quota") => Ok(ErrorKind::Quota),
            Some("protocol") => Ok(ErrorKind::Protocol),
            Some("session") => Ok(ErrorKind::Session),
            Some("unavailable") => Ok(ErrorKind::Unavailable),
            _ => Err(Error::expected("error kind string", v)),
        }
    }
}

/// A typed server-side failure, sent as a [`Response::Error`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// For batch requests: index of the first event that failed
    /// (everything before it was applied).
    pub index: Option<u64>,
}

impl WireError {
    /// Shorthand constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
            index: None,
        }
    }

    /// Attach the failing batch index.
    pub fn at_index(mut self, index: u64) -> Self {
        self.index = Some(index);
        self
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.wire_name(), self.message)?;
        if let Some(i) = self.index {
            write!(f, " (at batch index {i})")?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

impl Serialize for WireError {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("kind".to_string(), self.kind.to_value()),
            ("message".to_string(), Value::Str(self.message.clone())),
        ];
        if let Some(i) = self.index {
            obj.push(("index".to_string(), Value::Int(i as i128)));
        }
        Value::Object(obj)
    }
}

impl Deserialize for WireError {
    fn from_value(v: &Value) -> Result<WireError, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        let get = |name: &str| obj.iter().find_map(|(k, val)| (k == name).then_some(val));
        Ok(WireError {
            kind: ErrorKind::from_value(
                get("kind").ok_or_else(|| Error::missing_field("kind", "error"))?,
            )?,
            message: String::from_value(
                get("message").ok_or_else(|| Error::missing_field("message", "error"))?,
            )?,
            index: match get("index") {
                Some(Value::Null) | None => None,
                Some(v) => Some(u64::from_value(v)?),
            },
        })
    }
}

/// A server-to-client frame; every request gets exactly one.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Hello accepted; reports how many journaled events were
    /// replayed into the session before this connection attached.
    Hello {
        /// Tenant key the connection is now driving.
        tenant: String,
        /// Journaled events replayed on resume (0 for a fresh tenant).
        resumed_events: u64,
    },
    /// Placement (arrival) or freed bin (departure) for one event.
    Bin(BinId),
    /// Placements for a batch, one per event in submission order.
    Bins(Vec<BinId>),
    /// A resumable checkpoint of the tenant session.
    Snapshot(SessionSnapshot),
    /// Live stream metrics (folded across shards for fleets). Boxed:
    /// `SessionMetrics` is ~370 bytes and would otherwise dominate
    /// the size of every hot-path `Bin` response moved around.
    Metrics(Box<SessionMetrics>),
    /// Finished packing outcomes, one per shard.
    Outcomes(Vec<PackingOutcome>),
    /// The server acknowledged shutdown and is stopping.
    Shutdown,
    /// The request failed; the session state is unchanged except as
    /// described by [`WireError::index`].
    Error(WireError),
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let (tag, body) = match self {
            Response::Hello {
                tenant,
                resumed_events,
            } => (
                "hello",
                Value::Object(vec![
                    ("tenant".to_string(), Value::Str(tenant.clone())),
                    (
                        "resumed_events".to_string(),
                        Value::Int(*resumed_events as i128),
                    ),
                ]),
            ),
            Response::Bin(bin) => ("bin", bin.to_value()),
            Response::Bins(bins) => (
                "bins",
                Value::Array(bins.iter().map(Serialize::to_value).collect()),
            ),
            Response::Snapshot(s) => ("snapshot", s.to_value()),
            Response::Metrics(m) => ("metrics", m.to_value()),
            Response::Outcomes(outcomes) => (
                "outcomes",
                Value::Array(outcomes.iter().map(Serialize::to_value).collect()),
            ),
            Response::Shutdown => ("shutdown", Value::Object(vec![])),
            Response::Error(e) => ("error", e.to_value()),
        };
        tag_version(Value::Object(vec![(tag.to_string(), body)]))
    }
}

impl Response {
    /// The versioned frame with the request's `trace` id echoed:
    /// `{"v":1,"trace":N,"bin":5}`. `trace: None` is exactly
    /// [`Serialize::to_value`].
    pub fn to_traced_value(&self, trace: Option<u64>) -> Value {
        attach_trace(self.to_value(), trace)
    }

    /// Parses a response frame and the echoed `trace` id, if any.
    pub fn from_traced_value(v: &Value) -> Result<(Response, Option<u64>), Error> {
        let payload = strip_version(v).map_err(Error::custom)?;
        let (payload, trace) = split_trace(payload, "response")?;
        Ok((Response::from_stripped(&payload)?, trace))
    }

    fn from_stripped(payload: &Value) -> Result<Response, Error> {
        let obj = payload
            .as_object()
            .ok_or_else(|| Error::expected("object", payload))?;
        let [(tag, body)] = obj else {
            return Err(Error::custom(
                "response: expected exactly one frame tag next to `v`",
            ));
        };
        match tag.as_str() {
            "hello" => {
                let get = |name: &str| {
                    body.as_object()
                        .and_then(|o| o.iter().find_map(|(k, v)| (k == name).then_some(v)))
                        .ok_or_else(|| Error::missing_field(name, "hello response"))
                };
                Ok(Response::Hello {
                    tenant: String::from_value(get("tenant")?)?,
                    resumed_events: u64::from_value(get("resumed_events")?)?,
                })
            }
            "bin" => Ok(Response::Bin(BinId::from_value(body)?)),
            "bins" => Ok(Response::Bins(Vec::from_value(body)?)),
            "snapshot" => Ok(Response::Snapshot(SessionSnapshot::from_value(body)?)),
            "metrics" => Ok(Response::Metrics(Box::new(SessionMetrics::from_value(
                body,
            )?))),
            "outcomes" => Ok(Response::Outcomes(Vec::from_value(body)?)),
            "shutdown" => Ok(Response::Shutdown),
            "error" => Ok(Response::Error(WireError::from_value(body)?)),
            other => Err(Error::custom(format!(
                "response: unknown frame tag `{other}`"
            ))),
        }
    }
}

impl Deserialize for Response {
    /// Like requests, an echoed `trace` entry is accepted and
    /// discarded by the untraced entry point.
    fn from_value(v: &Value) -> Result<Response, Error> {
        Response::from_traced_value(v).map(|(response, _)| response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::ItemId;
    use dbp_numeric::rat;

    fn round_trip_request(req: &Request) {
        let text = serde_json::to_string(&req.to_value()).unwrap();
        let back = Request::from_value(&serde_json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, req, "through {text}");
    }

    fn round_trip_response(resp: &Response) {
        let text = serde_json::to_string(&resp.to_value()).unwrap();
        let back = Response::from_value(&serde_json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, resp, "through {text}");
    }

    #[test]
    fn requests_round_trip() {
        let mut hello = Hello::new("acme", "firstfit");
        hello.token = Some("s3cret".into());
        hello.grid = Some(TickGrid::new(1, 128));
        hello.shards = 4;
        hello.telemetry = true;
        hello.journal = false;
        round_trip_request(&Request::Hello(hello));
        round_trip_request(&Request::Event(Event::Arrive {
            id: ItemId(3),
            size: rat(1, 3),
            time: rat(7, 2),
        }));
        round_trip_request(&Request::Batch(vec![
            Event::Arrive {
                id: ItemId(0),
                size: rat(1, 2),
                time: rat(0, 1),
            },
            Event::Depart {
                id: ItemId(0),
                time: rat(3, 1),
            },
        ]));
        round_trip_request(&Request::Snapshot);
        round_trip_request(&Request::Metrics);
        round_trip_request(&Request::Finish);
        round_trip_request(&Request::Shutdown { token: None });
        round_trip_request(&Request::Shutdown {
            token: Some("s3cret".into()),
        });
    }

    #[test]
    fn event_request_frame_is_the_stream_line() {
        let ev = Event::Depart {
            id: ItemId(9),
            time: rat(4, 1),
        };
        let frame = serde_json::to_string(&Request::Event(ev).to_value()).unwrap();
        let line = crate::event_to_line(&ev);
        assert_eq!(frame, line);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Hello {
            tenant: "acme".into(),
            resumed_events: 42,
        });
        round_trip_response(&Response::Bin(BinId(5)));
        round_trip_response(&Response::Bins(vec![BinId(0), BinId(1), BinId(0)]));
        round_trip_response(&Response::Shutdown);
        round_trip_response(&Response::Error(
            WireError::new(ErrorKind::Quota, "events/sec over quota").at_index(17),
        ));
    }

    #[test]
    fn hello_defaults_fill_missing_fields() {
        let minimal = serde_json::parse(r#"{"tenant":"t","algo":"firstfit"}"#).unwrap();
        let hello = Hello::from_value(&minimal).unwrap();
        assert_eq!(hello, Hello::new("t", "firstfit"));
    }

    #[test]
    fn trace_is_optional_and_never_breaks_untraced_frames() {
        let ev = Event::Arrive {
            id: ItemId(3),
            size: rat(1, 3),
            time: rat(7, 2),
        };
        let req = Request::Event(ev);
        // Untraced traced-encoding is byte-identical to the plain one.
        assert_eq!(
            serde_json::to_string(&req.to_traced_value(None)).unwrap(),
            serde_json::to_string(&req.to_value()).unwrap(),
        );
        // Traced frames carry the id next to `v` and round-trip it.
        let traced = serde_json::to_string(&req.to_traced_value(Some(7))).unwrap();
        assert!(
            traced.starts_with(r#"{"v":1,"trace":7,"arrive""#),
            "{traced}"
        );
        let (back, trace) =
            Request::from_traced_value(&serde_json::parse(&traced).unwrap()).unwrap();
        assert_eq!(back, req);
        assert_eq!(trace, Some(7));
        // The compatibility rule: the untraced entry point accepts a
        // traced frame (old tooling never refuses new clients).
        assert_eq!(
            Request::from_value(&serde_json::parse(&traced).unwrap()).unwrap(),
            req
        );
        // Responses echo the same shape.
        let resp = Response::Bin(BinId(5));
        let echoed = serde_json::to_string(&resp.to_traced_value(Some(7))).unwrap();
        assert_eq!(echoed, r#"{"v":1,"trace":7,"bin":5}"#);
        let (back, trace) =
            Response::from_traced_value(&serde_json::parse(&echoed).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(trace, Some(7));
        assert_eq!(
            Response::from_value(&serde_json::parse(&echoed).unwrap()).unwrap(),
            resp
        );
    }

    #[test]
    fn traced_frames_round_trip_every_request_kind() {
        for req in [
            Request::Hello(Hello::new("acme", "firstfit")),
            Request::Batch(vec![Event::Depart {
                id: ItemId(0),
                time: rat(3, 1),
            }]),
            Request::Snapshot,
            Request::Metrics,
            Request::Finish,
            Request::Shutdown { token: None },
        ] {
            let text = serde_json::to_string(&req.to_traced_value(Some(99))).unwrap();
            let (back, trace) =
                Request::from_traced_value(&serde_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, req, "through {text}");
            assert_eq!(trace, Some(99), "through {text}");
        }
    }

    #[test]
    fn bad_trace_values_are_typed_errors() {
        let negative = serde_json::parse(r#"{"v":1,"trace":-1,"finish":{}}"#).unwrap();
        assert!(Request::from_traced_value(&negative).is_err());
        let stringy = serde_json::parse(r#"{"v":1,"trace":"x","finish":{}}"#).unwrap();
        assert!(Request::from_traced_value(&stringy).is_err());
    }

    #[test]
    fn unknown_tags_and_versions_are_errors() {
        let bogus = serde_json::parse(r#"{"v":1,"teleport":{}}"#).unwrap();
        assert!(Request::from_value(&bogus).is_err());
        let future = serde_json::parse(r#"{"v":9,"finish":{}}"#).unwrap();
        assert!(Request::from_value(&future).is_err());
    }
}
