//! Length-prefixed framing for JSONL over a byte stream.
//!
//! A frame on the wire is
//!
//! ```text
//! <decimal byte length of the JSON document>\n
//! <JSON document>\n
//! ```
//!
//! The explicit length lets a reader pull exactly one document without
//! scanning for newlines inside it, and a human with `nc` can still
//! speak the protocol by hand (`printf '%s\n%s\n' "${#json}" "$json"`).
//!
//! Error handling draws a deliberate line: transport damage (I/O
//! errors, an unparseable length line, an oversized frame) poisons the
//! stream and is returned as `Err` — the connection cannot continue
//! because frame boundaries are lost. A frame whose *payload* fails to
//! parse is fully consumed first, so it comes back as
//! [`FrameRead::Malformed`] and the caller can answer with a typed
//! protocol error and keep the connection alive.

use serde::Deserialize;
use std::io::{self, BufRead, Write};

/// Hard ceiling on a single frame's payload, guarding the server
/// against a hostile or confused peer declaring a huge length.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Outcome of reading one frame.
#[derive(Debug)]
pub enum FrameRead<T> {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// One well-formed frame.
    Frame(T),
    /// The frame was delimited correctly but its payload didn't parse;
    /// the stream is positioned at the next frame boundary.
    Malformed(String),
}

/// Writes `payload` (one serialized JSON document, no newlines added
/// by the caller) as a length-prefixed frame. Does not flush.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write_frame_bytes(w, payload.as_bytes())
}

/// Byte-slice twin of [`write_frame`] for payloads produced by the
/// [`crate::fast`] writers.
pub fn write_frame_bytes(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut len_line = itoa(payload.len());
    len_line.push('\n');
    w.write_all(len_line.as_bytes())?;
    w.write_all(payload)?;
    w.write_all(b"\n")
}

// Formats a usize without going through `format!` — this sits on the
// per-event hot path of the server and loadgen.
fn itoa(mut n: usize) -> String {
    if n == 0 {
        return "0".to_string();
    }
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while n > 0 {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
    }
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

/// Reads one length-prefixed frame and deserializes it.
///
/// `Err` means the stream is no longer frame-aligned (close it);
/// [`FrameRead::Malformed`] means this frame was bad but the stream is
/// fine.
pub fn read_frame<T: Deserialize>(r: &mut impl BufRead) -> io::Result<FrameRead<T>> {
    let mut scratch = Vec::new();
    match read_raw_frame(r, &mut scratch)? {
        RawFrame::Eof => Ok(FrameRead::Eof),
        RawFrame::Payload => Ok(parse_payload(&scratch)),
    }
}

/// Reads one frame into `scratch` (reused across calls to avoid
/// per-frame allocation) and deserializes it.
pub fn read_frame_into<T: Deserialize>(
    r: &mut impl BufRead,
    scratch: &mut Vec<u8>,
) -> io::Result<FrameRead<T>> {
    match read_raw_frame(r, scratch)? {
        RawFrame::Eof => Ok(FrameRead::Eof),
        RawFrame::Payload => Ok(parse_payload(scratch)),
    }
}

/// Outcome of [`read_frame_raw`]: either end-of-stream or "one frame's
/// payload bytes are now in the scratch buffer".
#[derive(Debug)]
pub enum RawFrame {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// One delimited payload, left in the caller's scratch buffer —
    /// not yet parsed, so hot paths can try [`crate::fast`] first and
    /// fall back to [`parse_frame_payload`].
    Payload,
}

/// Reads one frame's raw payload into `scratch` without parsing it.
///
/// The error contract matches [`read_frame`]: `Err` means frame
/// alignment is lost and the stream must be closed.
pub fn read_frame_raw(r: &mut impl BufRead, scratch: &mut Vec<u8>) -> io::Result<RawFrame> {
    read_raw_frame(r, scratch)
}

/// Parses one frame payload (as delivered by [`read_frame_raw`]) with
/// the generic `Value` codec.
pub fn parse_frame_payload<T: Deserialize>(bytes: &[u8]) -> FrameRead<T> {
    parse_payload(bytes)
}

fn parse_payload<T: Deserialize>(bytes: &[u8]) -> FrameRead<T> {
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(e) => return FrameRead::Malformed(format!("frame is not UTF-8: {e}")),
    };
    let value = match serde_json::parse(text) {
        Ok(v) => v,
        Err(e) => return FrameRead::Malformed(format!("frame is not JSON: {e}")),
    };
    match T::from_value(&value) {
        Ok(frame) => FrameRead::Frame(frame),
        Err(e) => FrameRead::Malformed(e.to_string()),
    }
}

fn read_raw_frame(r: &mut impl BufRead, scratch: &mut Vec<u8>) -> io::Result<RawFrame> {
    // Length line.
    scratch.clear();
    let n = r.read_until(b'\n', scratch)?;
    if n == 0 {
        return Ok(RawFrame::Eof);
    }
    let len_text = std::str::from_utf8(scratch)
        .map_err(|_| bad_stream("frame length line is not UTF-8"))?
        .trim();
    let len: usize = len_text
        .parse()
        .map_err(|_| bad_stream(format!("bad frame length line {len_text:?}")))?;
    if len > MAX_FRAME_BYTES {
        return Err(bad_stream(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }

    // Payload: exactly `len` bytes, then the trailing newline.
    scratch.clear();
    scratch.resize(len, 0);
    r.read_exact(scratch)?;
    let mut nl = [0u8; 1];
    r.read_exact(&mut nl)?;
    if nl[0] != b'\n' {
        return Err(bad_stream("frame payload not followed by newline"));
    }
    Ok(RawFrame::Payload)
}

fn bad_stream(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, Response};
    use serde::Serialize;
    use std::io::Cursor;

    fn framed(payloads: &[&str]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        buf
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let snapshot = serde_json::to_string(&Request::Snapshot.to_value()).unwrap();
        let finish = serde_json::to_string(&Request::Finish.to_value()).unwrap();
        let mut r = Cursor::new(framed(&[&snapshot, &finish]));
        assert!(matches!(
            read_frame::<Request>(&mut r).unwrap(),
            FrameRead::Frame(Request::Snapshot)
        ));
        assert!(matches!(
            read_frame::<Request>(&mut r).unwrap(),
            FrameRead::Frame(Request::Finish)
        ));
        assert!(matches!(
            read_frame::<Request>(&mut r).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn malformed_payload_leaves_stream_aligned() {
        let finish = serde_json::to_string(&Request::Finish.to_value()).unwrap();
        let mut r = Cursor::new(framed(&["{not json", &finish]));
        assert!(matches!(
            read_frame::<Request>(&mut r).unwrap(),
            FrameRead::Malformed(_)
        ));
        // The bad frame was fully consumed; the next one still parses.
        assert!(matches!(
            read_frame::<Request>(&mut r).unwrap(),
            FrameRead::Frame(Request::Finish)
        ));
    }

    #[test]
    fn wrong_schema_is_malformed_not_fatal() {
        // A valid JSON document that is not a Response.
        let mut r = Cursor::new(framed(&[r#"{"v":1,"teleport":{}}"#]));
        assert!(matches!(
            read_frame::<Response>(&mut r).unwrap(),
            FrameRead::Malformed(_)
        ));
    }

    #[test]
    fn transport_damage_is_fatal() {
        let mut r = Cursor::new(b"not-a-number\n{}\n".to_vec());
        assert!(read_frame::<Request>(&mut r).is_err());

        let oversized = format!("{}\n", MAX_FRAME_BYTES + 1);
        let mut r = Cursor::new(oversized.into_bytes());
        assert!(read_frame::<Request>(&mut r).is_err());

        // Truncated payload: declared 10 bytes, stream ends early.
        let mut r = Cursor::new(b"10\n{}\n".to_vec());
        assert!(read_frame::<Request>(&mut r).is_err());
    }

    #[test]
    fn empty_length_zero_frame_is_malformed() {
        let mut r = Cursor::new(framed(&[""]));
        assert!(matches!(
            read_frame::<Request>(&mut r).unwrap(),
            FrameRead::Malformed(_)
        ));
    }
}
