//! Canonical-bytes fast path for the hot wire frames.
//!
//! The generic codec routes every frame through a [`serde::Value`]
//! tree — an allocation per key and per node, which costs microseconds
//! per event and caps a single-core server near 300k placements/sec.
//! The placement hot path (event and batch requests, bin and bins
//! responses) therefore has a second implementation here: writers that
//! emit the *byte-identical* canonical encoding directly into a reused
//! buffer, and a strict recursive-descent parser that matches exactly
//! those bytes.
//!
//! Any deviation from canonical form — whitespace, reordered keys,
//! leading zeros, an unnormalized rational — makes the fast parser
//! return `None`, and the caller falls back to the generic `Value`
//! path. The wire *format* is therefore unchanged: this module is an
//! optimization, not a dialect. Byte-equality of the two encoders and
//! agreement of the two parsers are enforced by the unit tests below
//! and by the property tests in `tests/prop_wire.rs`.

use crate::frame::{Request, Response};
use crate::{BinId, Event, ItemId};
use dbp_numeric::Rational;

/// Appends the canonical `{"v":1,"arrive":{...}}` /
/// `{"v":1,"depart":{...}}` single-event request frame — byte-identical
/// to `serde_json::to_string(&Request::Event(ev).to_value())`.
pub fn write_event_request(buf: &mut Vec<u8>, ev: &Event) {
    write_event_request_traced(buf, ev, None);
}

/// [`write_event_request`] with an optional `trace` request id after
/// `v` — byte-identical to the generic `to_traced_value` encoding.
pub fn write_event_request_traced(buf: &mut Vec<u8>, ev: &Event, trace: Option<u64>) {
    buf.extend_from_slice(b"{\"v\":1,");
    push_trace(buf, trace);
    push_tagged_event(buf, ev);
    buf.push(b'}');
}

/// Appends the canonical `{"v":1,"batch":[...]}` request frame —
/// byte-identical to the generic encoding of `Request::Batch`.
pub fn write_batch_request(buf: &mut Vec<u8>, events: &[Event]) {
    write_batch_request_traced(buf, events, None);
}

/// [`write_batch_request`] with an optional `trace` request id.
pub fn write_batch_request_traced(buf: &mut Vec<u8>, events: &[Event], trace: Option<u64>) {
    buf.extend_from_slice(b"{\"v\":1,");
    push_trace(buf, trace);
    buf.extend_from_slice(b"\"batch\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            buf.push(b',');
        }
        buf.push(b'{');
        push_tagged_event(buf, ev);
        buf.push(b'}');
    }
    buf.extend_from_slice(b"]}");
}

/// Appends the canonical `{"v":1,"bin":N}` response frame.
pub fn write_bin_response(buf: &mut Vec<u8>, bin: BinId) {
    write_bin_response_traced(buf, bin, None);
}

/// [`write_bin_response`] echoing the request's `trace` id.
pub fn write_bin_response_traced(buf: &mut Vec<u8>, bin: BinId, trace: Option<u64>) {
    buf.extend_from_slice(b"{\"v\":1,");
    push_trace(buf, trace);
    buf.extend_from_slice(b"\"bin\":");
    push_i128(buf, bin.0 as i128);
    buf.push(b'}');
}

/// Appends the canonical `{"v":1,"bins":[...]}` response frame.
pub fn write_bins_response(buf: &mut Vec<u8>, bins: &[BinId]) {
    write_bins_response_traced(buf, bins, None);
}

/// [`write_bins_response`] echoing the request's `trace` id.
pub fn write_bins_response_traced(buf: &mut Vec<u8>, bins: &[BinId], trace: Option<u64>) {
    buf.extend_from_slice(b"{\"v\":1,");
    push_trace(buf, trace);
    buf.extend_from_slice(b"\"bins\":[");
    for (i, bin) in bins.iter().enumerate() {
        if i > 0 {
            buf.push(b',');
        }
        push_i128(buf, bin.0 as i128);
    }
    buf.extend_from_slice(b"]}");
}

// `"trace":N,` directly after the version tag; nothing when untraced,
// so the untraced writers stay byte-for-byte what they always were.
fn push_trace(buf: &mut Vec<u8>, trace: Option<u64>) {
    if let Some(id) = trace {
        buf.extend_from_slice(b"\"trace\":");
        push_i128(buf, id as i128);
        buf.push(b',');
    }
}

// `"arrive":{"id":N,"size":{"num":n,"den":d},"time":{...}}` — the
// version-tag–less middle shared by single-event frames, batch
// elements, and journal/stream lines.
fn push_tagged_event(buf: &mut Vec<u8>, ev: &Event) {
    match ev {
        Event::Arrive { id, size, time } => {
            buf.extend_from_slice(b"\"arrive\":{\"id\":");
            push_i128(buf, id.0 as i128);
            buf.extend_from_slice(b",\"size\":");
            push_rational(buf, *size);
            buf.extend_from_slice(b",\"time\":");
            push_rational(buf, *time);
            buf.push(b'}');
        }
        Event::Depart { id, time } => {
            buf.extend_from_slice(b"\"depart\":{\"id\":");
            push_i128(buf, id.0 as i128);
            buf.extend_from_slice(b",\"time\":");
            push_rational(buf, *time);
            buf.push(b'}');
        }
    }
}

fn push_rational(buf: &mut Vec<u8>, r: Rational) {
    buf.extend_from_slice(b"{\"num\":");
    push_i128(buf, r.numer());
    buf.extend_from_slice(b",\"den\":");
    push_i128(buf, r.denom());
    buf.push(b'}');
}

fn push_i128(buf: &mut Vec<u8>, n: i128) {
    if n == 0 {
        buf.push(b'0');
        return;
    }
    let mut digits = [0u8; 40];
    let mut i = digits.len();
    let negative = n < 0;
    // Magnitude in unsigned space so `i128::MIN` doesn't overflow.
    let mut m = n.unsigned_abs();
    while m > 0 {
        i -= 1;
        digits[i] = b'0' + (m % 10) as u8;
        m /= 10;
    }
    if negative {
        buf.push(b'-');
    }
    buf.extend_from_slice(&digits[i..]);
}

/// Parses a canonical placement request (`Event` or `Batch`); `None`
/// means "not canonical hot-path bytes — use the generic parser".
pub fn parse_request(payload: &[u8]) -> Option<Request> {
    parse_request_traced(payload).map(|(request, _)| request)
}

/// [`parse_request`] also returning the frame's optional `trace` id.
pub fn parse_request_traced(payload: &[u8]) -> Option<(Request, Option<u64>)> {
    let mut c = Cursor::new(payload);
    c.lit(b"{\"v\":1,")?;
    let trace = parse_trace(&mut c)?;
    if c.starts_with(b"\"batch\":[") {
        c.lit(b"\"batch\":[")?;
        let mut events = Vec::new();
        if !c.eat(b']') {
            loop {
                c.lit(b"{")?;
                events.push(parse_tagged_event(&mut c)?);
                c.lit(b"}")?;
                if c.eat(b']') {
                    break;
                }
                c.lit(b",")?;
            }
        }
        c.lit(b"}")?;
        c.end()?;
        Some((Request::Batch(events), trace))
    } else {
        let ev = parse_tagged_event(&mut c)?;
        c.lit(b"}")?;
        c.end()?;
        Some((Request::Event(ev), trace))
    }
}

/// Parses a canonical placement response (`Bin` or `Bins`); `None`
/// means "fall back to the generic parser".
pub fn parse_response(payload: &[u8]) -> Option<Response> {
    parse_response_traced(payload).map(|(response, _)| response)
}

/// [`parse_response`] also returning the echoed `trace` id.
pub fn parse_response_traced(payload: &[u8]) -> Option<(Response, Option<u64>)> {
    let mut c = Cursor::new(payload);
    c.lit(b"{\"v\":1,")?;
    let trace = parse_trace(&mut c)?;
    c.lit(b"\"bin")?;
    if c.eat(b'\"') {
        c.lit(b":")?;
        let bin = BinId(c.int_u32()?);
        c.lit(b"}")?;
        c.end()?;
        Some((Response::Bin(bin), trace))
    } else {
        c.lit(b"s\":[")?;
        let mut bins = Vec::new();
        if !c.eat(b']') {
            loop {
                bins.push(BinId(c.int_u32()?));
                if c.eat(b']') {
                    break;
                }
                c.lit(b",")?;
            }
        }
        c.lit(b"}")?;
        c.end()?;
        Some((Response::Bins(bins), trace))
    }
}

// Canonical traced frames put `"trace":N,` right after `"v":1,`; any
// other placement is non-canonical and defers to the generic parser.
// Outer `None` = malformed trace prefix, inner `None` = untraced.
#[allow(clippy::option_option)]
fn parse_trace(c: &mut Cursor<'_>) -> Option<Option<u64>> {
    if !c.starts_with(b"\"trace\":") {
        return Some(None);
    }
    c.lit(b"\"trace\":")?;
    let id = c.int_u64()?;
    c.lit(b",")?;
    Some(Some(id))
}

fn parse_tagged_event(c: &mut Cursor<'_>) -> Option<Event> {
    if c.starts_with(b"\"arrive\"") {
        c.lit(b"\"arrive\":{\"id\":")?;
        let id = ItemId(c.int_u32()?);
        c.lit(b",\"size\":")?;
        let size = parse_rational(c)?;
        c.lit(b",\"time\":")?;
        let time = parse_rational(c)?;
        c.lit(b"}")?;
        Some(Event::Arrive { id, size, time })
    } else {
        c.lit(b"\"depart\":{\"id\":")?;
        let id = ItemId(c.int_u32()?);
        c.lit(b",\"time\":")?;
        let time = parse_rational(c)?;
        c.lit(b"}")?;
        Some(Event::Depart { id, time })
    }
}

fn parse_rational(c: &mut Cursor<'_>) -> Option<Rational> {
    c.lit(b"{\"num\":")?;
    let num = c.int_i128()?;
    c.lit(b",\"den\":")?;
    let den = c.int_i128()?;
    c.lit(b"}")?;
    // Non-positive denominators never appear in canonical output; the
    // generic path owns their (lenient) semantics.
    if den <= 0 {
        return None;
    }
    Some(Rational::new(num, den))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.rest().starts_with(s)
    }

    fn lit(&mut self, s: &[u8]) -> Option<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Some(())
        } else {
            None
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.rest().first() == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn end(&self) -> Option<()> {
        (self.pos == self.bytes.len()).then_some(())
    }

    // Canonical decimal: optional `-`, no leading zeros, no overflow.
    fn int_i128(&mut self) -> Option<i128> {
        let negative = self.eat(b'-');
        let digits = self.digits()?;
        let mut n: i128 = 0;
        for &d in digits {
            n = n.checked_mul(10)?.checked_add((d - b'0') as i128)?;
        }
        Some(if negative { n.checked_neg()? } else { n })
    }

    fn int_u32(&mut self) -> Option<u32> {
        let digits = self.digits()?;
        let mut n: u32 = 0;
        for &d in digits {
            n = n.checked_mul(10)?.checked_add((d - b'0') as u32)?;
        }
        Some(n)
    }

    fn int_u64(&mut self) -> Option<u64> {
        let digits = self.digits()?;
        let mut n: u64 = 0;
        for &d in digits {
            n = n.checked_mul(10)?.checked_add((d - b'0') as u64)?;
        }
        Some(n)
    }

    fn digits(&mut self) -> Option<&'a [u8]> {
        let rest = self.rest();
        let len = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if len == 0 || (len > 1 && rest[0] == b'0') {
            return None;
        }
        self.pos += len;
        Some(&rest[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;
    use serde::Serialize;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Arrive {
                id: ItemId(0),
                size: rat(1, 2),
                time: rat(0, 1),
            },
            Event::Arrive {
                id: ItemId(u32::MAX),
                size: rat(-7, 3),
                time: rat(1_000_003, 9973),
            },
            Event::Depart {
                id: ItemId(0),
                time: rat(5, 1),
            },
        ]
    }

    fn generic(req: &Request) -> String {
        serde_json::to_string(&req.to_value()).unwrap()
    }

    #[test]
    fn event_writer_matches_generic_encoder() {
        for ev in sample_events() {
            let mut fast = Vec::new();
            write_event_request(&mut fast, &ev);
            assert_eq!(
                String::from_utf8(fast).unwrap(),
                generic(&Request::Event(ev))
            );
        }
    }

    #[test]
    fn batch_writer_matches_generic_encoder() {
        for events in [vec![], sample_events()] {
            let mut fast = Vec::new();
            write_batch_request(&mut fast, &events);
            assert_eq!(
                String::from_utf8(fast).unwrap(),
                generic(&Request::Batch(events))
            );
        }
    }

    #[test]
    fn response_writers_match_generic_encoder() {
        let mut fast = Vec::new();
        write_bin_response(&mut fast, BinId(41));
        assert_eq!(
            String::from_utf8(fast).unwrap(),
            serde_json::to_string(&Response::Bin(BinId(41)).to_value()).unwrap()
        );
        for bins in [vec![], vec![BinId(0), BinId(7), BinId(u32::MAX)]] {
            let mut fast = Vec::new();
            write_bins_response(&mut fast, &bins);
            assert_eq!(
                String::from_utf8(fast).unwrap(),
                serde_json::to_string(&Response::Bins(bins).to_value()).unwrap()
            );
        }
    }

    #[test]
    fn fast_parsers_invert_fast_writers() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_batch_request(&mut buf, &events);
        assert_eq!(parse_request(&buf), Some(Request::Batch(events.clone())));
        for ev in events {
            buf.clear();
            write_event_request(&mut buf, &ev);
            assert_eq!(parse_request(&buf), Some(Request::Event(ev)));
        }
        buf.clear();
        write_bin_response(&mut buf, BinId(3));
        assert_eq!(parse_response(&buf), Some(Response::Bin(BinId(3))));
        let bins = vec![BinId(2), BinId(0)];
        buf.clear();
        write_bins_response(&mut buf, &bins);
        assert_eq!(parse_response(&buf), Some(Response::Bins(bins)));
    }

    #[test]
    fn non_canonical_bytes_defer_to_the_generic_parser() {
        for payload in [
            // Whitespace, reordered keys, leading zeros, cold frames,
            // unnormalized or non-positive denominators: all legal JSON
            // that the strict matcher refuses.
            r#"{"v":1, "finish":{}}"#,
            r#"{"v":1,"hello":{"tenant":"t","algo":"firstfit"}}"#,
            r#"{"v":1,"arrive":{"id":01,"size":{"num":1,"den":2},"time":{"num":0,"den":1}}}"#,
            r#"{"v":1,"arrive":{"size":{"num":1,"den":2},"id":1,"time":{"num":0,"den":1}}}"#,
            r#"{"v":1,"depart":{"id":1,"time":{"num":1,"den":0}}}"#,
            r#"{"v":1,"depart":{"id":1,"time":{"num":1,"den":-2}}}"#,
            r#"{"v":1,"bin":7} "#,
            r#"{"v":2,"bin":7}"#,
            "not json at all",
        ] {
            assert_eq!(parse_request(payload.as_bytes()), None, "{payload}");
            assert_eq!(parse_response(payload.as_bytes()), None, "{payload}");
        }
    }

    #[test]
    fn traced_writers_match_generic_encoder_and_invert() {
        let ev = sample_events().remove(1);
        let trace = Some(184_467_440_737_095u64);
        let mut buf = Vec::new();
        write_event_request_traced(&mut buf, &ev, trace);
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            serde_json::to_string(&Request::Event(ev).to_traced_value(trace)).unwrap()
        );
        assert_eq!(
            parse_request_traced(&buf),
            Some((Request::Event(ev), trace))
        );

        let events = sample_events();
        buf.clear();
        write_batch_request_traced(&mut buf, &events, Some(0));
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            serde_json::to_string(&Request::Batch(events.clone()).to_traced_value(Some(0)))
                .unwrap()
        );
        assert_eq!(
            parse_request_traced(&buf),
            Some((Request::Batch(events), Some(0)))
        );

        buf.clear();
        write_bin_response_traced(&mut buf, BinId(3), Some(7));
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            r#"{"v":1,"trace":7,"bin":3}"#
        );
        assert_eq!(
            parse_response_traced(&buf),
            Some((Response::Bin(BinId(3)), Some(7)))
        );

        let bins = vec![BinId(2), BinId(0)];
        buf.clear();
        write_bins_response_traced(&mut buf, &bins, Some(9));
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            serde_json::to_string(&Response::Bins(bins.clone()).to_traced_value(Some(9))).unwrap()
        );
        assert_eq!(
            parse_response_traced(&buf),
            Some((Response::Bins(bins), Some(9)))
        );
    }

    #[test]
    fn non_canonical_trace_placement_defers_to_the_generic_parser() {
        for payload in [
            // Trace after the tag, leading zeros, negative, stringy —
            // legal only for the generic parser (or not at all).
            r#"{"v":1,"bin":7,"trace":9}"#,
            r#"{"v":1,"trace":07,"bin":7}"#,
            r#"{"v":1,"trace":-1,"bin":7}"#,
            r#"{"v":1,"trace":"9","bin":7}"#,
        ] {
            assert_eq!(parse_request_traced(payload.as_bytes()), None, "{payload}");
            assert_eq!(parse_response_traced(payload.as_bytes()), None, "{payload}");
        }
    }

    #[test]
    fn extreme_integers_round_trip() {
        let ev = Event::Arrive {
            id: ItemId(u32::MAX),
            size: Rational::new(i128::MIN + 1, 1),
            time: rat(0, 1),
        };
        let mut buf = Vec::new();
        write_event_request(&mut buf, &ev);
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            generic(&Request::Event(ev))
        );
        assert_eq!(parse_request(&buf), Some(Request::Event(ev)));
    }
}
