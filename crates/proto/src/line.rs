//! Versioned JSONL lines: stream events and checkpoint envelopes.
//!
//! A line is one JSON object. Tagged lines carry `"v": 1` next to the
//! payload tag; untagged lines (the pre-versioning format) parse
//! identically. Blank lines and `#` comments are stream chrome, not
//! events.

use crate::{Event, SessionSnapshot, WIRE_VERSION};
use serde::{Deserialize, Serialize, Value};

/// Checks a parsed object's `"v"` entry (if any) and returns the
/// object with the version entry stripped. `Err` on a version this
/// reader does not speak.
pub(crate) fn strip_version(value: &Value) -> Result<Value, String> {
    let Some(entries) = value.as_object() else {
        return Err(format!("expected a JSON object, got {}", value.kind()));
    };
    let mut rest = Vec::with_capacity(entries.len());
    for (key, val) in entries {
        if key == "v" {
            match val.as_int() {
                Some(v) if v == WIRE_VERSION => {}
                Some(v) => {
                    return Err(format!(
                        "unsupported wire version {v} (speaks v{WIRE_VERSION})"
                    ))
                }
                None => return Err("wire version is not an integer".to_string()),
            }
        } else {
            rest.push((key.clone(), val.clone()));
        }
    }
    Ok(Value::Object(rest))
}

/// Wraps a payload `Value` in the versioned envelope: the `"v"` entry
/// first, then the payload's own entries.
pub(crate) fn tag_version(payload: Value) -> Value {
    let mut entries = vec![("v".to_string(), Value::Int(WIRE_VERSION))];
    if let Some(obj) = payload.as_object() {
        entries.extend(obj.iter().cloned());
    }
    Value::Object(entries)
}

/// Renders one stream event as a versioned JSONL line (no trailing
/// newline): `{"v":1,"arrive":{...}}` / `{"v":1,"depart":{...}}`.
///
/// Uses the [`crate::fast`] canonical writer (this sits on the journal
/// hot path); the bytes are identical to the generic encoder's.
pub fn event_to_line(event: &Event) -> String {
    let mut buf = Vec::with_capacity(96);
    crate::fast::write_event_request(&mut buf, event);
    String::from_utf8(buf).expect("canonical frames are ASCII")
}

/// Parses one JSONL line into a stream event.
///
/// Returns `None` for blank lines and `#` comments, `Some(Err)` for
/// malformed JSON, an unsupported `"v"`, or a payload that is not an
/// arrive/depart event. Both versioned and legacy untagged lines are
/// accepted.
pub fn parse_event_line(line: &str) -> Option<Result<Event, String>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return None;
    }
    let parsed = match serde_json::parse(trimmed) {
        Ok(v) => v,
        Err(e) => return Some(Err(e.to_string())),
    };
    let payload = match strip_version(&parsed) {
        Ok(p) => p,
        Err(e) => return Some(Err(e)),
    };
    Some(Event::from_value(&payload).map_err(|e| e.to_string()))
}

/// Renders a session checkpoint as a versioned JSON document:
/// `{"v":1,"checkpoint":{...}}`.
pub fn checkpoint_to_json(snapshot: &SessionSnapshot) -> String {
    let envelope = tag_version(Value::Object(vec![(
        "checkpoint".to_string(),
        snapshot.to_value(),
    )]));
    serde_json::to_string(&envelope).expect("checkpoints always serialize")
}

/// Parses a checkpoint document. Accepts the versioned
/// `{"v":1,"checkpoint":{...}}` envelope and, for checkpoints written
/// before versioning, a bare [`SessionSnapshot`] object.
pub fn checkpoint_from_json(text: &str) -> Result<SessionSnapshot, String> {
    let parsed = serde_json::parse(text).map_err(|e| e.to_string())?;
    let payload = strip_version(&parsed)?;
    if let Some(inner) = payload.get("checkpoint") {
        return SessionSnapshot::from_value(inner).map_err(|e| e.to_string());
    }
    SessionSnapshot::from_value(&payload).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::ItemId;
    use dbp_numeric::rat;

    fn arrive() -> Event {
        Event::Arrive {
            id: ItemId(7),
            size: rat(3, 8),
            time: rat(5, 2),
        }
    }

    #[test]
    fn event_lines_round_trip_versioned() {
        let line = event_to_line(&arrive());
        assert!(line.starts_with("{\"v\":1,"));
        let back = parse_event_line(&line).unwrap().unwrap();
        assert_eq!(back, arrive());
    }

    #[test]
    fn legacy_untagged_lines_still_parse() {
        let legacy = serde_json::to_string(&arrive()).unwrap();
        assert!(!legacy.contains("\"v\""));
        let back = parse_event_line(&legacy).unwrap().unwrap();
        assert_eq!(back, arrive());
    }

    #[test]
    fn blank_and_comment_lines_are_chrome() {
        assert!(parse_event_line("").is_none());
        assert!(parse_event_line("   ").is_none());
        assert!(parse_event_line("# header").is_none());
    }

    #[test]
    fn future_versions_are_typed_errors() {
        let line = "{\"v\":2,\"depart\":{\"id\":1,\"time\":{\"num\":1,\"den\":1}}}";
        let err = parse_event_line(line).unwrap().unwrap_err();
        assert!(err.contains("unsupported wire version 2"), "{err}");
    }

    #[test]
    fn checkpoints_round_trip_and_accept_legacy() {
        use dbp_core::session::Session;
        use dbp_core::FirstFit;
        let mut s = Session::builder(FirstFit::new()).build().unwrap();
        s.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
        let snapshot = s.snapshot().unwrap();

        let doc = checkpoint_to_json(&snapshot);
        assert!(doc.starts_with("{\"v\":1,\"checkpoint\":"));
        assert_eq!(checkpoint_from_json(&doc).unwrap(), snapshot);

        // Bare legacy document: a raw SessionSnapshot object.
        let legacy = serde_json::to_string(&snapshot).unwrap();
        assert_eq!(checkpoint_from_json(&legacy).unwrap(), snapshot);
    }
}
