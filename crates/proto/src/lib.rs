#![warn(missing_docs)]

//! One wire schema for every JSONL surface of the workspace.
//!
//! Before this crate, the `mindbp stream` CLI, session checkpoints,
//! and ad-hoc tooling each serialized events their own way. `dbp-proto`
//! is the single source of truth:
//!
//! * [`Event`] — the arrive/depart stream event (re-exported from
//!   `dbp_core::session`), rendered as one JSON object per line with a
//!   versioned `"v": 1` tag ([`event_to_line`] / [`parse_event_line`]).
//!   Untagged legacy lines parse too, so pre-versioning traces stay
//!   readable.
//! * [`Request`] / [`Response`] — the `dbp-server` wire frames
//!   (`hello`/`arrive`/`depart`/`batch`/`snapshot`/`metrics`/`finish`/
//!   `shutdown` and their answers). A single-event request frame *is*
//!   the stream-CLI line format, so a captured stream replays against
//!   a server verbatim.
//! * [`checkpoint_to_json`] / [`checkpoint_from_json`] — versioned
//!   envelopes around [`SessionSnapshot`] used by `--checkpoint` /
//!   `--resume` and by the server's journal recovery.
//! * [`write_frame`] / [`read_frame`] — the length-prefixed framing
//!   (`<byte-len>\n<json>\n`) spoken over the socket. The [`fast`]
//!   module adds byte-identical canonical writers and a strict parser
//!   for the placement hot path; non-canonical frames fall back to the
//!   generic codec, so the format is unchanged.
//!
//! Everything is plain serde over the workspace's exact data model:
//! `Rational` timestamps round-trip bit-for-bit, so outcomes computed
//! from wire traffic are bit-identical to in-process runs.

pub mod fast;
pub mod frame;
pub mod framing;
pub mod line;

pub use dbp_core::session::{Backend, Event, SessionMetrics, SessionSnapshot, TickGrid};
pub use dbp_core::{BinId, ItemId, PackingOutcome};

pub use frame::{ErrorKind, Hello, Request, Response, WireError};
pub use framing::{
    parse_frame_payload, read_frame, read_frame_into, read_frame_raw, write_frame,
    write_frame_bytes, FrameRead, RawFrame, MAX_FRAME_BYTES,
};
pub use line::{checkpoint_from_json, checkpoint_to_json, event_to_line, parse_event_line};

/// The wire schema version stamped into every tagged frame and line.
///
/// Readers accept exactly this version (plus untagged legacy payloads
/// from before versioning); anything newer is a typed error rather
/// than a silent misparse.
pub const WIRE_VERSION: i128 = 1;
