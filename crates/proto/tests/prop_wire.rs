//! Property-based round-trip tests of the wire schema.
//!
//! The contract: every frame and line serializes to JSON text and
//! parses back **bit-identically** — including `Rational` timestamps
//! with awkward numerators/denominators — because downstream
//! bit-identity guarantees (wire-driven outcomes == in-process runs)
//! rest on the wire never rounding anything.

use dbp_core::ItemId;
use dbp_numeric::rat;
use dbp_proto::{
    checkpoint_from_json, checkpoint_to_json, event_to_line, parse_event_line, Backend, Event,
    Hello, Request, Response, SessionSnapshot, TickGrid,
};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

// The vendored proptest stand-in has no `any`/string/option
// strategies; everything is built from ranges, `Just`, and maps.

fn bool_strategy() -> impl Strategy<Value = bool> {
    (0u8..=1).prop_map(|b| b == 1)
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..36, 1..12).prop_map(|digits| {
        digits
            .into_iter()
            .map(|d| {
                if d < 26 {
                    (b'a' + d) as char
                } else {
                    (b'0' + d - 26) as char
                }
            })
            .collect()
    })
}

fn token_strategy() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        name_strategy().prop_map(Some),
        // Tokens with characters that need JSON escaping.
        name_strategy().prop_map(|s| Some(format!("\"{s}\"\\\n\t"))),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    let rational = || (-1_000_000i128..=1_000_000, 1i128..=9973);
    let arrive = (0u32..=u32::MAX, rational(), rational()).prop_map(|(id, (sn, sd), (tn, td))| {
        Event::Arrive {
            id: ItemId(id),
            size: rat(sn.max(1), sd),
            time: rat(tn, td),
        }
    });
    let depart = (0u32..=u32::MAX, rational()).prop_map(|(id, (tn, td))| Event::Depart {
        id: ItemId(id),
        time: rat(tn, td),
    });
    prop_oneof![arrive, depart]
}

fn hello_strategy() -> impl Strategy<Value = Hello> {
    (
        (
            name_strategy(),
            token_strategy(),
            prop_oneof![
                Just("firstfit".to_string()),
                Just("bestfit".to_string()),
                Just("worstfit".to_string()),
            ],
            prop_oneof![
                Just(Backend::Auto),
                Just(Backend::Exact),
                Just(Backend::Tick)
            ],
        ),
        (
            prop_oneof![
                Just(None),
                (1u32..=64, 1u32..=1024).prop_map(|(t, s)| Some(TickGrid::new(t, s))),
            ],
            1u32..=8,
            bool_strategy(),
            bool_strategy(),
        ),
    )
        .prop_map(
            |((tenant, token, algo, backend), (grid, shards, telemetry, journal))| Hello {
                tenant,
                token,
                algo,
                backend,
                grid,
                shards,
                telemetry,
                journal,
            },
        )
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        hello_strategy().prop_map(Request::Hello),
        event_strategy().prop_map(Request::Event),
        prop::collection::vec(event_strategy(), 0..12).prop_map(Request::Batch),
        Just(Request::Snapshot),
        Just(Request::Metrics),
        Just(Request::Finish),
        token_strategy().prop_map(|token| Request::Shutdown { token }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stream lines round-trip bit-identically, versioned and legacy.
    #[test]
    fn event_lines_round_trip(ev in event_strategy()) {
        let line = event_to_line(&ev);
        prop_assert_eq!(parse_event_line(&line).unwrap().unwrap(), ev);

        // The same payload without the version tag (legacy traces).
        let legacy = serde_json::to_string(&ev.to_value()).unwrap();
        prop_assert_eq!(parse_event_line(&legacy).unwrap().unwrap(), ev);
    }

    /// Request frames survive serialize → text → parse unchanged.
    #[test]
    fn request_frames_round_trip(req in request_strategy()) {
        let text = serde_json::to_string(&req.to_value()).unwrap();
        let value = serde_json::parse(&text).unwrap();
        prop_assert_eq!(Request::from_value(&value).unwrap(), req);
    }

    /// The canonical fast codec is byte-identical to the generic
    /// encoder and parses its own output back exactly — so the hot
    /// path is an optimization, never a dialect.
    #[test]
    fn fast_codec_agrees_with_generic(
        ev in event_strategy(),
        batch in prop::collection::vec(event_strategy(), 0..12),
        bins in prop::collection::vec(0u32..=u32::MAX, 0..16),
    ) {
        use dbp_core::BinId;
        use dbp_proto::fast;

        let mut buf = Vec::new();
        fast::write_event_request(&mut buf, &ev);
        let generic = serde_json::to_string(&Request::Event(ev).to_value()).unwrap();
        prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), generic.as_str());
        prop_assert_eq!(fast::parse_request(&buf), Some(Request::Event(ev)));

        buf.clear();
        fast::write_batch_request(&mut buf, &batch);
        let generic =
            serde_json::to_string(&Request::Batch(batch.clone()).to_value()).unwrap();
        prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), generic.as_str());
        prop_assert_eq!(fast::parse_request(&buf), Some(Request::Batch(batch)));

        let bins: Vec<BinId> = bins.into_iter().map(BinId).collect();
        buf.clear();
        fast::write_bins_response(&mut buf, &bins);
        let generic =
            serde_json::to_string(&Response::Bins(bins.clone()).to_value()).unwrap();
        prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), generic.as_str());
        prop_assert_eq!(fast::parse_response(&buf), Some(Response::Bins(bins)));
    }

    /// The tracing contract, over the whole request space: an absent
    /// `trace` keeps the canonical encoding byte-identical to the
    /// untraced (pre-tracing) format, and a present id round-trips
    /// through both the generic and (for hot frames) fast codecs.
    #[test]
    fn untraced_frames_are_byte_identical_and_traced_ids_round_trip(
        req in request_strategy(),
        trace in prop_oneof![Just(None), (0u64..=u64::MAX).prop_map(Some)],
    ) {
        use dbp_proto::fast;

        // `trace: None` is not a different encoding — it IS the plain
        // canonical frame, byte for byte.
        let plain = serde_json::to_string(&req.to_value()).unwrap();
        let untraced = serde_json::to_string(&req.to_traced_value(None)).unwrap();
        prop_assert_eq!(untraced.as_str(), plain.as_str());

        // Whatever the id, the traced frame parses back to the same
        // request with the same id, and the untraced entry point
        // accepts it too (the never-break-old-clients rule).
        let text = serde_json::to_string(&req.to_traced_value(trace)).unwrap();
        let value = serde_json::parse(&text).unwrap();
        let (back, echoed) = Request::from_traced_value(&value).unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(echoed, trace);
        prop_assert_eq!(Request::from_value(&value).unwrap(), req.clone());

        // Hot frames: the traced fast writer stays byte-identical to
        // the generic encoder and the fast parser inverts it.
        let mut buf = Vec::new();
        match &req {
            Request::Event(ev) => {
                fast::write_event_request_traced(&mut buf, ev, trace);
                prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), text.as_str());
                prop_assert_eq!(fast::parse_request_traced(&buf), Some((req, trace)));
            }
            Request::Batch(events) => {
                fast::write_batch_request_traced(&mut buf, events, trace);
                prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), text.as_str());
                prop_assert_eq!(fast::parse_request_traced(&buf), Some((req, trace)));
            }
            _ => {}
        }
    }

    /// Traced responses echo ids through both codecs the same way.
    #[test]
    fn traced_responses_round_trip(
        bins in prop::collection::vec(0u32..=u32::MAX, 0..16),
        trace in prop_oneof![Just(None), (0u64..=u64::MAX).prop_map(Some)],
    ) {
        use dbp_core::BinId;
        use dbp_proto::fast;

        let bins: Vec<BinId> = bins.into_iter().map(BinId).collect();
        for resp in [
            Response::Bin(bins.first().copied().unwrap_or(BinId(0))),
            Response::Bins(bins),
        ] {
            let plain = serde_json::to_string(&resp.to_value()).unwrap();
            let untraced = serde_json::to_string(&resp.to_traced_value(None)).unwrap();
            prop_assert_eq!(untraced.as_str(), plain.as_str());

            let text = serde_json::to_string(&resp.to_traced_value(trace)).unwrap();
            let value = serde_json::parse(&text).unwrap();
            let (back, echoed) = Response::from_traced_value(&value).unwrap();
            prop_assert_eq!(&back, &resp);
            prop_assert_eq!(echoed, trace);

            let mut buf = Vec::new();
            match &resp {
                Response::Bin(bin) => fast::write_bin_response_traced(&mut buf, *bin, trace),
                Response::Bins(bins) => fast::write_bins_response_traced(&mut buf, bins, trace),
                _ => unreachable!(),
            }
            prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), text.as_str());
            prop_assert_eq!(fast::parse_response_traced(&buf), Some((resp, trace)));
        }
    }

    /// Checkpoint envelopes round-trip a session snapshot built from
    /// an arbitrary accepted event prefix, bit-identically.
    #[test]
    fn checkpoints_round_trip(hello in hello_strategy(), n in 0u32..30) {
        use dbp_core::session::Session;
        use dbp_core::FirstFit;

        let mut session = Session::builder(FirstFit::new()).build().unwrap();
        for i in 0..n {
            session
                .arrive(ItemId(i), rat(1 + (i as i128 % 7), 8), rat(i as i128, 4))
                .unwrap();
        }
        let snapshot = session.snapshot().unwrap();
        let doc = checkpoint_to_json(&snapshot);
        prop_assert_eq!(checkpoint_from_json(&doc).unwrap(), snapshot);

        // Hello frames are independent of the checkpoint but share the
        // strategy run: exercise their round trip too.
        let text = serde_json::to_string(&hello.to_value()).unwrap();
        let value = serde_json::parse(&text).unwrap();
        prop_assert_eq!(Hello::from_value(&value).unwrap(), hello);
    }

    /// Response frames carrying snapshots and outcomes round-trip.
    #[test]
    fn response_frames_round_trip(n in 0u32..20, bins in prop::collection::vec(0u32..=u32::MAX, 0..16)) {
        use dbp_core::session::Session;
        use dbp_core::{BinId, FirstFit};

        let mut session = Session::builder(FirstFit::new()).build().unwrap();
        for i in 0..n {
            session
                .arrive(ItemId(i), rat(1 + (i as i128 % 5), 8), rat(i as i128, 2))
                .unwrap();
        }
        let snapshot = session.snapshot().unwrap();
        let metrics = session.metrics();
        let outcome = {
            let mut s = Session::resume(&snapshot).unwrap();
            for i in 0..n {
                s.depart(ItemId(i), rat(100 + i as i128, 1)).unwrap();
            }
            s.finish().unwrap()
        };

        for resp in [
            Response::Snapshot(snapshot),
            Response::Metrics(Box::new(metrics)),
            Response::Outcomes(vec![outcome]),
            Response::Bins(bins.into_iter().map(BinId).collect()),
        ] {
            let text = serde_json::to_string(&resp.to_value()).unwrap();
            let value = serde_json::parse(&text).unwrap();
            prop_assert_eq!(Response::from_value(&value).unwrap(), resp);
        }
    }
}

/// A resumed session from a wire-round-tripped checkpoint finishes
/// bit-identically to the original — the end-to-end guarantee the
/// journal recovery path depends on.
#[test]
fn wire_checkpoint_resume_is_bit_identical() {
    use dbp_core::session::Session;
    use dbp_core::FirstFit;

    let build = || Session::builder(FirstFit::new()).build().unwrap();
    let feed = |s: &mut Session<'static>| {
        s.arrive(ItemId(0), rat(1, 3), rat(0, 1)).unwrap();
        s.arrive(ItemId(1), rat(2, 3), rat(1, 2)).unwrap();
        s.depart(ItemId(0), rat(5, 4)).unwrap();
    };
    let tail = |s: &mut Session<'static>| {
        s.arrive(ItemId(2), rat(1, 2), rat(2, 1)).unwrap();
        s.depart(ItemId(1), rat(3, 1)).unwrap();
        s.depart(ItemId(2), rat(7, 2)).unwrap();
    };

    let mut uninterrupted = build();
    feed(&mut uninterrupted);
    tail(&mut uninterrupted);
    let expected = uninterrupted.finish().unwrap();

    let mut first = build();
    feed(&mut first);
    let doc = checkpoint_to_json(&first.snapshot().unwrap());
    drop(first); // "crash"

    let snapshot: SessionSnapshot = checkpoint_from_json(&doc).unwrap();
    let mut resumed = Session::resume(&snapshot).unwrap();
    tail(&mut resumed);
    assert_eq!(resumed.finish().unwrap(), expected);
}
