//! Quick wire-codec microbenchmark: encode/decode cost per event for
//! the batch request and bins response frames. Run with
//! `cargo run --release -p dbp-proto --example wirebench`.

use dbp_numeric::rat;
use dbp_proto::{BinId, Event, ItemId, Request, Response};
use serde::{Deserialize, Serialize};
use std::time::Instant;

fn main() {
    let events: Vec<Event> = (0..1024u32)
        .map(|k| {
            if k % 2 == 0 {
                Event::Arrive {
                    id: ItemId(k),
                    size: rat(1 + (k as i128 % 64), 128),
                    time: rat(k as i128 / 8, 1),
                }
            } else {
                Event::Depart {
                    id: ItemId(k / 2),
                    time: rat(k as i128 / 8, 1),
                }
            }
        })
        .collect();
    let request = Request::Batch(events.clone());
    let iters = 200;

    let t0 = Instant::now();
    let mut json = String::new();
    for _ in 0..iters {
        json = serde_json::to_string(&request.to_value()).unwrap();
    }
    let enc = t0.elapsed().as_secs_f64();
    println!(
        "encode batch: {:.2}us/event ({} bytes/frame)",
        enc / iters as f64 / 1024.0 * 1e6,
        json.len()
    );

    let t0 = Instant::now();
    let mut parsed = None;
    for _ in 0..iters {
        let value = serde_json::from_str(&json).unwrap();
        parsed = Some(Request::from_value(&value).unwrap());
    }
    let dec = t0.elapsed().as_secs_f64();
    println!(
        "decode batch: {:.2}us/event (roundtrip ok: {})",
        dec / iters as f64 / 1024.0 * 1e6,
        matches!(parsed, Some(Request::Batch(ref b)) if *b == events),
    );

    let bins = Response::Bins((0..1024).map(|k| BinId(k % 37)).collect());
    let t0 = Instant::now();
    let mut json = String::new();
    for _ in 0..iters {
        json = serde_json::to_string(&bins.to_value()).unwrap();
    }
    let enc = t0.elapsed().as_secs_f64();
    println!(
        "encode bins: {:.2}us/event ({} bytes/frame)",
        enc / iters as f64 / 1024.0 * 1e6,
        json.len()
    );

    let t0 = Instant::now();
    for _ in 0..iters {
        let value = serde_json::from_str(&json).unwrap();
        let _ = Response::from_value(&value).unwrap();
    }
    let dec = t0.elapsed().as_secs_f64();
    println!(
        "decode bins: {:.2}us/event",
        dec / iters as f64 / 1024.0 * 1e6
    );
}
