//! Property-based certification of the paper's analysis.
//!
//! This is the heart of the reproduction: over randomized instances,
//! every proposition and lemma of §IV–§VII and the Theorem 1
//! inequality chain must hold in exact arithmetic. A single failure
//! here would falsify the reconstruction documented in DESIGN.md §3.

use dbp_analysis::{certify_first_fit, certify_packing, measure_ratio};
use dbp_core::prelude::*;
use dbp_core::PackingAlgorithm;
use dbp_numeric::rat;
use proptest::prelude::*;

/// Random instances with controlled duration spread (µ ≤ 16),
/// non-trivial small/large mix and lots of equal-time ties.
fn instance_strategy(max_items: usize) -> impl Strategy<Value = Instance> {
    let item =
        (1i128..=10, 1i128..=10, 0i128..=60, 1i128..=16).prop_map(|(num, den, arr4, dur4)| {
            let size = rat(num.min(den), den);
            let arrival = rat(arr4, 4);
            let duration = rat(dur4, 4);
            (size, arrival, arrival + duration)
        });
    prop::collection::vec(item, 1..max_items)
        .prop_map(|specs| Instance::new(specs).expect("valid specs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Propositions 3–7, Lemmas 1–2, amortized level, Theorem 1 — on
    /// First Fit packings of arbitrary instances.
    #[test]
    fn first_fit_certifies_fully(inst in instance_strategy(28)) {
        let report = certify_first_fit(&inst);
        prop_assert!(report.all_passed(), "{report}");
    }

    /// The structural (algorithm-independent) half of the machinery
    /// on the rest of the algorithm zoo.
    #[test]
    fn structure_holds_for_all_algorithms(inst in instance_strategy(20)) {
        for mut algo in [
            Box::new(BestFit::new()) as Box<dyn PackingAlgorithm>,
            Box::new(WorstFit::new()),
            Box::new(LastFit::new()),
            Box::new(NextFit::new()),
            Box::new(RandomFit::seeded(11)),
            Box::new(HybridFirstFit::classic()),
        ] {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            let report = certify_packing(&inst, &out, false);
            prop_assert!(report.all_passed(), "{report}");
        }
    }

    /// Every step of the Theorem 1 inequality chain holds, with the
    /// intermediate quantities numerically instantiated.
    #[test]
    fn theorem_chain_holds(inst in instance_strategy(24)) {
        let chain = dbp_analysis::TheoremChain::compute(&inst);
        prop_assert!(chain.holds(), "{chain}");
    }

    /// The certification machinery is scale-invariant: rescaling all
    /// times (changing d_min/d_max but not µ) must not disturb any
    /// certificate — this pins down the unit handling documented in
    /// DESIGN.md §3 ("1" ↦ d_min, "µ" ↦ d_max).
    #[test]
    fn certificates_are_scale_invariant(
        inst in instance_strategy(20),
        c_num in 1i128..=4,
        c_den in 1i128..=4,
    ) {
        let scaled = inst.scaled_time(rat(c_num, c_den));
        let report = certify_first_fit(&scaled);
        prop_assert!(report.all_passed(), "{report}");
    }

    /// The measured FF ratio never exceeds µ + 4 against the exact
    /// adversary (Theorem 1, measured end-to-end through the public
    /// ratio API rather than the certificate).
    #[test]
    fn measured_ratio_respects_theorem1(inst in instance_strategy(16)) {
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        if let (Some(ratio), Some(bound)) = (rep.exact_ratio(), rep.theorem1_bound()) {
            prop_assert!(
                ratio <= bound,
                "ratio {} > µ+4 = {} on {:?}", ratio, bound, inst
            );
        }
        prop_assert!(rep.within_theorem1());
    }
}

mod solver_props {
    use super::*;
    use dbp_analysis::solver::{
        first_fit_decreasing, lower_bound_l1, lower_bound_l2, ExactBinPacking,
    };
    use dbp_numeric::Rational;

    /// Brute-force minimum bins by exhaustive assignment (n ≤ 9).
    fn brute_force(sizes: &[Rational]) -> usize {
        fn rec(sizes: &[Rational], idx: usize, bins: &mut Vec<Rational>, best: &mut usize) {
            if bins.len() >= *best {
                return;
            }
            if idx == sizes.len() {
                *best = bins.len();
                return;
            }
            let s = sizes[idx];
            for b in 0..bins.len() {
                if bins[b] + s <= Rational::ONE {
                    bins[b] += s;
                    rec(sizes, idx + 1, bins, best);
                    bins[b] -= s;
                }
            }
            bins.push(s);
            rec(sizes, idx + 1, bins, best);
            bins.pop();
        }
        let mut best = sizes.len().max(1);
        if sizes.is_empty() {
            return 0;
        }
        let mut bins = Vec::new();
        rec(sizes, 0, &mut bins, &mut best);
        best
    }

    fn sizes_strategy() -> impl Strategy<Value = Vec<Rational>> {
        prop::collection::vec(
            (1i128..=12, 1i128..=12).prop_map(|(n, d)| rat(n.min(d), d)),
            0..9,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn exact_solver_matches_brute_force(sizes in sizes_strategy()) {
            let solver = ExactBinPacking::new();
            prop_assert_eq!(solver.min_bins(&sizes), brute_force(&sizes));
        }

        #[test]
        fn bounds_sandwich_opt(sizes in sizes_strategy()) {
            let solver = ExactBinPacking::new();
            let opt = solver.min_bins(&sizes);
            let mut sorted = sizes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let l1 = lower_bound_l1(&sizes);
            let l2 = lower_bound_l2(&sorted);
            let ffd = first_fit_decreasing(&sorted);
            prop_assert!(l1 <= l2, "L1 {} > L2 {}", l1, l2);
            prop_assert!(l2 <= opt, "L2 {} > OPT {}", l2, opt);
            prop_assert!(opt <= ffd, "OPT {} > FFD {}", opt, ffd);
            // FFD's classical guarantee (generous form).
            prop_assert!(ffd <= opt * 2 + 1);
        }
    }
}

mod adversary_props {
    use super::*;
    use dbp_analysis::optimal::{opt_total, OptConfig};
    use dbp_analysis::{opt_lower_bound, profile_lower_bound, ExactBinPacking};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The certified bound ladder:
        /// max(vol, span) ≤ profile bound ≤ OPT_total ≤ any packing.
        #[test]
        fn lower_bound_ladder(inst in instance_strategy(14)) {
            let solver = ExactBinPacking::new();
            let opt = opt_total(&inst, &solver, OptConfig::default());
            let lb1 = opt_lower_bound(&inst);
            let lb2 = profile_lower_bound(&inst);
            prop_assert!(lb1 <= lb2, "max(vol,span) {} > profile {}", lb1, lb2);
            prop_assert!(lb2 <= opt.lower, "profile {} > OPT lower {}", lb2, opt.lower);
            prop_assert!(opt.lower <= opt.upper);
            // Every online packing is an offline-feasible solution.
            for mut algo in [
                Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
                Box::new(BestFit::new()),
                Box::new(NextFit::new()),
            ] {
                let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
                prop_assert!(
                    out.total_usage() >= opt.upper.min(opt.lower),
                    "{} beat the adversary", out.algorithm()
                );
            }
        }

        /// Capping exact solving yields a bracket containing the
        /// uncapped (exact) value.
        #[test]
        fn brackets_contain_exact(inst in instance_strategy(12)) {
            let solver = ExactBinPacking::new();
            let exact = opt_total(&inst, &solver, OptConfig::default());
            prop_assume!(exact.is_exact());
            let capped = opt_total(&inst, &solver, OptConfig::with_max_exact(3));
            prop_assert!(capped.lower <= exact.lower);
            prop_assert!(capped.upper >= exact.upper);
        }
    }
}
