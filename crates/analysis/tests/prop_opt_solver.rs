//! Property-based validation of the incremental branch-and-bound
//! adversary against the seed `Rational` reference pipeline.
//!
//! Three contracts:
//!
//! * **bit equality** — on every multiset the seed solver could
//!   handle, the integer kernel returns the *same number* (both are
//!   exact solvers, so equality is the whole correctness story);
//! * **the sandwich** — on larger multisets, the kernel's answer
//!   stays inside `⌈L2⌉ ≤ OPT ≤ FFD`, the certified bracket the
//!   bounds machinery promises;
//! * **warm = cold** — along full event profiles, the warm-started
//!   incremental sweep reports exactly what independent from-scratch
//!   solves of each interval report: temporal coherence is an
//!   optimization, never an answer change.

use dbp_analysis::bb;
use dbp_analysis::solver::{first_fit_decreasing, lower_bound_l2};
use dbp_analysis::units::compile_sizes;
use dbp_analysis::{opt_profile, reference_min_bins, ExactBinPacking, OptConfig};
use dbp_core::Instance;
use dbp_numeric::{rat, Rational};
use proptest::prelude::*;

/// Random size multisets on mixed small-denominator grids — the
/// inputs both solvers accept, with plenty of duplicate sizes.
fn sizes_strategy(max_items: usize) -> impl Strategy<Value = Vec<Rational>> {
    let size = (1i128..=12, 1i128..=12).prop_map(|(num, den)| rat(num.min(den), den));
    prop::collection::vec(size, 1..max_items)
}

/// Random instances shaped like the E1 workloads: grid sizes,
/// quarter-tick arrivals, durations spanning µ ≤ 8.
fn instance_strategy(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=40, 1i128..=32).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den);
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 1..max_items)
        .prop_map(|specs| Instance::new(specs).expect("valid specs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The integer kernel and the seed `Rational` search are both
    /// exact, so they must agree bit for bit wherever the seed runs.
    #[test]
    fn kernel_matches_reference_bit_for_bit(sizes in sizes_strategy(20)) {
        let solver = ExactBinPacking::new();
        let new = solver.min_bins(&sizes);
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let reference = reference_min_bins(&sorted);
        prop_assert_eq!(new, reference);
    }

    /// On multisets past the seed solver's comfort zone, the kernel's
    /// answer must sit inside the certified `⌈L2⌉ ≤ OPT ≤ FFD`
    /// sandwich — and its own reported bracket must contain it.
    #[test]
    fn kernel_respects_the_l2_ffd_sandwich(sizes in sizes_strategy(60)) {
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let l2 = lower_bound_l2(&sorted);
        let ffd = first_fit_decreasing(&sorted);
        let solver = ExactBinPacking::new();
        let opt = solver.min_bins(&sizes);
        prop_assert!(l2 <= opt, "L2 = {} exceeds OPT = {}", l2, opt);
        prop_assert!(opt <= ffd, "OPT = {} exceeds FFD = {}", opt, ffd);
        // The unit kernel's own lower bounds are also valid: L3 ≥ L2
        // by construction and never above OPT.
        if let Some(units) = compile_sizes(&sizes) {
            let l3 = bb::lower_bound_l3_units(&units.units, units.capacity);
            prop_assert!(l3 >= l2);
            prop_assert!(l3 <= opt);
        }
    }

    /// Temporal coherence changes nothing: the warm-started chunked
    /// sweep equals independent cold solves on every interval of a
    /// random event profile.
    #[test]
    fn warm_profile_equals_cold_interval_solves(inst in instance_strategy(24)) {
        let profile = opt_profile(&inst, &ExactBinPacking::new(), OptConfig::default());
        let cold = ExactBinPacking::new();
        let times = inst.event_times();
        let mut k = 0usize;
        for w in times.windows(2) {
            let active: Vec<Rational> = inst
                .items()
                .iter()
                .filter(|r| r.active_at(w[0]))
                .map(|r| r.size)
                .collect();
            if active.is_empty() {
                continue;
            }
            let opt = cold.min_bins(&active);
            prop_assert!(k < profile.segments.len(), "profile too short");
            prop_assert_eq!(profile.segments[k].lower, opt, "window {}", k);
            prop_assert_eq!(profile.segments[k].upper, opt, "window {}", k);
            k += 1;
        }
        prop_assert_eq!(k, profile.segments.len(), "profile too long");
    }

    /// The kernel's packing is a *witness*: bins respect capacity and
    /// the multiset packed is exactly the multiset asked about.
    #[test]
    fn packing_is_a_valid_witness(sizes in sizes_strategy(24)) {
        let Some(units) = compile_sizes(&sizes) else {
            return Ok(());
        };
        let out = bb::pack(&units.units, units.capacity, None, 0, u64::MAX);
        prop_assert!(out.is_exact());
        prop_assert_eq!(out.packing.len(), out.upper);
        let mut packed: Vec<u32> = out.packing.iter().flatten().copied().collect();
        packed.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(packed, units.units.clone());
        for bin in &out.packing {
            let level: u64 = bin.iter().map(|&u| u as u64).sum();
            prop_assert!(level <= units.capacity as u64);
        }
    }
}
