//! The offline adversary: `OPT_total(R) = ∫ OPT(R, t) dt`.
//!
//! The paper's adversary may *repack everything at any time*
//! (§III.C), so its cost is the integral of the instantaneous optimal
//! bin count. Between two consecutive event times the active set —
//! and hence `OPT(R, t)` — is constant, so the integral is a finite
//! sum over the event-interval profile.
//!
//! The profile is computed **incrementally**: adjacent intervals
//! differ by the handful of arrivals/departures at their shared
//! boundary, so instead of re-filtering and re-solving each interval
//! from scratch the sweep
//!
//! 1. tick-compiles every size to `u32` units once
//!    ([`crate::units`]), and maintains the active multiset by
//!    sorted-insert/remove per event;
//! 2. carries the previous interval's optimal **packing** across the
//!    boundary (departures delete an occurrence from its bin,
//!    arrivals first-fit in) as the warm-start incumbent, and its
//!    lower bound minus the departure count as a floor — removing an
//!    item lowers `OPT` by at most one, adding never lowers it — so
//!    most intervals certify without expanding a single search node;
//! 3. shards the interval list into fixed-size chunks solved in
//!    parallel on [`dbp_par::par_map`], all feeding the solver's
//!    lock-sharded memo (chunking is by a fixed constant, so the
//!    segmentation — and with it every exact value — is independent
//!    of the worker count).
//!
//! Each interval's `OPT(R, t)` is solved exactly up to
//! [`OptConfig::max_exact_items`] active items within
//! [`OptConfig::node_budget`] search nodes; beyond either limit the
//! segment degrades to the certified sandwich
//! `max(floor, L3) ≤ OPT ≤ best packing found`, and the total becomes
//! a bracket instead of an exact value. (Under budget truncation
//! only, concurrent chunks may upgrade a bracket to an exact value
//! through the shared memo depending on timing; exact values
//! themselves are unique, so exactly-solved profiles are always
//! bit-reproducible.)

use crate::bb::{ffd_pack, improve_pack, lower_bound_l3_units};
use crate::solver::{first_fit_decreasing, lower_bound_l2, ExactBinPacking};
use crate::units::common_scale;
use dbp_core::Instance;
use dbp_numeric::{Interval, Rational};
use dbp_par::par_map;

/// Intervals per parallel work item. A fixed constant (not a
/// thread-count function) so profiles are machine-independent; 32
/// amortizes the cold solve at each chunk head over a long
/// warm-started run while still feeding every worker on mid-size
/// profiles.
const CHUNK_INTERVALS: usize = 32;

/// Tuning knobs for the adversary computation.
#[derive(Debug, Clone, Copy)]
pub struct OptConfig {
    /// Maximum active-set size for which an exact solve is attempted;
    /// larger sets use the `L3`/FFD sandwich. The default (200) is
    /// backed by the warm-started incremental kernel — the seed
    /// solver's default was 28.
    pub max_exact_items: usize,
    /// Branch-and-bound node budget per interval; on exhaustion the
    /// segment degrades to a certified bracket. Warm-started interval
    /// solves almost never expand nodes at all, so the default
    /// (200 000) is rarely touched outside adversarial multisets.
    pub node_budget: u64,
}

impl OptConfig {
    /// The config with everything default except the exact-solve
    /// item cap — the common adjustment (struct-literal updates of
    /// single fields don't survive config growth).
    pub fn with_max_exact(max_exact_items: usize) -> OptConfig {
        OptConfig {
            max_exact_items,
            ..OptConfig::default()
        }
    }
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig {
            max_exact_items: 200,
            node_budget: 200_000,
        }
    }
}

/// One segment of the `OPT(R, t)` profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptSegment {
    /// The event interval (active set constant here).
    pub window: Interval,
    /// Lower bound on `OPT(R, t)` in this window.
    pub lower: usize,
    /// Upper bound on `OPT(R, t)` in this window.
    pub upper: usize,
}

impl OptSegment {
    /// `true` iff the bin count is known exactly.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// The piecewise-constant profile of `OPT(R, t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptProfile {
    /// Segments in time order (only windows with active items).
    pub segments: Vec<OptSegment>,
}

impl OptProfile {
    /// Peak of the lower-bound profile — a lower bound on the
    /// *standard* DBP objective (max concurrent bins).
    pub fn peak_lower(&self) -> usize {
        self.segments.iter().map(|s| s.lower).max().unwrap_or(0)
    }

    /// Peak of the upper-bound profile.
    pub fn peak_upper(&self) -> usize {
        self.segments.iter().map(|s| s.upper).max().unwrap_or(0)
    }

    /// Segments solved exactly, as a fraction of all segments
    /// (1.0 for an empty profile).
    pub fn exact_fraction(&self) -> f64 {
        if self.segments.is_empty() {
            return 1.0;
        }
        let exact = self.segments.iter().filter(|s| s.is_exact()).count();
        exact as f64 / self.segments.len() as f64
    }
}

/// `OPT_total(R)` as an exact value or a certified bracket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptTotal {
    /// Certified lower bound on `∫ OPT(R, t) dt`.
    pub lower: Rational,
    /// Certified upper bound on `∫ OPT(R, t) dt`.
    pub upper: Rational,
}

impl OptTotal {
    /// `true` iff lower == upper (every segment solved exactly).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// The exact value, if known.
    pub fn exact(&self) -> Option<Rational> {
        self.is_exact().then_some(self.lower)
    }
}

/// One event interval of a chunk: its window plus the boundary delta
/// (in units) transforming the previous interval's active multiset
/// into this one's. Chunk-head intervals carry the delta already
/// folded into the head snapshot.
struct IntervalDelta {
    window: Interval,
    add: Vec<u32>,
    remove: Vec<u32>,
}

/// A contiguous run of intervals solved sequentially by one worker:
/// the active multiset at its first interval plus per-interval
/// deltas.
struct Chunk {
    head: Vec<u32>,
    intervals: Vec<IntervalDelta>,
}

/// Computes the `OPT(R, t)` profile over the packing period.
pub fn opt_profile(instance: &Instance, solver: &ExactBinPacking, config: OptConfig) -> OptProfile {
    let times = instance.event_times();
    if times.len() < 2 {
        return OptProfile {
            segments: Vec::new(),
        };
    }
    let sizes: Vec<Rational> = instance.items().iter().map(|r| r.size).collect();
    let Some(scale) = common_scale(&sizes) else {
        return opt_profile_rational(instance, solver, config);
    };
    let capacity = scale as u32;

    // One event sweep builds every chunk: items enter at their
    // arrival boundary and leave at their departure boundary, so the
    // active multiset is maintained incrementally instead of
    // re-filtered per interval (the seed pipeline's O(n²) term).
    let mut by_arrival: Vec<(Rational, u32)> = instance
        .items()
        .iter()
        .map(|r| {
            (
                r.arrival(),
                r.size.scaled_to(scale).expect("scale is the LCM") as u32,
            )
        })
        .collect();
    by_arrival.sort_unstable_by_key(|a| a.0);
    let mut by_departure: Vec<(Rational, u32)> = instance
        .items()
        .iter()
        .map(|r| {
            (
                r.departure(),
                r.size.scaled_to(scale).expect("scale is the LCM") as u32,
            )
        })
        .collect();
    by_departure.sort_unstable_by_key(|a| a.0);

    let mut chunks: Vec<Chunk> = Vec::new();
    let mut cur: Vec<u32> = Vec::new();
    let (mut ai, mut di) = (0usize, 0usize);
    for (j, w) in times.windows(2).enumerate() {
        let t = w[0];
        let mut remove = Vec::new();
        let mut add = Vec::new();
        while di < by_departure.len() && by_departure[di].0 == t {
            remove.push(by_departure[di].1);
            di += 1;
        }
        while ai < by_arrival.len() && by_arrival[ai].0 == t {
            add.push(by_arrival[ai].1);
            ai += 1;
        }
        for &u in &remove {
            remove_unit(&mut cur, u);
        }
        for &u in &add {
            insert_unit(&mut cur, u);
        }
        let window = Interval::new(w[0], w[1]);
        if j % CHUNK_INTERVALS == 0 {
            chunks.push(Chunk {
                head: cur.clone(),
                intervals: vec![IntervalDelta {
                    window,
                    add: Vec::new(),
                    remove: Vec::new(),
                }],
            });
        } else {
            chunks
                .last_mut()
                .expect("j=0 opened a chunk")
                .intervals
                .push(IntervalDelta {
                    window,
                    add,
                    remove,
                });
        }
    }

    let segments: Vec<Vec<OptSegment>> = if chunks.len() == 1 {
        vec![solve_chunk(&chunks[0], capacity, solver, config)]
    } else {
        par_map(&chunks, |chunk| {
            solve_chunk(chunk, capacity, solver, config)
        })
    };
    OptProfile {
        segments: segments.into_iter().flatten().collect(),
    }
}

/// Inserts one occurrence into a sorted-decreasing multiset.
fn insert_unit(cur: &mut Vec<u32>, u: u32) {
    let pos = cur.partition_point(|&x| x > u);
    cur.insert(pos, u);
}

/// Removes one occurrence from a sorted-decreasing multiset.
fn remove_unit(cur: &mut Vec<u32>, u: u32) {
    let pos = cur.partition_point(|&x| x > u);
    debug_assert!(cur.get(pos) == Some(&u), "departing item must be active");
    cur.remove(pos);
}

/// Solves one chunk sequentially, threading the warm-start packing
/// and lower-bound floor across its intervals.
fn solve_chunk(
    chunk: &Chunk,
    capacity: u32,
    solver: &ExactBinPacking,
    config: OptConfig,
) -> Vec<OptSegment> {
    let mut segments = Vec::with_capacity(chunk.intervals.len());
    let mut cur = chunk.head.clone();
    // The warm packing is maintained as a *valid* packing of `cur`
    // at all times: departures delete an occurrence from its bin,
    // arrivals first-fit into spare capacity or open a bin. Its bin
    // count is an upper bound; `prev_lower − departures` is a floor.
    let mut warm: Vec<Vec<u32>> = Vec::new();
    let mut prev_lower: Option<usize> = None;
    for (j, iv) in chunk.intervals.iter().enumerate() {
        if j > 0 {
            for &u in &iv.remove {
                remove_unit(&mut cur, u);
                warm_remove(&mut warm, u);
            }
            for &u in &iv.add {
                insert_unit(&mut cur, u);
                warm_insert(&mut warm, u, capacity);
            }
        } else {
            // Chunk head: deltas are folded into the snapshot; the
            // warm packing starts as plain FFD of it.
            warm = ffd_pack(&cur, capacity);
            improve_pack(&mut warm, capacity);
        }
        if cur.is_empty() {
            // The adversary closes everything during gaps.
            warm.clear();
            prev_lower = Some(0);
            continue;
        }
        let floor = prev_lower
            .map(|p| p.saturating_sub(iv.remove.len()))
            .unwrap_or(0);
        // Temporal-coherence fast path: the carried floor already
        // meets the patched packing, so the interval is certified
        // exact without touching the solver or the memo. (Arrivals
        // keep the floor; when First Fit absorbs them into spare
        // capacity, the sandwich closes by itself.)
        if !warm.is_empty() && floor >= warm.len() {
            debug_assert!(
                floor == warm.len(),
                "floor can never exceed a valid packing"
            );
            prev_lower = Some(warm.len());
            segments.push(OptSegment {
                window: iv.window,
                lower: warm.len(),
                upper: warm.len(),
            });
            continue;
        }
        let (lower, upper) = if cur.len() > config.max_exact_items {
            // Sandwich mode: certified bounds, no search.
            let lower = floor.max(lower_bound_l3_units(&cur, capacity));
            let mut pk = ffd_pack(&cur, capacity);
            improve_pack(&mut pk, capacity);
            if pk.len() < warm.len() || warm.is_empty() {
                warm = pk;
            }
            (lower, warm.len())
        } else {
            let warm_hint = (!warm.is_empty()).then_some(warm.as_slice());
            let out = solver.solve_units(&cur, capacity, warm_hint, floor, config.node_budget);
            if !out.packing.is_empty() {
                warm = out.packing;
            }
            (out.lower, out.upper)
        };
        prev_lower = Some(lower);
        segments.push(OptSegment {
            window: iv.window,
            lower,
            upper,
        });
    }
    segments
}

/// Deletes one occurrence of `u` from the packing.
fn warm_remove(warm: &mut Vec<Vec<u32>>, u: u32) {
    for b in 0..warm.len() {
        if let Some(i) = warm[b].iter().position(|&x| x == u) {
            warm[b].swap_remove(i);
            if warm[b].is_empty() {
                warm.swap_remove(b);
            }
            return;
        }
    }
    debug_assert!(false, "departing item must be in the warm packing");
}

/// First Fit for `u` into the packing.
fn warm_insert(warm: &mut Vec<Vec<u32>>, u: u32, capacity: u32) {
    for bin in warm.iter_mut() {
        let level: u64 = bin.iter().map(|&x| x as u64).sum();
        if level + u as u64 <= capacity as u64 {
            bin.push(u);
            return;
        }
    }
    warm.push(vec![u]);
}

/// The seed per-interval pipeline, kept for size multisets too fine
/// for any `u32` grid: re-filter the active set per interval and
/// solve through [`ExactBinPacking::min_bins`] (which itself falls
/// back to `Rational` search for such sets).
fn opt_profile_rational(
    instance: &Instance,
    solver: &ExactBinPacking,
    config: OptConfig,
) -> OptProfile {
    let times = instance.event_times();
    let mut segments = Vec::new();
    let mut active_sizes: Vec<Rational> = Vec::new();
    for w in times.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        active_sizes.clear();
        active_sizes.extend(
            instance
                .items()
                .iter()
                .filter(|r| r.active_at(lo))
                .map(|r| r.size),
        );
        if active_sizes.is_empty() {
            continue;
        }
        let (lower, upper) = if active_sizes.len() <= config.max_exact_items {
            let exact = solver.min_bins(&active_sizes);
            (exact, exact)
        } else {
            let mut sorted = active_sizes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            (lower_bound_l2(&sorted), first_fit_decreasing(&sorted))
        };
        segments.push(OptSegment {
            window: Interval::new(lo, hi),
            lower,
            upper,
        });
    }
    OptProfile { segments }
}

/// Integrates the profile into `OPT_total(R)` (exact when every
/// segment solved exactly).
pub fn opt_total(instance: &Instance, solver: &ExactBinPacking, config: OptConfig) -> OptTotal {
    let profile = opt_profile(instance, solver, config);
    let mut lower = Rational::ZERO;
    let mut upper = Rational::ZERO;
    for seg in &profile.segments {
        let len = seg.window.len();
        lower += Rational::from_int(seg.lower as i128) * len;
        upper += Rational::from_int(seg.upper as i128) * len;
    }
    OptTotal { lower, upper }
}

/// Convenience: exact `OPT_total` with default configuration;
/// `None` when any segment was too large to solve exactly.
pub fn opt_total_exact(instance: &Instance) -> Option<Rational> {
    let solver = ExactBinPacking::new();
    opt_total(instance, &solver, OptConfig::default()).exact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn inst(specs: &[(i128, i128, i128, i128)]) -> Instance {
        Instance::new(
            specs
                .iter()
                .map(|&(n, d, a, dep)| (rat(n, d), rat(a, 1), rat(dep, 1)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_instance() {
        let i = Instance::new(vec![]).unwrap();
        let t = opt_total(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(t.exact(), Some(rat(0, 1)));
    }

    #[test]
    fn single_item_profile() {
        let i = inst(&[(1, 2, 0, 3)]);
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].lower, 1);
        assert!(p.segments[0].is_exact());
        assert_eq!(opt_total_exact(&i), Some(rat(3, 1)));
    }

    #[test]
    fn adversary_repacks_between_phases() {
        // Phase 1 [0,1): two size-2/3 items → 2 bins.
        // Phase 2 [1,3): one size-1/3 item → 1 bin.
        // OPT_total = 2·1 + 1·2 = 4.
        let i = inst(&[(2, 3, 0, 1), (2, 3, 0, 1), (1, 3, 1, 3)]);
        assert_eq!(opt_total_exact(&i), Some(rat(4, 1)));
    }

    #[test]
    fn gaps_cost_nothing() {
        let i = inst(&[(1, 2, 0, 1), (1, 2, 10, 11)]);
        assert_eq!(opt_total_exact(&i), Some(rat(2, 1)));
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(p.segments.len(), 2); // the [1,10) gap is skipped
        assert_eq!(p.peak_lower(), 1);
        assert_eq!(p.peak_upper(), 1);
        assert_eq!(p.exact_fraction(), 1.0);
    }

    #[test]
    fn section8_optimal_cost() {
        // §VIII with n = 4, µ = 3: pairs (1/2, 1/4) at t=0; halves
        // depart at 1, quarters at 3. Adversary: 2 bins for the four
        // halves on [0,1) and 1 bin for the four quarters on [0,3):
        // OPT(t) = 3 on [0,1), 1 on [1,3) → OPT_total = 3 + 2 = 5.
        let n = 4;
        let mu = 3;
        let mut specs = Vec::new();
        for _ in 0..n {
            specs.push((1, 2, 0, 1));
            specs.push((1, n as i128, 0, mu));
        }
        let i = inst(&specs);
        assert_eq!(opt_total_exact(&i), Some(rat(5, 1)));
    }

    #[test]
    fn bracket_mode_for_large_active_sets() {
        // 6 concurrent items with exact solving capped at 4: the
        // result must still be a valid bracket containing the true
        // value (which the uncapped solve provides).
        let specs: Vec<_> = (0..6).map(|_| (2, 5, 0, 2)).collect();
        let i = inst(&specs);
        let solver = ExactBinPacking::new();
        let capped = opt_total(&i, &solver, OptConfig::with_max_exact(4));
        let exact = opt_total(&i, &solver, OptConfig::default());
        assert!(exact.is_exact());
        assert!(capped.lower <= exact.lower);
        assert!(capped.upper >= exact.upper);
        // Six 2/5-items pack 2-per-bin → 3 bins on [0,2): total 6.
        assert_eq!(exact.exact(), Some(rat(6, 1)));
    }

    #[test]
    fn bracket_mode_under_node_budget() {
        // A zero node budget forces every nontrivial search to stop
        // at its bounds; the bracket must still contain the truth.
        let specs: Vec<_> = (1..=12).map(|k| (k, 25, 0, 2)).collect();
        let i = inst(&specs);
        let solver = ExactBinPacking::new();
        let exact = opt_total(&i, &solver, OptConfig::default());
        assert!(exact.is_exact());
        let solver2 = ExactBinPacking::new();
        let starved = opt_total(
            &i,
            &solver2,
            OptConfig {
                node_budget: 0,
                ..OptConfig::default()
            },
        );
        assert!(starved.lower <= exact.lower);
        assert!(starved.upper >= exact.upper);
    }

    #[test]
    fn profile_peaks_track_standard_dbp() {
        let i = inst(&[(1, 1, 0, 2), (1, 1, 1, 3), (1, 1, 2, 4)]);
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(p.peak_lower(), 2);
    }

    #[test]
    fn incremental_profile_matches_per_interval_solves() {
        // The warm-started sweep must agree segment for segment with
        // independent from-scratch solves of each interval.
        let specs: &[(i128, i128, i128, i128)] = &[
            (1, 2, 0, 5),
            (1, 3, 1, 4),
            (2, 3, 2, 6),
            (1, 4, 3, 7),
            (3, 4, 0, 2),
            (1, 6, 4, 8),
            (5, 6, 5, 9),
            (1, 2, 6, 9),
        ];
        let i = inst(specs);
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        let times = i.event_times();
        let solver = ExactBinPacking::new();
        let mut k = 0;
        for w in times.windows(2) {
            let active: Vec<Rational> = i
                .items()
                .iter()
                .filter(|r| r.active_at(w[0]))
                .map(|r| r.size)
                .collect();
            if active.is_empty() {
                continue;
            }
            let opt = solver.min_bins(&active);
            assert_eq!(p.segments[k].window, Interval::new(w[0], w[1]));
            assert_eq!(p.segments[k].lower, opt, "window {k}");
            assert_eq!(p.segments[k].upper, opt, "window {k}");
            k += 1;
        }
        assert_eq!(k, p.segments.len());
    }

    #[test]
    fn long_profile_spans_multiple_chunks() {
        // > CHUNK_INTERVALS windows so the parallel path and the
        // chunk-head cold start both execute.
        let specs: Vec<_> = (0..80i128)
            .map(|k| (1 + (k % 7), 8, k, k + 3 + (k % 5)))
            .collect();
        let i = inst(&specs);
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert!(p.segments.len() > CHUNK_INTERVALS);
        assert!((p.exact_fraction() - 1.0).abs() < 1e-12);
        // Agreement with the integral recomputed per interval.
        let solver = ExactBinPacking::new();
        for seg in &p.segments {
            let active: Vec<Rational> = i
                .items()
                .iter()
                .filter(|r| r.active_at(seg.window.lo()))
                .map(|r| r.size)
                .collect();
            assert_eq!(seg.lower, solver.min_bins(&active));
        }
    }
}
