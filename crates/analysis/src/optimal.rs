//! The offline adversary: `OPT_total(R) = ∫ OPT(R, t) dt`.
//!
//! The paper's adversary may *repack everything at any time*
//! (§III.C), so its cost is the integral of the instantaneous optimal
//! bin count. Between two consecutive event times the active set —
//! and hence `OPT(R, t)` — is constant, so the integral is a finite
//! sum over the event-interval profile.
//!
//! Each interval's `OPT(R, t)` is an exact bin packing solve
//! ([`crate::solver::ExactBinPacking`]). For large active sets the
//! solve can be disabled via [`OptConfig::max_exact_items`]; the
//! profile then falls back to the certified sandwich
//! `max(⌈L⌉, big) ≤ OPT ≤ FFD`, and the result is returned as a
//! bracket instead of an exact value.

use crate::solver::{first_fit_decreasing, lower_bound_l2, ExactBinPacking};
use dbp_core::Instance;
use dbp_numeric::{Interval, Rational};

/// Tuning knobs for the adversary computation.
#[derive(Debug, Clone, Copy)]
pub struct OptConfig {
    /// Maximum active-set size for which an exact solve is attempted;
    /// larger sets use the `L2`/FFD sandwich. The default (28) solves
    /// typical event intervals in microseconds–milliseconds.
    pub max_exact_items: usize,
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig {
            max_exact_items: 28,
        }
    }
}

/// One segment of the `OPT(R, t)` profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptSegment {
    /// The event interval (active set constant here).
    pub window: Interval,
    /// Lower bound on `OPT(R, t)` in this window.
    pub lower: usize,
    /// Upper bound on `OPT(R, t)` in this window.
    pub upper: usize,
}

impl OptSegment {
    /// `true` iff the bin count is known exactly.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// The piecewise-constant profile of `OPT(R, t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptProfile {
    /// Segments in time order (only windows with active items).
    pub segments: Vec<OptSegment>,
}

impl OptProfile {
    /// Peak of the lower-bound profile — a lower bound on the
    /// *standard* DBP objective (max concurrent bins).
    pub fn peak_lower(&self) -> usize {
        self.segments.iter().map(|s| s.lower).max().unwrap_or(0)
    }

    /// Peak of the upper-bound profile.
    pub fn peak_upper(&self) -> usize {
        self.segments.iter().map(|s| s.upper).max().unwrap_or(0)
    }
}

/// `OPT_total(R)` as an exact value or a certified bracket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptTotal {
    /// Certified lower bound on `∫ OPT(R, t) dt`.
    pub lower: Rational,
    /// Certified upper bound on `∫ OPT(R, t) dt`.
    pub upper: Rational,
}

impl OptTotal {
    /// `true` iff lower == upper (every segment solved exactly).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// The exact value, if known.
    pub fn exact(&self) -> Option<Rational> {
        self.is_exact().then_some(self.lower)
    }
}

/// Computes the `OPT(R, t)` profile over the packing period.
pub fn opt_profile(instance: &Instance, solver: &ExactBinPacking, config: OptConfig) -> OptProfile {
    let times = instance.event_times();
    let mut segments = Vec::new();
    let mut active_sizes: Vec<Rational> = Vec::new();
    for w in times.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        active_sizes.clear();
        active_sizes.extend(
            instance
                .items()
                .iter()
                .filter(|r| r.active_at(lo))
                .map(|r| r.size),
        );
        if active_sizes.is_empty() {
            continue; // adversary closes everything during gaps
        }
        let (lower, upper) = if active_sizes.len() <= config.max_exact_items {
            let exact = solver.min_bins(&active_sizes);
            (exact, exact)
        } else {
            let mut sorted = active_sizes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            (lower_bound_l2(&sorted), first_fit_decreasing(&sorted))
        };
        segments.push(OptSegment {
            window: Interval::new(lo, hi),
            lower,
            upper,
        });
    }
    OptProfile { segments }
}

/// Integrates the profile into `OPT_total(R)` (exact when every
/// segment solved exactly).
pub fn opt_total(instance: &Instance, solver: &ExactBinPacking, config: OptConfig) -> OptTotal {
    let profile = opt_profile(instance, solver, config);
    let mut lower = Rational::ZERO;
    let mut upper = Rational::ZERO;
    for seg in &profile.segments {
        let len = seg.window.len();
        lower += Rational::from_int(seg.lower as i128) * len;
        upper += Rational::from_int(seg.upper as i128) * len;
    }
    OptTotal { lower, upper }
}

/// Convenience: exact `OPT_total` with default configuration;
/// `None` when any segment was too large to solve exactly.
pub fn opt_total_exact(instance: &Instance) -> Option<Rational> {
    let solver = ExactBinPacking::new();
    opt_total(instance, &solver, OptConfig::default()).exact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn inst(specs: &[(i128, i128, i128, i128)]) -> Instance {
        Instance::new(
            specs
                .iter()
                .map(|&(n, d, a, dep)| (rat(n, d), rat(a, 1), rat(dep, 1)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_instance() {
        let i = Instance::new(vec![]).unwrap();
        let t = opt_total(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(t.exact(), Some(rat(0, 1)));
    }

    #[test]
    fn single_item_profile() {
        let i = inst(&[(1, 2, 0, 3)]);
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].lower, 1);
        assert!(p.segments[0].is_exact());
        assert_eq!(opt_total_exact(&i), Some(rat(3, 1)));
    }

    #[test]
    fn adversary_repacks_between_phases() {
        // Phase 1 [0,1): two size-2/3 items → 2 bins.
        // Phase 2 [1,3): one size-1/3 item → 1 bin.
        // OPT_total = 2·1 + 1·2 = 4.
        let i = inst(&[(2, 3, 0, 1), (2, 3, 0, 1), (1, 3, 1, 3)]);
        assert_eq!(opt_total_exact(&i), Some(rat(4, 1)));
    }

    #[test]
    fn gaps_cost_nothing() {
        let i = inst(&[(1, 2, 0, 1), (1, 2, 10, 11)]);
        assert_eq!(opt_total_exact(&i), Some(rat(2, 1)));
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(p.segments.len(), 2); // the [1,10) gap is skipped
        assert_eq!(p.peak_lower(), 1);
        assert_eq!(p.peak_upper(), 1);
    }

    #[test]
    fn section8_optimal_cost() {
        // §VIII with n = 4, µ = 3: pairs (1/2, 1/4) at t=0; halves
        // depart at 1, quarters at 3. Adversary: 2 bins for the four
        // halves on [0,1) and 1 bin for the four quarters on [0,3):
        // OPT(t) = 3 on [0,1), 1 on [1,3) → OPT_total = 3 + 2 = 5.
        let n = 4;
        let mu = 3;
        let mut specs = Vec::new();
        for _ in 0..n {
            specs.push((1, 2, 0, 1));
            specs.push((1, n as i128, 0, mu));
        }
        let i = inst(&specs);
        assert_eq!(opt_total_exact(&i), Some(rat(5, 1)));
    }

    #[test]
    fn bracket_mode_for_large_active_sets() {
        // 6 concurrent items with exact solving capped at 4: the
        // result must still be a valid bracket containing the true
        // value (which the uncapped solve provides).
        let specs: Vec<_> = (0..6).map(|_| (2, 5, 0, 2)).collect();
        let i = inst(&specs);
        let solver = ExactBinPacking::new();
        let capped = opt_total(&i, &solver, OptConfig { max_exact_items: 4 });
        let exact = opt_total(&i, &solver, OptConfig::default());
        assert!(exact.is_exact());
        assert!(capped.lower <= exact.lower);
        assert!(capped.upper >= exact.upper);
        // Six 2/5-items pack 2-per-bin → 3 bins on [0,2): total 6.
        assert_eq!(exact.exact(), Some(rat(6, 1)));
    }

    #[test]
    fn profile_peaks_track_standard_dbp() {
        let i = inst(&[(1, 1, 0, 2), (1, 1, 1, 3), (1, 1, 2, 4)]);
        let p = opt_profile(&i, &ExactBinPacking::new(), OptConfig::default());
        assert_eq!(p.peak_lower(), 2);
    }
}
