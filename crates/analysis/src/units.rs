//! Tick-compiling size multisets onto a common integer grid.
//!
//! The exact adversary solves a bin packing instance per event
//! interval; doing that on `Vec<Rational>` multisets pays i128
//! arithmetic, gcd normalization and 16-byte hashing on every touch.
//! Exactly as `dbp_core::tick` rescales a whole instance onto integer
//! ticks, this module rescales a *size multiset* onto the grid
//! `1/scale`, with `scale` the LCM of the reduced denominators: every
//! size becomes a `u32` number of **units** and the bin capacity
//! becomes `scale` units. The branch-and-bound kernel ([`crate::bb`])
//! then runs on machine integers end to end, and memo keys become
//! gcd-canonical `u32` vectors ([`UnitKey`]) that rationally-equal
//! multisets share by construction.

use dbp_numeric::{checked_lcm, gcd128, Rational};

/// Largest representable grid: sizes must fit `u32` units so levels
/// and gaps stay in `u32` and sums in `u64` (mirrors
/// `dbp_core::tick`'s `MAX_SCALE`).
pub const MAX_UNIT_SCALE: i128 = u32::MAX as i128;

/// A size multiset compiled to integer units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSizes {
    /// Item sizes in units, sorted decreasing.
    pub units: Vec<u32>,
    /// Bin capacity in units (the compilation scale).
    pub capacity: u32,
}

/// The common grid for a family of sizes: the LCM of their reduced
/// denominators, or `None` when it exceeds [`MAX_UNIT_SCALE`] (the
/// caller falls back to exact `Rational` arithmetic).
pub fn common_scale(sizes: &[Rational]) -> Option<i128> {
    let mut scale = 1i128;
    for s in sizes {
        scale = checked_lcm(scale, s.denom())?;
        if scale > MAX_UNIT_SCALE {
            return None;
        }
    }
    Some(scale)
}

/// Compiles `sizes` (each in `(0, 1]`) onto their common grid.
/// Returns `None` when no `u32` grid exists.
pub fn compile_sizes(sizes: &[Rational]) -> Option<UnitSizes> {
    let scale = common_scale(sizes)?;
    let mut units: Vec<u32> = sizes
        .iter()
        .map(|s| {
            let u = s.scaled_to(scale).expect("scale is the denominator LCM");
            debug_assert!(u > 0 && u <= scale);
            u as u32
        })
        .collect();
    units.sort_unstable_by(|a, b| b.cmp(a));
    Some(UnitSizes {
        units,
        capacity: scale as u32,
    })
}

/// A canonical, hash-cheap memo key for a compiled size multiset.
///
/// Canonical means: units sorted decreasing **and** jointly reduced
/// by `gcd(capacity, gcd(units))`, so the same rational multiset
/// always maps to the same key no matter how its inputs were written
/// (`[1/2]` in a grid-4 instance and `[2/4]` in a grid-8 instance
/// both compile to `units=[1], capacity=2`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// Canonical unit sizes, sorted decreasing.
    pub units: Vec<u32>,
    /// Canonical capacity.
    pub capacity: u32,
}

impl UnitKey {
    /// Canonicalizes a sorted-decreasing unit multiset.
    pub fn new(mut units: Vec<u32>, capacity: u32) -> UnitKey {
        debug_assert!(units.windows(2).all(|w| w[0] >= w[1]), "units sorted desc");
        let mut g = capacity as i128;
        for &u in &units {
            if g == 1 {
                break;
            }
            g = gcd128(g, u as i128);
        }
        if g > 1 {
            let g = g as u32;
            for u in &mut units {
                *u /= g;
            }
            return UnitKey {
                units,
                capacity: capacity / g,
            };
        }
        UnitKey { units, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn compile_is_exact_and_sorted() {
        let c = compile_sizes(&[rat(1, 2), rat(1, 3), rat(5, 6)]).unwrap();
        assert_eq!(c.capacity, 6);
        assert_eq!(c.units, vec![5, 3, 2]);
    }

    #[test]
    fn rationally_equal_multisets_share_a_key() {
        // 1/2 on a /2 grid and 2/4 written with denominator 4 reduce
        // to the same Rational, but even *different grids* carrying
        // the same multiset canonicalize identically.
        let a = compile_sizes(&[rat(1, 2), rat(1, 4)]).unwrap();
        let b = compile_sizes(&[rat(2, 4), rat(2, 8)]).unwrap();
        let ka = UnitKey::new(a.units, a.capacity);
        let kb = UnitKey::new(b.units, b.capacity);
        assert_eq!(ka, kb);
        // And a coarser multiple-of-everything grid also collapses.
        let kc = UnitKey::new(vec![8, 4], 16);
        assert_eq!(ka, kc);
        assert_eq!(ka.capacity, 4);
        assert_eq!(ka.units, vec![2, 1]);
    }

    #[test]
    fn oversized_scale_falls_back() {
        // Two large coprime denominators overflow the u32 grid.
        let p = (1i128 << 31) - 1; // Mersenne prime 2147483647
        assert_eq!(common_scale(&[rat(1, p), rat(1, p - 1)]), None);
        assert!(compile_sizes(&[rat(1, p), rat(1, p - 1)]).is_none());
    }
}
