//! Exact classical bin packing by branch and bound.
//!
//! `OPT(R, t)` — the minimum number of unit bins into which the items
//! active at time `t` can be repacked (paper §III.C) — is an instance
//! of classical bin packing, NP-hard in general but small in practice
//! here: the active sets along an event profile rarely exceed a few
//! hundred items.
//!
//! The solver front-end in this module:
//!
//! * **tick-compiles** the size multiset to `u32` units on the LCM
//!   grid ([`crate::units`]) and runs the integer branch-and-bound
//!   kernel ([`crate::bb`]: Martello–Toth L2/L3 bounds, dominance
//!   reduction, FFD + local-search incumbent, best-fit-ordered DFS);
//! * keeps a **lock-sharded memo** keyed by the gcd-canonical unit
//!   multiset, so rationally-equal multisets — and the same multiset
//!   arriving from different grids — hit one entry, and concurrent
//!   profile shards ([`crate::optimal`]) don't serialize on a single
//!   mutex;
//! * falls back to the original `Rational` search
//!   ([`reference_min_bins`]) for multisets whose denominators exceed
//!   the `u32` grid — and keeps that seed implementation public as
//!   the differential-testing reference.

use crate::bb;
use crate::units::{compile_sizes, UnitKey};
use dbp_numeric::Rational;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Number of memo shards; hashes spread keys uniformly, so a handful
/// of shards removes essentially all cross-worker contention.
const MEMO_SHARDS: usize = 16;

/// A reusable exact bin packing solver with a sharded memo table.
///
/// ```
/// use dbp_analysis::ExactBinPacking;
/// use dbp_numeric::rat;
///
/// let solver = ExactBinPacking::new();
/// // Three items of 2/3 cannot share: 3 bins.
/// assert_eq!(solver.min_bins(&[rat(2, 3), rat(2, 3), rat(2, 3)]), 3);
/// // 0.6 + 0.4, 0.5 + 0.5: 2 bins.
/// assert_eq!(
///     solver.min_bins(&[rat(3, 5), rat(1, 2), rat(2, 5), rat(1, 2)]),
///     2
/// );
/// ```
#[derive(Debug)]
pub struct ExactBinPacking {
    /// Unit-canonical results, sharded by key hash.
    shards: Vec<Mutex<HashMap<UnitKey, u32>>>,
    /// Fallback results for multisets off every `u32` grid.
    rational_memo: Mutex<HashMap<Vec<Rational>, u32>>,
}

impl Default for ExactBinPacking {
    fn default() -> ExactBinPacking {
        ExactBinPacking {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            rational_memo: Mutex::new(HashMap::new()),
        }
    }
}

impl ExactBinPacking {
    /// Creates a solver with an empty memo table.
    pub fn new() -> ExactBinPacking {
        ExactBinPacking::default()
    }

    /// Minimum number of unit bins for `sizes` (each in `(0, 1]`).
    ///
    /// # Panics
    /// Panics if any size is outside `(0, 1]`.
    pub fn min_bins(&self, sizes: &[Rational]) -> usize {
        assert!(
            sizes.iter().all(|s| s.is_positive() && *s <= Rational::ONE),
            "sizes must lie in (0, 1]"
        );
        if sizes.is_empty() {
            return 0;
        }
        match compile_sizes(sizes) {
            Some(c) => {
                let out = self.solve_units(&c.units, c.capacity, None, 0, u64::MAX);
                debug_assert!(out.is_exact());
                out.upper
            }
            None => {
                let mut sorted: Vec<Rational> = sizes.to_vec();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                if let Some(&hit) = self.rational_memo.lock().get(&sorted) {
                    return hit as usize;
                }
                let result = reference_search(&sorted);
                self.rational_memo.lock().insert(sorted, result as u32);
                result
            }
        }
    }

    /// Solves (or brackets, under `budget`) a sorted-decreasing unit
    /// multiset through the sharded memo; `warm` and `floor` are the
    /// warm-start packing and external lower bound of [`bb::pack`] —
    /// the incremental profile's temporal-coherence carry-overs.
    ///
    /// On a memo hit the returned outcome is exact with an **empty**
    /// `packing` (the memo stores counts, not packings): callers
    /// maintaining a warm packing keep their current one.
    pub fn solve_units(
        &self,
        units_desc: &[u32],
        capacity: u32,
        warm: Option<&[Vec<u32>]>,
        floor: usize,
        budget: u64,
    ) -> bb::BbOutcome {
        let key = UnitKey::new(units_desc.to_vec(), capacity);
        if let Some(&hit) = self.shard(&key).lock().get(&key) {
            return bb::BbOutcome {
                lower: hit as usize,
                upper: hit as usize,
                packing: Vec::new(),
                nodes: 0,
            };
        }
        let out = bb::pack(units_desc, capacity, warm, floor, budget);
        if out.is_exact() {
            self.shard(&key).lock().insert(key, out.upper as u32);
        }
        out
    }

    fn shard(&self, key: &UnitKey) -> &Mutex<HashMap<UnitKey, u32>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % MEMO_SHARDS]
    }

    /// Number of memoized size multisets (diagnostics).
    pub fn memo_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum::<usize>() + self.rational_memo.lock().len()
    }

    /// Clears the memo table.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.rational_memo.lock().clear();
    }
}

/// The seed branch-and-bound on `Rational` multisets, preserved
/// verbatim as (a) the fallback for multisets too fine for any `u32`
/// grid and (b) the differential-testing and benchmarking reference
/// for the integer kernel (`tests/prop_opt_solver.rs` asserts
/// bit-equal `min_bins`; the `BENCH_opt_solver.json` seed arm
/// measures the speedup against it).
///
/// # Panics
/// Panics if any size is outside `(0, 1]`.
pub fn reference_min_bins(sizes: &[Rational]) -> usize {
    assert!(
        sizes.iter().all(|s| s.is_positive() && *s <= Rational::ONE),
        "sizes must lie in (0, 1]"
    );
    if sizes.is_empty() {
        return 0;
    }
    let mut sorted: Vec<Rational> = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    reference_search(&sorted)
}

/// L2 + FFD sandwich, then DFS — the seed solver's exact pipeline on
/// a sorted-decreasing multiset.
fn reference_search(sorted: &[Rational]) -> usize {
    let lb = lower_bound_l2(sorted);
    let ffd = first_fit_decreasing(sorted);
    if ffd == lb {
        ffd
    } else {
        let mut search = Search {
            items: sorted,
            bins: Vec::with_capacity(ffd),
            best: ffd,
            suffix_sum: suffix_sums(sorted),
        };
        search.dfs(0, lb);
        search.best
    }
}

/// `suffix_sum[i] = Σ_{j ≥ i} items[j]`.
fn suffix_sums(items: &[Rational]) -> Vec<Rational> {
    let mut sums = vec![Rational::ZERO; items.len() + 1];
    for i in (0..items.len()).rev() {
        sums[i] = sums[i + 1] + items[i];
    }
    sums
}

/// First Fit Decreasing on a size-decreasing slice: a classic
/// `11/9·OPT + 6/9` upper bound, used as the incumbent.
pub fn first_fit_decreasing(sorted_desc: &[Rational]) -> usize {
    let mut bins: Vec<Rational> = Vec::new();
    for &s in sorted_desc {
        match bins.iter_mut().find(|level| **level + s <= Rational::ONE) {
            Some(level) => *level += s,
            None => bins.push(s),
        }
    }
    bins.len()
}

/// The continuous lower bound `L1 = ⌈Σ sizes⌉`.
pub fn lower_bound_l1(sizes: &[Rational]) -> usize {
    let total: Rational = sizes.iter().sum();
    total.ceil().max(0) as usize
}

/// The Martello–Toth `L2` lower bound.
///
/// For a threshold `α ∈ [0, 1/2]`, partition the items into
/// `J1 = {s > 1 − α}`, `J2 = {1/2 < s ≤ 1 − α}`, `J3 = {α ≤ s ≤ 1/2}`.
/// No two items of `J1 ∪ J2` share a bin, and no `J3` item fits with
/// a `J1` item, so `J3`'s volume in excess of the spare capacity of
/// `J2`'s bins forces `⌈overflow⌉` extra bins. `L2` is the maximum of
/// `|J1 ∪ J2| + extra(α)` over thresholds `α` drawn from the distinct
/// item sizes (together with `L1 = ⌈Σ s⌉`, the `α = 0` case).
pub fn lower_bound_l2(sorted_desc: &[Rational]) -> usize {
    let l1 = lower_bound_l1(sorted_desc);
    let mut best = l1.max(usize::from(!sorted_desc.is_empty()));
    let half = Rational::HALF;

    // Candidate thresholds: α = 0 (captures "every item > 1/2 needs
    // its own bin") plus the distinct sizes ≤ 1/2.
    let mut alphas: Vec<Rational> = sorted_desc.iter().copied().filter(|s| *s <= half).collect();
    alphas.dedup();
    alphas.push(Rational::ZERO);

    for &alpha in &alphas {
        let one_minus_alpha = Rational::ONE - alpha;
        let mut n12 = 0usize; // |J1 ∪ J2|: items with size > 1/2 … and > 1−α
        let mut free_j2 = Rational::ZERO; // spare capacity in J2's bins
        let mut vol_j3 = Rational::ZERO; // volume of items in [α, 1/2]
        for &s in sorted_desc {
            if s > half {
                n12 += 1;
                if s <= one_minus_alpha {
                    free_j2 += Rational::ONE - s;
                }
            } else if s >= alpha {
                vol_j3 += s;
            }
        }
        let overflow = vol_j3 - free_j2;
        let extra = if overflow.is_positive() {
            overflow.ceil() as usize
        } else {
            0
        };
        best = best.max(n12 + extra);
    }
    best
}

/// DFS state for the reference branch and bound.
struct Search<'a> {
    items: &'a [Rational],
    bins: Vec<Rational>,
    best: usize,
    suffix_sum: Vec<Rational>,
}

impl Search<'_> {
    fn dfs(&mut self, idx: usize, global_lb: usize) {
        if self.best == global_lb {
            return; // cannot improve further anywhere
        }
        if idx == self.items.len() {
            self.best = self.best.min(self.bins.len());
            return;
        }
        // Prune: bins already open + volume bound on the remainder.
        let remaining = self.suffix_sum[idx];
        let open_gap: Rational = self.bins.iter().map(|level| Rational::ONE - *level).sum();
        let overflow = remaining - open_gap;
        let need_new = if overflow.is_positive() {
            overflow.ceil() as usize
        } else {
            0
        };
        if self.bins.len() + need_new >= self.best {
            return;
        }

        let s = self.items[idx];
        // Try existing bins, skipping duplicate levels (symmetry).
        let mut tried: Vec<Rational> = Vec::with_capacity(self.bins.len());
        for b in 0..self.bins.len() {
            let level = self.bins[b];
            if level + s > Rational::ONE || tried.contains(&level) {
                continue;
            }
            tried.push(level);
            self.bins[b] = level + s;
            self.dfs(idx + 1, global_lb);
            self.bins[b] = level;
            if self.best == global_lb {
                return;
            }
        }
        // Try a new bin (always a distinct state: level 0 bins never
        // coexist with the current item unplaced).
        if self.bins.len() + 1 < self.best {
            self.bins.push(s);
            self.dfs(idx + 1, global_lb);
            self.bins.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn empty_and_singleton() {
        let s = ExactBinPacking::new();
        assert_eq!(s.min_bins(&[]), 0);
        assert_eq!(s.min_bins(&[rat(1, 1)]), 1);
        assert_eq!(s.min_bins(&[rat(1, 100)]), 1);
    }

    #[test]
    fn perfect_pairs() {
        let s = ExactBinPacking::new();
        // 0.4+0.6 twice → 2 bins.
        assert_eq!(s.min_bins(&[rat(2, 5), rat(3, 5), rat(2, 5), rat(3, 5)]), 2);
    }

    #[test]
    fn ffd_suboptimal_case_is_solved_exactly() {
        // Exactness is cross-validated against the reference solver
        // in the property suite; here we spot-check a few knowns.
        let s = ExactBinPacking::new();
        assert_eq!(
            s.min_bins(&[rat(11, 20), rat(7, 10), rat(9, 20), rat(3, 10)]),
            2
        );
        // Seven items of size 2/5: pairs only → ⌈7/2⌉ = 4 bins? 2/5*2 = 4/5 ≤ 1,
        // 2/5*3 = 6/5 > 1 → 4 bins.
        assert_eq!(s.min_bins(&vec![rat(2, 5); 7]), 4);
    }

    #[test]
    fn l1_and_l2_bounds() {
        let sizes = [rat(3, 5), rat(3, 5), rat(3, 5)];
        // L1 = ceil(1.8) = 2; L2 = 3 (all > 1/2).
        assert_eq!(lower_bound_l1(&sizes), 2);
        assert_eq!(lower_bound_l2(&sizes), 3);
        assert_eq!(ExactBinPacking::new().min_bins(&sizes), 3);
    }

    #[test]
    fn l2_counts_medium_overflow() {
        // Two items of 0.6 (need 2 bins, spare 0.4 each) plus small
        // items of 0.3 × 4 (volume 1.2 > spare 0.8): L2 ≥ 2 + ⌈0.4⌉ = 3.
        let mut sizes = vec![rat(3, 5), rat(3, 5)];
        sizes.extend(vec![rat(3, 10); 4]);
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(lower_bound_l2(&sizes), 3);
        assert_eq!(ExactBinPacking::new().min_bins(&sizes), 3);
    }

    #[test]
    fn memo_caches_results() {
        let s = ExactBinPacking::new();
        let sizes = [rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)];
        let a = s.min_bins(&sizes);
        assert_eq!(s.memo_len(), 1);
        // Permutation hits the same canonical key.
        let shuffled = [rat(1, 5), rat(1, 4), rat(1, 2), rat(1, 3)];
        let b = s.min_bins(&shuffled);
        assert_eq!(a, b);
        assert_eq!(s.memo_len(), 1);
        s.clear();
        assert_eq!(s.memo_len(), 0);
    }

    #[test]
    fn memo_key_is_grid_canonical() {
        // Regression (ISSUE 8): rationally-equal multisets written on
        // different grids must share one memo entry. 1/2 + 1/4 vs
        // 2/4 + 2/8 reduce to the same Rationals already; push
        // further with sizes whose *unit* encodings differ by a
        // common factor before gcd canonicalization.
        let s = ExactBinPacking::new();
        let a = s.min_bins(&[rat(1, 2), rat(1, 4)]);
        let b = s.min_bins(&[rat(2, 4), rat(2, 8)]);
        let c = s.min_bins(&[rat(8, 16), rat(4, 16)]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(
            s.memo_len(),
            1,
            "one canonical entry for all three spellings"
        );
        // A genuinely different multiset adds a second entry.
        let _ = s.min_bins(&[rat(1, 2), rat(1, 3)]);
        assert_eq!(s.memo_len(), 2);
    }

    #[test]
    fn reference_solver_agrees_on_knowns() {
        let s = ExactBinPacking::new();
        for sizes in [
            vec![rat(2, 3); 3],
            vec![rat(2, 5), rat(3, 5), rat(2, 5), rat(3, 5)],
            (1..=15).map(|i| rat(i, 31)).collect::<Vec<_>>(),
        ] {
            assert_eq!(s.min_bins(&sizes), reference_min_bins(&sizes));
        }
    }

    #[test]
    fn fallback_handles_off_grid_denominators() {
        // LCM of these denominators overflows u32 → Rational path.
        let p = (1i128 << 31) - 1;
        let sizes = [rat(1, p), rat(1, p - 1), rat(1, 2)];
        let s = ExactBinPacking::new();
        assert_eq!(s.min_bins(&sizes), 1);
        assert_eq!(s.min_bins(&sizes), 1); // memo path
        assert_eq!(s.memo_len(), 1);
    }

    #[test]
    #[should_panic(expected = "sizes must lie in (0, 1]")]
    fn oversized_items_rejected() {
        let _ = ExactBinPacking::new().min_bins(&[rat(3, 2)]);
    }

    #[test]
    fn moderately_hard_instance() {
        // 15 items with mixed sizes; exact answer checked against the
        // volume bound and FFD sandwich.
        let sizes: Vec<_> = (1..=15).map(|i| rat(i, 31)).collect();
        let s = ExactBinPacking::new();
        let opt = s.min_bins(&sizes);
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert!(opt >= lower_bound_l1(&sizes));
        assert!(opt <= first_fit_decreasing(&sorted));
        // Σ i/31 for i=1..15 = 120/31 ≈ 3.87 → L1 = 4.
        assert_eq!(opt, 4);
    }
}
