//! The §IV–§VII proof machinery, executable.
//!
//! Given a concrete packing (normally First Fit's), this module
//! constructs every object the paper's competitive analysis
//! manipulates, in exact arithmetic:
//!
//! 1. **Usage periods** (§IV): per-bin `U_k`, the latest earlier
//!    closing time `E_k`, and the split `U_k = V_k ∪ W_k` with
//!    `Σ|W_k| = span(R)`.
//! 2. **Subperiods** (§V): per-bin selection of small items over
//!    `V_k`, the induced periods `x_0, x_1, …`, and the l/h split at
//!    length `d_max` (the paper's "µ" in normalized units).
//! 3. **Supplier bins** (§V): for each l-subperiod, the last-opened
//!    earlier bin open at its left endpoint.
//! 4. **Pairs and consolidation** (§V, Definitions 1–2): maximal runs
//!    of consecutive l-subperiods pairwise linked by
//!    `same supplier ∧ |x_{l,i+1}| > µ·|x_{l,i}|`.
//! 5. **Supplier periods** (§V–§VII): the window
//!    `[t − |x|/(µ+1), t + |x|/(µ+1))` for singles, and the hull of
//!    the Lemma 3/4 windows for consolidated runs (see DESIGN.md §3
//!    for the constant reconstruction).
//!
//! The companion [`crate::certify`] module turns Propositions 3–7 and
//! Lemmas 1–2 into assertions over this structure.

use dbp_core::{BinId, Instance, ItemId, PackingOutcome};
use dbp_numeric::{Interval, Rational};

/// One period `x_i` of a bin's `V_k`, split into l- and h-parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subperiod {
    /// Position `i` in the bin's period list (`0` is the pre-selection
    /// period `x_0`, which is pure h-subperiod).
    pub index: usize,
    /// The full period `x_i`.
    pub full: Interval,
    /// The l-subperiod `x_{l,i}` (empty for `i = 0`).
    pub l: Interval,
    /// The h-subperiod `x_{h,i}` (empty unless `|x_i| > d_max`).
    pub h: Interval,
    /// Supplier bin of the l-subperiod (§V): the last-opened bin with
    /// a smaller index open at `x_{l,i}^-`. `None` for `i = 0` or in
    /// the (provably impossible for First Fit) case where no earlier
    /// bin is open — certification flags the latter.
    pub supplier: Option<BinId>,
}

/// Decomposition of one bin's usage period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinDecomp {
    /// The bin.
    pub bin: BinId,
    /// Usage period `U_k`.
    pub usage: Interval,
    /// `E_k`: the latest closing time among earlier-opened bins
    /// (defined as `U_1^-` for the first bin).
    pub e_k: Rational,
    /// `V_k = [U_k^-, min(U_k^+, E_k))` (possibly empty).
    pub v: Interval,
    /// `W_k = U_k \ V_k` (possibly empty).
    pub w: Interval,
    /// The selected small items, in selection order (their arrivals
    /// are the left endpoints of `x_1, x_2, …`).
    pub selected: Vec<ItemId>,
    /// The periods `x_0, x_1, …` partitioning `V_k`.
    pub subperiods: Vec<Subperiod>,
}

impl BinDecomp {
    /// All l-subperiods of this bin (indices ≥ 1), in order.
    pub fn l_subperiods(&self) -> impl Iterator<Item = &Subperiod> + '_ {
        self.subperiods.iter().filter(|s| !s.l.is_empty())
    }

    /// All non-empty h-subperiods of this bin.
    pub fn h_subperiods(&self) -> impl Iterator<Item = &Subperiod> + '_ {
        self.subperiods.iter().filter(|s| !s.h.is_empty())
    }
}

/// A single l-subperiod or a consolidated run of them, with its
/// supplier period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LGroup {
    /// The bin the l-subperiods were produced from.
    pub bin: BinId,
    /// Index of that bin in [`Decomposition::bins`].
    pub bin_idx: usize,
    /// Indices into that bin's `subperiods` (length 1 = single
    /// l-subperiod, ≥ 2 = consolidated).
    pub members: Vec<usize>,
    /// The common supplier bin.
    pub supplier: BinId,
    /// The supplier period `u(x)`.
    pub supplier_period: Interval,
}

impl LGroup {
    /// `true` iff this is a consolidated run.
    pub fn is_consolidated(&self) -> bool {
        self.members.len() > 1
    }

    /// Total length of the member l-subperiods `Σ|x_{l,k}|`.
    pub fn members_len(&self, decomp: &Decomposition) -> Rational {
        self.members
            .iter()
            .map(|&m| decomp.bins[self.bin_idx].subperiods[m].l.len())
            .sum()
    }
}

/// Tunable constants of the decomposition — exposed so the
/// reconstruction can be *ablated* (DESIGN.md §3): the shipped
/// default divides supplier half-widths by `µ+1`, which is the unique
/// choice making Lemma 2 hold for all `µ`; the naive `|x|/2` reading
/// (divisor 2) demonstrably breaks disjointness for `µ > 1` (see the
/// `naive_window_constant_breaks_lemma2` test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowRule {
    /// Half-width `|x|/(µ+1)` — the reconstructed paper constant.
    MuPlusOne,
    /// Half-width `|x|/2` — the naive OCR reading; breaks Lemma 2.
    Half,
}

impl WindowRule {
    /// The divisor applied to `|x|` for the supplier half-width.
    fn divisor(self, mu: Rational) -> Rational {
        match self {
            WindowRule::MuPlusOne => mu + Rational::ONE,
            WindowRule::Half => Rational::TWO,
        }
    }
}

/// The complete §IV–§VII decomposition of one packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Minimum item duration (`1` in the paper's normalized units).
    pub d_min: Rational,
    /// Maximum item duration (`µ` in normalized units).
    pub d_max: Rational,
    /// `µ = d_max / d_min`.
    pub mu: Rational,
    /// Per-bin decompositions, in opening order.
    pub bins: Vec<BinDecomp>,
    /// All single/consolidated l-subperiod groups across bins.
    pub groups: Vec<LGroup>,
    /// l-subperiods whose supplier bin could not be identified
    /// (impossible for Any-Fit packings per §V; kept for robustness —
    /// certification asserts emptiness). Pairs of (bin idx, subperiod
    /// idx).
    pub orphan_l_subperiods: Vec<(usize, usize)>,
}

impl Decomposition {
    /// Runs the full §IV–§VII pipeline with the reconstructed paper
    /// constants ([`WindowRule::MuPlusOne`]).
    ///
    /// The outcome may come from any algorithm — the structure is
    /// well-defined for all packings — but the paper's propositions
    /// are only guaranteed for First Fit.
    ///
    /// # Panics
    /// Panics if the instance is empty (no durations ⇒ no `µ`).
    pub fn compute(instance: &Instance, outcome: &PackingOutcome) -> Decomposition {
        Decomposition::compute_with(instance, outcome, WindowRule::MuPlusOne)
    }

    /// [`compute`](Self::compute) with an explicit supplier-window
    /// rule (for ablating the reconstruction).
    pub fn compute_with(
        instance: &Instance,
        outcome: &PackingOutcome,
        rule: WindowRule,
    ) -> Decomposition {
        assert!(
            !instance.is_empty(),
            "decomposition needs a non-empty instance"
        );
        let d_min = instance.items().iter().map(|r| r.duration()).min().unwrap();
        let d_max = instance.items().iter().map(|r| r.duration()).max().unwrap();
        let mu = d_max / d_min;

        // ---- §IV: usage periods, E_k, V/W split ----
        let mut bins: Vec<BinDecomp> = Vec::with_capacity(outcome.bins().len());
        let mut latest_close: Option<Rational> = None;
        for record in outcome.bins() {
            let usage = record.usage;
            let e_k = latest_close.unwrap_or(usage.lo());
            let v_hi = usage.hi().min(e_k).max(usage.lo());
            let v = Interval::new(usage.lo(), v_hi);
            let w = Interval::new(v_hi, usage.hi());
            latest_close = Some(match latest_close {
                Some(prev) => prev.max(usage.hi()),
                None => usage.hi(),
            });
            bins.push(BinDecomp {
                bin: record.id,
                usage,
                e_k,
                v,
                w,
                selected: Vec::new(),
                subperiods: Vec::new(),
            });
        }

        // ---- §V: small-item selection and subperiods per bin ----
        for (k, record) in outcome.bins().iter().enumerate() {
            let v = bins[k].v;
            if v.is_empty() {
                continue;
            }
            // Small items placed in this bin during V_k, in placement
            // order (arrival order with engine tie order).
            let smalls: Vec<(ItemId, Rational)> = record
                .items
                .iter()
                .map(|&id| instance.item(id))
                .filter(|r| r.is_small() && v.contains_point(r.arrival()))
                .map(|r| (r.id, r.arrival()))
                .collect();
            let (selected, boundaries) = select_items(&smalls, v, d_max);
            bins[k].selected = selected;
            bins[k].subperiods = split_periods(&boundaries, v, d_max);
        }

        // ---- §V: supplier bins ----
        // For each l-subperiod's left endpoint t, the supplier is the
        // highest-indexed earlier bin whose usage period contains t.
        let usages: Vec<Interval> = bins.iter().map(|b| b.usage).collect();
        let mut orphans = Vec::new();
        for k in 0..bins.len() {
            for s in 0..bins[k].subperiods.len() {
                if bins[k].subperiods[s].l.is_empty() {
                    continue;
                }
                let t = bins[k].subperiods[s].l.lo();
                let supplier = (0..k)
                    .rev()
                    .find(|&g| usages[g].contains_point(t))
                    .map(|g| bins[g].bin);
                bins[k].subperiods[s].supplier = supplier;
                if supplier.is_none() {
                    orphans.push((k, s));
                }
            }
        }

        // ---- §V Definitions 1–2: pairs and consolidation ----
        let divisor = rule.divisor(mu);
        let mut groups = Vec::new();
        for (k, bin) in bins.iter().enumerate() {
            // Indices of l-subperiods in subperiod order.
            let ls: Vec<usize> = bin
                .subperiods
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.l.is_empty() && s.supplier.is_some())
                .map(|(i, _)| i)
                .collect();
            if ls.is_empty() {
                continue;
            }
            // Pair flags between consecutive l-subperiods.
            let paired: Vec<bool> = ls
                .windows(2)
                .map(|w| {
                    let a = &bin.subperiods[w[0]];
                    let b = &bin.subperiods[w[1]];
                    // Consecutive in the produced list means adjacent
                    // period indices; non-adjacent l-subperiods (an
                    // orphan between them) never pair.
                    w[1] == w[0] + 1 && a.supplier == b.supplier && b.l.len() > mu * a.l.len()
                })
                .collect();
            // Maximal runs.
            let mut run_start = 0usize;
            for i in 0..=paired.len() {
                let linked = i < paired.len() && paired[i];
                if !linked {
                    let members: Vec<usize> = ls[run_start..=i].to_vec();
                    let supplier = bin.subperiods[members[0]].supplier.unwrap();
                    let supplier_period = supplier_period(&members, &bin.subperiods, divisor);
                    groups.push(LGroup {
                        bin: bin.bin,
                        bin_idx: k,
                        members,
                        supplier,
                        supplier_period,
                    });
                    run_start = i + 1;
                }
            }
        }

        Decomposition {
            d_min,
            d_max,
            mu,
            bins,
            groups,
            orphan_l_subperiods: orphans,
        }
    }

    /// All h-subperiod intervals across bins (the set `Y` of §VII.D),
    /// as (bin index, interval) pairs.
    pub fn h_intervals(&self) -> Vec<(usize, Interval)> {
        let mut out = Vec::new();
        for (k, bin) in self.bins.iter().enumerate() {
            for s in bin.h_subperiods() {
                out.push((k, s.h));
            }
        }
        out
    }

    /// `Σ_k |V_k|`.
    pub fn total_v(&self) -> Rational {
        self.bins.iter().map(|b| b.v.len()).sum()
    }

    /// `Σ_k |W_k|` (equals `span(R)` per §IV).
    pub fn total_w(&self) -> Rational {
        self.bins.iter().map(|b| b.w.len()).sum()
    }
}

/// Time–space demand of the items of one bin over a window:
/// `Σ_{r in bin} s(r) · |I(r) ∩ window|` (the `d(·)` of §VII).
pub fn demand_over(
    instance: &Instance,
    outcome: &PackingOutcome,
    bin: BinId,
    window: &Interval,
) -> Rational {
    let record = outcome
        .bins()
        .iter()
        .find(|b| b.id == bin)
        .expect("demand_over: unknown bin");
    record
        .items
        .iter()
        .map(|&id| {
            let item = instance.item(id);
            item.size * item.interval.overlap_len(window)
        })
        .sum()
}

/// Instantaneous level of a bin at time `t`, reconstructed from the
/// outcome (active members' sizes).
pub fn level_at(
    instance: &Instance,
    outcome: &PackingOutcome,
    bin: BinId,
    t: Rational,
) -> Rational {
    let record = outcome
        .bins()
        .iter()
        .find(|b| b.id == bin)
        .expect("level_at: unknown bin");
    record
        .items
        .iter()
        .map(|&id| instance.item(id))
        .filter(|r| r.active_at(t))
        .map(|r| r.size)
        .sum()
}

/// §V selection process over the small items placed in a bin during
/// `V_k`. Returns the selected item ids and the arrival-time
/// boundaries `t_1 < t_2 < …`.
///
/// `smalls` must be in placement order (arrival order, ties in
/// placement order). Tie policy (DESIGN.md §3): only items arriving
/// *strictly* after the current selectee are candidates, so selected
/// arrivals are strictly increasing and all periods are non-empty.
fn select_items(
    smalls: &[(ItemId, Rational)],
    v: Interval,
    d_max: Rational,
) -> (Vec<ItemId>, Vec<Rational>) {
    let mut selected = Vec::new();
    let mut boundaries = Vec::new();
    if smalls.is_empty() {
        return (selected, boundaries);
    }
    let mut cur = 0usize;
    selected.push(smalls[0].0);
    boundaries.push(smalls[0].1);
    loop {
        let t = smalls[cur].1;
        // Termination (i): selectee within d_max of the end of V_k.
        if v.hi() - t <= d_max {
            break;
        }
        // Candidates strictly after t.
        let later = &smalls[cur + 1..];
        // Last small with arrival in (t, t + d_max]:
        let within = later
            .iter()
            .rposition(|&(_, a)| a > t && a <= t + d_max)
            .map(|off| cur + 1 + off);
        let next = match within {
            Some(j) => j,
            None => {
                // First small with arrival > t + d_max:
                match later.iter().position(|&(_, a)| a > t + d_max) {
                    Some(off) => cur + 1 + off,
                    None => break, // Termination (ii): no later smalls.
                }
            }
        };
        cur = next;
        selected.push(smalls[cur].0);
        boundaries.push(smalls[cur].1);
    }
    (selected, boundaries)
}

/// Splits `V_k` at the selected arrival times and performs the l/h
/// split at length `d_max`.
fn split_periods(boundaries: &[Rational], v: Interval, d_max: Rational) -> Vec<Subperiod> {
    let mut periods = Vec::with_capacity(boundaries.len() + 1);
    // x_0 : [V^-, t_1) — pure h-subperiod (possibly empty).
    let first_bound = boundaries.first().copied().unwrap_or(v.hi());
    periods.push(Subperiod {
        index: 0,
        full: Interval::new(v.lo(), first_bound),
        l: Interval::empty(),
        h: Interval::new(v.lo(), first_bound),
        supplier: None,
    });
    for (i, &t) in boundaries.iter().enumerate() {
        let end = boundaries.get(i + 1).copied().unwrap_or(v.hi());
        let full = Interval::new(t, end);
        let (l, h) = if full.len() > d_max {
            full.split_at(t + d_max)
        } else {
            (full, Interval::empty())
        };
        periods.push(Subperiod {
            index: i + 1,
            full,
            l,
            h,
            supplier: None,
        });
    }
    periods
}

/// Supplier period of a group (DESIGN.md §3 reconstruction).
///
/// * Single `x` with left endpoint `t`:
///   `[t − |x|/(µ+1), t + |x|/(µ+1))`.
/// * Consolidated `{x_i..x_j}`: the hull of the Lemma 3 windows
///   `[t_k − |x_k|/(µ+1), t_k + |x_k|/(µ+1))` and the Lemma 4 windows
///   `[t_{k+1} − w_k, t_k + w_k)`, `w_k = (|x_k|+|x_{k+1}|)/(µ+1)`.
fn supplier_period(members: &[usize], subperiods: &[Subperiod], divisor: Rational) -> Interval {
    let mut hull = Interval::empty();
    for (pos, &m) in members.iter().enumerate() {
        let x = subperiods[m].l;
        let half = x.len() / divisor;
        let w3 = Interval::new(x.lo() - half, x.lo() + half);
        hull = hull.hull(&w3);
        if let Some(&m_next) = members.get(pos + 1) {
            let x_next = subperiods[m_next].l;
            let w = (x.len() + x_next.len()) / divisor;
            // The pair window is non-empty because |x_{k+1}| > µ|x_k|
            // implies w > |x_k| = t_{k+1} − t_k (h-part empty, Prop 7).
            let lo = x_next.lo() - w;
            let hi = x.lo() + w;
            if lo < hi {
                hull = hull.hull(&Interval::new(lo, hi));
            }
        }
    }
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;

    /// Two long large anchors keep two bins open; a third bin opens
    /// later, so its V period is non-trivial.
    #[test]
    fn vw_split_matches_definitions() {
        let inst = Instance::builder()
            .item(rat(3, 4), rat(0, 1), rat(10, 1)) // b0 anchor
            .item(rat(3, 4), rat(0, 1), rat(6, 1)) // b1 anchor
            .item(rat(3, 4), rat(2, 1), rat(12, 1)) // b2: opens at 2
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert_eq!(out.bins_opened(), 3);
        let d = Decomposition::compute(&inst, &out);
        // b0: E_1 = U_1^- = 0 → V empty, W = [0,10).
        assert!(d.bins[0].v.is_empty());
        assert_eq!(d.bins[0].w, Interval::new(rat(0, 1), rat(10, 1)));
        // b1: E_2 = 10 → V = [0, min(6,10)) = [0,6), W empty.
        assert_eq!(d.bins[1].v, Interval::new(rat(0, 1), rat(6, 1)));
        assert!(d.bins[1].w.is_empty());
        // b2: E_3 = max(10, 6) = 10 → V = [2,10), W = [10,12).
        assert_eq!(d.bins[2].e_k, rat(10, 1));
        assert_eq!(d.bins[2].v, Interval::new(rat(2, 1), rat(10, 1)));
        assert_eq!(d.bins[2].w, Interval::new(rat(10, 1), rat(12, 1)));
        // Σ|W| = span = 12.
        assert_eq!(d.total_w(), inst.span());
    }

    #[test]
    fn all_large_items_make_pure_h_subperiods() {
        let inst = Instance::builder()
            .item(rat(3, 4), rat(0, 1), rat(8, 1))
            .item(rat(3, 4), rat(1, 1), rat(5, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let d = Decomposition::compute(&inst, &out);
        // b1's V = [1,5); no small items → x_0 = V, all h.
        let b1 = &d.bins[1];
        assert_eq!(b1.subperiods.len(), 1);
        assert_eq!(b1.subperiods[0].h, b1.v);
        assert!(b1.selected.is_empty());
        assert!(d.groups.is_empty());
    }

    #[test]
    fn selection_picks_first_small_and_walks_forward() {
        // d_min = 1 (several unit jobs), d_max = 8 ⇒ µ = 8.
        // Anchor bin b0 stays open [0, 20); bin b1 receives smalls.
        let inst = Instance::builder()
            .item(rat(9, 10), rat(0, 1), rat(20, 1)) // b0 anchor (duration 20 → d_max 20)
            .item(rat(2, 5), rat(0, 1), rat(2, 1)) // small, to b1 (dur 2)
            .item(rat(2, 5), rat(1, 1), rat(3, 1)) // small, b1 (within d_max of prev)
            .item(rat(2, 5), rat(16, 1), rat(18, 1)) // small, b1 much later
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        // smalls 1,2 (levels .4/.8) then close; item 3 reuses... b1
        // closes at t=3, so item3 opens b2 (b0 is too full: .9+.4>1).
        assert_eq!(out.bins_opened(), 3);
        let d = Decomposition::compute(&inst, &out);
        // d_min = 2, d_max = 20, µ = 10.
        assert_eq!(d.mu, rat(10, 1));
        // b1: V = [0, 3) entirely (E = 20). The first small (item 1,
        // t=0) is selected and termination (i) fires immediately:
        // V⁺ − 0 = 3 ≤ d_max = 20, so item 2 is never selected.
        let b1 = &d.bins[1];
        assert_eq!(b1.selected, vec![ItemId(1)]);
        assert_eq!(b1.subperiods.len(), 2); // x_0 (empty) and x_1
        assert!(b1.subperiods[0].full.is_empty());
        assert_eq!(b1.subperiods[1].full, Interval::new(rat(0, 1), rat(3, 1)));
        // |x_1| = 3 ≤ d_max → pure l.
        assert!(b1.subperiods[1].h.is_empty());
        assert_eq!(b1.subperiods[1].l.len(), rat(3, 1));
        // Supplier is b0 (the only earlier bin, open at t = 0).
        assert_eq!(b1.subperiods[1].supplier, Some(BinId(0)));
        assert!(d.orphan_l_subperiods.is_empty());
    }

    #[test]
    fn single_l_subperiod_gets_supplier_window() {
        // Durations 2..4 ⇒ µ = 2; one small opens its own bin while
        // the anchor chain keeps earlier bins alive.
        let inst = Instance::builder()
            .item(rat(9, 10), rat(0, 1), rat(4, 1)) // b0 anchor A (dur 4)
            .item(rat(9, 10), rat(3, 1), rat(7, 1)) // b1 anchor B overlaps A
            .item(rat(9, 10), rat(6, 1), rat(10, 1)) // b2 anchor C
            .item(rat(9, 10), rat(9, 1), rat(13, 1)) // b3 anchor D
            .item(rat(2, 5), rat(1, 1), rat(3, 1)) // small s1 (dur 2): b0? 0.9+0.4>1 → own bin
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let d = Decomposition::compute(&inst, &out);
        // d_max = 4, d_min = 2, µ = 2.
        assert_eq!(d.mu, rat(2, 1));
        // s1 opens its own bin (b4 in arrival order? anchors B..D open
        // later). Arrival order: A(0), s1(1), B(3), C(6), D(9).
        // s1 at t=1: only b0 open at level .9 → opens b1.
        let s1_bin = out.bin_of(ItemId(4)).unwrap();
        assert_eq!(s1_bin, BinId(1));
        // b1 usage [1,3): V = [1, min(3, E=4)) = [1,3). Small s1 at
        // t=1 → x_0 empty, x_1 = [1,3) len 2 ≤ d_max → all l.
        let b1 = &d.bins[1].subperiods;
        assert_eq!(b1.len(), 2);
        assert_eq!(b1[1].l, Interval::new(rat(1, 1), rat(3, 1)));
        assert_eq!(b1[1].supplier, Some(BinId(0)));
        // One single group with supplier period
        // [1 − 2/3, 1 + 2/3) (µ+1 = 3, |x| = 2).
        let g = d
            .groups
            .iter()
            .find(|g| g.bin == BinId(1))
            .expect("group for b1");
        assert!(!g.is_consolidated());
        assert_eq!(g.supplier_period, Interval::new(rat(1, 3), rat(5, 3)));
    }

    #[test]
    fn demand_and_level_helpers() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(4, 1))
            .item(rat(1, 4), rat(1, 1), rat(3, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let w = Interval::new(rat(0, 1), rat(2, 1));
        // demand = 1/2·2 + 1/4·1 = 5/4.
        assert_eq!(demand_over(&inst, &out, BinId(0), &w), rat(5, 4));
        assert_eq!(level_at(&inst, &out, BinId(0), rat(0, 1)), rat(1, 2));
        assert_eq!(level_at(&inst, &out, BinId(0), rat(1, 1)), rat(3, 4));
        assert_eq!(level_at(&inst, &out, BinId(0), rat(3, 1)), rat(1, 2));
    }

    use dbp_core::Scripted;

    /// The consolidation scenario worked out in DESIGN.md §3:
    /// µ = 2 (durations in [1, 2]); anchor bin A open on [0, 7.7)
    /// via an overlapping 0.5-chain; victim bin B receives selected
    /// smalls at t = 1, 1.2, 3.1 giving l-lengths 0.2, 1.9, 2.0 —
    /// (x₁,x₂) pair (1.9 > 2·0.2), (x₂,x₃) don't (2.0 ≤ 2·1.9).
    /// (s3 must arrive *after* t₁ + µ = 3, else the inclusive
    /// selection window (t₁, t₁+µ] would jump straight to it.)
    #[test]
    fn pairing_consolidates_geometric_runs() {
        let inst = Instance::builder()
            // Anchor chain in bin A (label 0): overlaps keep it open.
            .item(rat(1, 2), rat(0, 1), rat(2, 1)) // a1
            .item(rat(1, 2), rat(19, 10), rat(39, 10)) // a2
            .item(rat(1, 2), rat(19, 5), rat(29, 5)) // a3
            .item(rat(1, 2), rat(57, 10), rat(77, 10)) // a4
            // Victim smalls in bin B (label 1).
            .item(rat(1, 20), rat(1, 1), rat(3, 1)) // s1 @ 1
            .item(rat(1, 20), rat(6, 5), rat(16, 5)) // s2 @ 1.2
            .item(rat(1, 20), rat(31, 10), rat(51, 10)) // s3 @ 3.1
            // Duration-1 straggler in its own bin C (label 2) far
            // from the action: sets d_min = 1 so µ = 2.
            .item(rat(1, 4), rat(10, 1), rat(11, 1))
            .build()
            .unwrap();
        let mut algo = Scripted::new(vec![0, 0, 0, 0, 1, 1, 1, 2]);
        let out = Runner::new(&inst).run(&mut algo).unwrap();
        assert_eq!(out.bins_opened(), 3);
        let d = Decomposition::compute(&inst, &out);
        assert_eq!(d.mu, rat(2, 1));

        let b = &d.bins[1]; // victim
        assert_eq!(b.v, Interval::new(rat(1, 1), rat(51, 10)));
        assert_eq!(
            b.selected,
            vec![ItemId(4), ItemId(5), ItemId(6)],
            "selection order"
        );
        // x_0 empty; l-lengths 1/5, 19/10, 2.
        assert_eq!(b.subperiods[1].l.len(), rat(1, 5));
        assert_eq!(b.subperiods[2].l.len(), rat(19, 10));
        assert_eq!(b.subperiods[3].l.len(), rat(2, 1));
        assert!(b.subperiods[3].h.is_empty(), "len == d_max is not split");

        // Groups: consolidated {x1, x2} and single {x3}, supplier A.
        let groups: Vec<&LGroup> = d.groups.iter().filter(|g| g.bin == b.bin).collect();
        assert_eq!(groups.len(), 2);
        let cons = groups.iter().find(|g| g.is_consolidated()).unwrap();
        let single = groups.iter().find(|g| !g.is_consolidated()).unwrap();
        assert_eq!(cons.members, vec![1, 2]);
        assert_eq!(single.members, vec![3]);
        assert_eq!(cons.supplier, BinId(0));
        assert_eq!(single.supplier, BinId(0));

        // Supplier periods per the DESIGN.md reconstruction (µ+1 = 3):
        // consolidated: hull of [1 ± 1/15), [6/5 ± 19/30) and the
        // pair window [6/5 − 7/10, 1 + 7/10) → [1/2, 11/6);
        // single: [31/10 − 2/3, 31/10 + 2/3).
        assert_eq!(cons.supplier_period, Interval::new(rat(1, 2), rat(11, 6)));
        assert_eq!(
            single.supplier_period,
            Interval::new(rat(73, 30), rat(113, 30))
        );

        // Lemma 1 (reconstructed): |u| < (2/(µ+1))·Σ|x_l|.
        assert!(cons.supplier_period.len() < rat(2, 3) * cons.members_len(&d));
        // Lemma 2: supplier periods of the same supplier bin disjoint.
        assert!(!cons.supplier_period.overlaps(&single.supplier_period));
    }

    /// The Case-3 counterexample that pins the window constant
    /// (DESIGN.md §3): with µ = 4, an l-subperiod of length 1 ending
    /// where a length-4 l-subperiod begins (both supplied by the same
    /// long-lived bin) produces supplier windows that
    ///   * overlap under the naive `|x|/2` half-width —
    ///     `[1/2, 3/2) ∩ [0, 4) ≠ ∅` — breaking Lemma 2, but
    ///   * abut *exactly* under the reconstructed `|x|/(µ+1)` rule —
    ///     `[4/5, 6/5)` then `[6/5, 14/5)` — the tight case.
    #[test]
    fn naive_window_constant_breaks_lemma2() {
        let inst = Instance::builder()
            // Supplier chain S (label 0): open [0, 7.5).
            .item(rat(1, 2), rat(0, 1), rat(4, 1))
            .item(rat(1, 2), rat(7, 2), rat(15, 2))
            // b_g (label 1): one small, duration 1 (= d_min).
            .item(rat(3, 10), rat(1, 1), rat(2, 1))
            // b_k (label 2): one small, duration 4 (= d_max), arriving
            // exactly as b_g closes.
            .item(rat(3, 10), rat(2, 1), rat(6, 1))
            .build()
            .unwrap();
        let mut script = dbp_core::Scripted::new(vec![0, 0, 1, 2]);
        let out = Runner::new(&inst).run(&mut script).unwrap();

        let sound = Decomposition::compute_with(&inst, &out, WindowRule::MuPlusOne);
        assert_eq!(sound.mu, rat(4, 1));
        let windows: Vec<Interval> = sound.groups.iter().map(|g| g.supplier_period).collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0], Interval::new(rat(4, 5), rat(6, 5)));
        assert_eq!(windows[1], Interval::new(rat(6, 5), rat(14, 5)));
        assert!(!windows[0].overlaps(&windows[1]), "tight but disjoint");

        let naive = Decomposition::compute_with(&inst, &out, WindowRule::Half);
        let windows: Vec<Interval> = naive.groups.iter().map(|g| g.supplier_period).collect();
        assert_eq!(windows[0], Interval::new(rat(1, 2), rat(3, 2)));
        assert_eq!(windows[1], Interval::new(rat(0, 1), rat(4, 1)));
        assert!(
            windows[0].overlaps(&windows[1]),
            "the naive constant must break Lemma 2 here"
        );
    }
}
