//! The integer branch-and-bound bin packing kernel.
//!
//! Runs entirely on `u32` unit sizes from [`crate::units`] — no
//! `Rational` arithmetic anywhere on the search path. The pieces:
//!
//! * **Bounds.** `L1 = ⌈Σ/C⌉`, the Martello–Toth **L2** over the
//!   dual-feasible threshold family `u^(α)`, and **L3**: the maximum
//!   of L2 over subsets obtained by successively discarding the
//!   smallest item (any subset's bound lower-bounds the full set).
//! * **Incumbent.** First Fit Decreasing followed by a greedy
//!   bin-elimination local search (repeatedly try to relocate the
//!   least-loaded bin's items into the others).
//! * **Dominance.** The Martello–Toth reduction at the root: an item
//!   that fits with nothing gets a committed singleton bin; an item
//!   that can host at most one partner gets its *largest* feasible
//!   partner (swap argument). In-tree: an item exactly filling a
//!   bin's residual is committed there; equal-size items are placed
//!   in non-decreasing bin order; bins with equal residuals are
//!   branched once per residual class.
//! * **Search.** Depth-first over items in decreasing size, children
//!   ordered best-fit-first (tightest feasible residual first — the
//!   "best-first" half of the hybrid: promising completions surface
//!   early while memory stays O(depth)), pruned by
//!   `bins + ⌈(remaining − usable gap)/C⌉ ≥ incumbent`, where usable
//!   gap counts only residuals that still fit the smallest remaining
//!   item.
//! * **Budget + warm start.** A node budget turns the solver into an
//!   anytime bracket `[lower, upper]`; a warm-start packing (the
//!   previous event interval's solution, see [`crate::optimal`])
//!   seeds the incumbent, and a floor (its lower bound carried across
//!   the ±1 temporal-coherence delta) lets the search stop the moment
//!   the incumbent is provably optimal — usually before any node is
//!   expanded.

/// Result of a (possibly budget-limited) solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbOutcome {
    /// Certified lower bound on the optimal bin count.
    pub lower: usize,
    /// Achieved bin count (the incumbent packing's size).
    pub upper: usize,
    /// The incumbent packing: unit sizes per bin (sums ≤ capacity).
    pub packing: Vec<Vec<u32>>,
    /// Search nodes expanded.
    pub nodes: u64,
}

impl BbOutcome {
    /// `true` iff the optimum is certified (`lower == upper`).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// `⌈a / c⌉` for `c > 0`.
#[inline]
fn ceil_div(a: u64, c: u64) -> usize {
    (a.div_ceil(c)) as usize
}

/// The continuous bound `L1 = ⌈Σ units / capacity⌉`.
pub fn lower_bound_l1_units(units: &[u32], capacity: u32) -> usize {
    let total: u64 = units.iter().map(|&u| u as u64).sum();
    ceil_div(total, capacity as u64)
}

/// Martello–Toth `L2` on units (sorted decreasing input).
///
/// For each threshold `α` from the distinct sizes `≤ C/2` (plus 0),
/// applies the dual-feasible function `u^(α)`: items `> C − α` fill a
/// bin alone, items in `(C/2, C − α]` keep their size and spare
/// capacity, items in `[α, C/2]` count as volume overflowing into the
/// spare capacity. Matches [`crate::solver::lower_bound_l2`] value
/// for value on compiled multisets.
pub fn lower_bound_l2_units(units_desc: &[u32], capacity: u32) -> usize {
    let cap = capacity as u64;
    let l1 = lower_bound_l1_units(units_desc, capacity);
    let mut best = l1.max(usize::from(!units_desc.is_empty()));

    // α = 0 plus the distinct sizes with 2s ≤ C, scanned from the
    // already-sorted tail.
    let mut alphas: Vec<u64> = units_desc
        .iter()
        .map(|&u| u as u64)
        .filter(|&u| 2 * u <= cap)
        .collect();
    alphas.dedup();
    alphas.push(0);

    for &alpha in &alphas {
        let one_minus_alpha = cap - alpha;
        let mut n12 = 0usize;
        let mut free_j2 = 0u64;
        let mut vol_j3 = 0u64;
        for &u in units_desc {
            let s = u as u64;
            if 2 * s > cap {
                n12 += 1;
                if s <= one_minus_alpha {
                    free_j2 += cap - s;
                }
            } else if s >= alpha {
                vol_j3 += s;
            }
        }
        let extra = if vol_j3 > free_j2 {
            ceil_div(vol_j3 - free_j2, cap)
        } else {
            0
        };
        best = best.max(n12 + extra);
    }
    best
}

/// How many smallest-item truncations `L3` tries: each retry costs a
/// full L2 sweep, and the bound gains taper quickly.
const L3_TRUNCATIONS: usize = 24;

/// Martello–Toth `L3`: the maximum of [`lower_bound_l2_units`] over
/// the full set and its prefixes with the `1..=L3_TRUNCATIONS`
/// smallest items discarded (a subset's optimum never exceeds the
/// full set's, so every prefix bound is valid for the whole).
pub fn lower_bound_l3_units(units_desc: &[u32], capacity: u32) -> usize {
    let mut best = lower_bound_l2_units(units_desc, capacity);
    let n = units_desc.len();
    for cut in 1..=L3_TRUNCATIONS.min(n.saturating_sub(1)) {
        best = best.max(lower_bound_l2_units(&units_desc[..n - cut], capacity));
    }
    best
}

/// First Fit Decreasing, returning the packing (sorted-decreasing
/// input).
pub fn ffd_pack(units_desc: &[u32], capacity: u32) -> Vec<Vec<u32>> {
    let mut levels: Vec<u32> = Vec::new();
    let mut bins: Vec<Vec<u32>> = Vec::new();
    for &u in units_desc {
        match levels.iter().position(|&l| l + u <= capacity) {
            Some(b) => {
                levels[b] += u;
                bins[b].push(u);
            }
            None => {
                levels.push(u);
                bins.push(vec![u]);
            }
        }
    }
    bins
}

/// Greedy bin-elimination local search: repeatedly try to empty the
/// least-loaded bin by relocating its items (largest first) into the
/// spare capacity of the others. Stops at the first bin it cannot
/// dissolve. Improves FFD on the "one straggler bin" shapes event
/// profiles produce after departures.
pub fn improve_pack(bins: &mut Vec<Vec<u32>>, capacity: u32) {
    loop {
        if bins.len() <= 1 {
            return;
        }
        let levels: Vec<u64> = bins
            .iter()
            .map(|b| b.iter().map(|&u| u as u64).sum())
            .collect();
        let victim = levels
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| *l)
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut items = bins[victim].clone();
        items.sort_unstable_by(|a, b| b.cmp(a));
        let mut trial: Vec<u64> = levels.clone();
        trial.remove(victim);
        let mut moves: Vec<(usize, u32)> = Vec::with_capacity(items.len());
        let mut ok = true;
        for &u in &items {
            match trial.iter().position(|&l| l + u as u64 <= capacity as u64) {
                Some(b) => {
                    trial[b] += u as u64;
                    moves.push((b, u));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            return;
        }
        bins.remove(victim);
        for (b, u) in moves {
            bins[b].push(u);
        }
    }
}

/// The Martello–Toth dominance reduction. Returns committed bins and
/// the remaining (still sorted-decreasing) items;
/// `OPT(input) = committed.len() + OPT(remaining)` exactly.
///
/// Two rules, applied to the largest remaining item `a`:
/// * `a` fits with nothing (`a + smallest > C`) → `a` alone;
/// * `a` can host at most one partner (`a + s₁ + s₂ > C` for the two
///   smallest others) → pair `a` with its *largest* feasible partner
///   (if the optimum paired `a` with a smaller `c` and placed `b`
///   elsewhere, swapping `b` and `c` stays feasible since `c ≤ b` and
///   `b`'s new bin frees at least `b − c`).
fn reduce(units_desc: &[u32], capacity: u32) -> (Vec<Vec<u32>>, Vec<u32>) {
    let mut rest: Vec<u32> = units_desc.to_vec();
    let mut committed: Vec<Vec<u32>> = Vec::new();
    loop {
        let n = rest.len();
        if n == 0 {
            break;
        }
        let a = rest[0] as u64;
        if n == 1 {
            committed.push(vec![rest[0]]);
            rest.clear();
            break;
        }
        let s1 = rest[n - 1] as u64; // smallest
        let cap = capacity as u64;
        if a + s1 > cap {
            committed.push(vec![rest[0]]);
            rest.remove(0);
            continue;
        }
        let s2 = rest[n - 2] as u64; // second smallest
        if n == 2 || a + s1 + s2 > cap {
            // Largest feasible partner: first index (largest value)
            // after `a` whose size fits alongside it.
            let partner = (1..n)
                .find(|&i| a + rest[i] as u64 <= cap)
                .expect("the smallest item fits");
            committed.push(vec![rest[0], rest[partner]]);
            rest.remove(partner);
            rest.remove(0);
            continue;
        }
        break;
    }
    (committed, rest)
}

/// DFS state over the post-reduction items.
struct Dfs<'a> {
    sizes: &'a [u32],
    cap: u32,
    /// `suffix[i] = Σ_{j ≥ i} sizes[j]`.
    suffix: Vec<u64>,
    levels: Vec<u32>,
    contents: Vec<Vec<u32>>,
    /// Bin index each placed item went to (equal-item ordering rule).
    placed: Vec<usize>,
    best: usize,
    best_pack: Vec<Vec<u32>>,
    improved: bool,
    floor: usize,
    nodes: u64,
    budget: u64,
    truncated: bool,
}

impl Dfs<'_> {
    fn run(&mut self) {
        self.dfs(0);
    }

    fn dfs(&mut self, idx: usize) {
        if self.truncated || self.best <= self.floor {
            return;
        }
        if idx == self.sizes.len() {
            // Pruning guarantees levels.len() < best here.
            self.best = self.levels.len();
            self.best_pack = self.contents.clone();
            self.improved = true;
            return;
        }
        self.nodes += 1;
        if self.nodes >= self.budget {
            self.truncated = true;
            return;
        }

        // Volume prune with unusable-residual accounting: residuals
        // smaller than the smallest remaining item are dead space.
        let smallest = *self.sizes.last().expect("non-empty") as u64;
        let remaining = self.suffix[idx];
        let usable: u64 = self
            .levels
            .iter()
            .map(|&l| (self.cap - l) as u64)
            .filter(|&gap| gap >= smallest)
            .sum();
        let need = if remaining > usable {
            ceil_div(remaining - usable, self.cap as u64)
        } else {
            0
        };
        if self.levels.len() + need >= self.best {
            return;
        }

        let s = self.sizes[idx];
        // Equal items are placed in non-decreasing bin order: a
        // permutation of equal sizes is the same packing.
        let min_bin = if idx > 0 && self.sizes[idx - 1] == s {
            self.placed[idx - 1]
        } else {
            0
        };

        // Perfect-fit dominance: an exactly-filling placement of the
        // largest unplaced item is always extendable to an optimum
        // (whatever set fills that residual instead has total ≤ s and
        // fits where s went).
        if let Some(b) = (min_bin..self.levels.len()).find(|&b| self.cap - self.levels[b] == s) {
            self.place(idx, b);
            self.dfs(idx + 1);
            self.unplace(idx, b);
            return;
        }

        // Feasible bins, one per residual class, tightest residual
        // first (best-fit child order).
        let mut candidates: Vec<(u32, usize)> = Vec::with_capacity(self.levels.len());
        for b in min_bin..self.levels.len() {
            let gap = self.cap - self.levels[b];
            if gap >= s && !candidates.iter().any(|&(g, _)| g == gap) {
                candidates.push((gap, b));
            }
        }
        candidates.sort_unstable();
        for &(_, b) in &candidates {
            self.place(idx, b);
            self.dfs(idx + 1);
            self.unplace(idx, b);
            if self.truncated || self.best <= self.floor {
                return;
            }
        }

        // A fresh bin.
        if self.levels.len() + 1 < self.best {
            self.levels.push(s);
            self.contents.push(vec![s]);
            self.placed[idx] = self.levels.len() - 1;
            self.dfs(idx + 1);
            self.levels.pop();
            self.contents.pop();
        }
    }

    #[inline]
    fn place(&mut self, idx: usize, b: usize) {
        self.levels[b] += self.sizes[idx];
        self.contents[b].push(self.sizes[idx]);
        self.placed[idx] = b;
    }

    #[inline]
    fn unplace(&mut self, idx: usize, b: usize) {
        self.levels[b] -= self.sizes[idx];
        self.contents[b].pop();
    }
}

/// Validates a warm-start packing: bin sums within capacity and the
/// item multiset equal to `units_desc`.
fn warm_is_valid(warm: &[Vec<u32>], units_desc: &[u32], capacity: u32) -> bool {
    let mut flat: Vec<u32> = Vec::with_capacity(units_desc.len());
    for bin in warm {
        let sum: u64 = bin.iter().map(|&u| u as u64).sum();
        if sum > capacity as u64 || bin.is_empty() {
            return false;
        }
        flat.extend_from_slice(bin);
    }
    flat.sort_unstable_by(|a, b| b.cmp(a));
    flat == units_desc
}

/// Solves (or brackets) min-bins for a sorted-decreasing unit
/// multiset.
///
/// * `warm` — an optional packing of exactly these items used as the
///   starting incumbent (e.g. the previous event interval's optimum
///   patched by one arrival/departure);
/// * `floor` — an external lower bound on the optimum (0 if none);
///   the solve certifies as soon as incumbent = max(floor, L3);
/// * `budget` — node expansion budget; on exhaustion the result is
///   the anytime bracket `[lower, incumbent]`.
pub fn pack(
    units_desc: &[u32],
    capacity: u32,
    warm: Option<&[Vec<u32>]>,
    floor: usize,
    budget: u64,
) -> BbOutcome {
    debug_assert!(units_desc.windows(2).all(|w| w[0] >= w[1]));
    debug_assert!(units_desc.iter().all(|&u| u > 0 && u <= capacity));
    if units_desc.is_empty() {
        return BbOutcome {
            lower: 0,
            upper: 0,
            packing: Vec::new(),
            nodes: 0,
        };
    }

    // Incumbent: FFD + local search, or the warm packing if better.
    let mut incumbent = ffd_pack(units_desc, capacity);
    improve_pack(&mut incumbent, capacity);
    if let Some(w) = warm {
        if w.len() < incumbent.len() && warm_is_valid(w, units_desc, capacity) {
            incumbent = w.to_vec();
        }
    }

    let lower = floor.max(lower_bound_l3_units(units_desc, capacity));
    debug_assert!(
        lower <= incumbent.len(),
        "floor {lower} above incumbent {}",
        incumbent.len()
    );
    if incumbent.len() <= lower {
        return BbOutcome {
            lower: incumbent.len(),
            upper: incumbent.len(),
            packing: incumbent,
            nodes: 0,
        };
    }

    // Root dominance reduction, then search the remainder.
    let (committed, rest) = reduce(units_desc, capacity);
    let k = committed.len();
    let lower = if rest.is_empty() {
        // Reduction solved everything: OPT = k exactly.
        let packing = if k < incumbent.len() {
            committed
        } else {
            incumbent
        };
        return BbOutcome {
            lower: k,
            upper: k,
            packing,
            nodes: 0,
        };
    } else if k > 0 {
        lower.max(k + lower_bound_l2_units(&rest, capacity))
    } else {
        lower
    };
    if incumbent.len() <= lower {
        return BbOutcome {
            lower: incumbent.len(),
            upper: incumbent.len(),
            packing: incumbent,
            nodes: 0,
        };
    }

    let mut dfs = Dfs {
        sizes: &rest,
        cap: capacity,
        suffix: {
            let mut s = vec![0u64; rest.len() + 1];
            for i in (0..rest.len()).rev() {
                s[i] = s[i + 1] + rest[i] as u64;
            }
            s
        },
        levels: Vec::new(),
        contents: Vec::new(),
        placed: vec![0; rest.len()],
        best: incumbent.len() - k,
        best_pack: Vec::new(),
        improved: false,
        floor: lower.saturating_sub(k),
        nodes: 0,
        budget,
        truncated: false,
    };
    dfs.run();

    let (upper, packing) = if dfs.improved {
        let mut p = committed;
        p.extend(dfs.best_pack.clone());
        (k + dfs.best, p)
    } else {
        (incumbent.len(), incumbent)
    };
    let lower = if dfs.truncated { lower } else { upper };
    BbOutcome {
        lower,
        upper,
        packing,
        nodes: dfs.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(units: &mut [u32], cap: u32) -> BbOutcome {
        units.sort_unstable_by(|a, b| b.cmp(a));
        pack(units, cap, None, 0, u64::MAX)
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(pack(&[], 10, None, 0, u64::MAX).upper, 0);
        let out = solve(&mut [10, 10, 10], 10);
        assert!(out.is_exact());
        assert_eq!(out.upper, 3);
    }

    #[test]
    fn perfect_pairs_pack() {
        let out = solve(&mut [6, 4, 5, 5], 10);
        assert!(out.is_exact());
        assert_eq!(out.upper, 2);
        assert_eq!(out.packing.len(), 2);
        for bin in &out.packing {
            assert!(bin.iter().map(|&u| u as u64).sum::<u64>() <= 10);
        }
    }

    #[test]
    fn ffd_suboptimal_instance_is_beaten() {
        // FFD on {44, 26, 25, 25, 25, 24, 11} with C=60:
        // [44+11][26+25][25+24][25] = 4 bins; OPT = 3:
        // [44+11 … wait [26+25+… ]; exact kernel must find 3:
        // {44, 11} only pairs with ≤16 → [44,11][26,25,…] check:
        // 26+25+… ≤ 60: 26+25=51(+24? 75 no) … OPT really is 3:
        // [44+11=55][25+25+… hmm 25+25+26=76 no]. Verify against L1:
        // Σ = 180, C=60 → L1 = 3; achievable: [44+11][26+25+… no].
        // Rely on the solver + sandwich instead of hand-counting.
        let mut units = vec![44, 26, 25, 25, 25, 24, 11];
        let out = solve(&mut units, 60);
        assert!(out.is_exact());
        assert!(out.upper >= lower_bound_l1_units(&units, 60));
        assert!(out.upper <= ffd_pack(&units, 60).len());
    }

    #[test]
    fn l2_l3_bounds_are_ordered_and_valid() {
        let mut units = vec![30, 30, 30, 15, 15, 15, 15, 7, 7];
        units.sort_unstable_by(|a, b| b.cmp(a));
        let l1 = lower_bound_l1_units(&units, 50);
        let l2 = lower_bound_l2_units(&units, 50);
        let l3 = lower_bound_l3_units(&units, 50);
        assert!(l1 <= l2 && l2 <= l3);
        let out = pack(&units, 50, None, 0, u64::MAX);
        assert!(out.is_exact());
        assert!(l3 <= out.upper);
    }

    #[test]
    fn l3_beats_l2_on_padded_instances() {
        // Three 3/5-items force 3 bins, but a dust of tiny items pads
        // total volume so L2's overflow term rounds away unless the
        // dust is truncated — exactly L3's trick.
        let mut units = vec![52, 52, 52];
        units.extend([2u32; 10]);
        units.sort_unstable_by(|a, b| b.cmp(a));
        let l2 = lower_bound_l2_units(&units, 100);
        let l3 = lower_bound_l3_units(&units, 100);
        assert!(l3 >= l2);
        assert_eq!(l3, 3);
    }

    #[test]
    fn reduction_commits_loners_and_pairs() {
        // 9 fits with nothing (9+2 > 10); 8 can host at most one item
        // and pairs with the largest fitting (2).
        let (committed, rest) = reduce(&[9, 8, 2, 2], 10);
        assert_eq!(committed, vec![vec![9], vec![8, 2], vec![2]]);
        assert!(rest.is_empty());
    }

    #[test]
    fn budget_truncation_yields_valid_bracket() {
        // A Triplet-ish hard instance: budget 1 forces a bracket.
        let mut units: Vec<u32> = (1..=18).map(|i| 20 + (i * 7) % 23).collect();
        units.sort_unstable_by(|a, b| b.cmp(a));
        let full = pack(&units, 100, None, 0, u64::MAX);
        assert!(full.is_exact());
        let cut = pack(&units, 100, None, 0, 1);
        assert!(cut.lower <= full.upper && full.upper <= cut.upper);
    }

    #[test]
    fn warm_start_is_used_and_floor_short_circuits() {
        let mut units = vec![6, 6, 4, 4];
        units.sort_unstable_by(|a, b| b.cmp(a));
        // Optimal warm packing + matching floor: zero nodes expanded.
        let warm = vec![vec![6, 4], vec![6, 4]];
        let out = pack(&units, 10, Some(&warm), 2, u64::MAX);
        assert!(out.is_exact());
        assert_eq!(out.upper, 2);
        assert_eq!(out.nodes, 0);
        // An invalid warm packing is ignored, result still exact.
        let bad = vec![vec![6, 6]];
        let out = pack(&units, 10, Some(&bad), 0, u64::MAX);
        assert!(out.is_exact());
        assert_eq!(out.upper, 2);
    }

    #[test]
    fn packing_always_matches_the_upper_count() {
        for (units, cap) in [
            (vec![7u32, 5, 4, 3, 3, 2, 2, 1], 10u32),
            (vec![9, 9, 9, 1, 1, 1], 10),
            (vec![5, 5, 5, 5, 5], 10),
        ] {
            let mut u = units.clone();
            u.sort_unstable_by(|a, b| b.cmp(a));
            let out = pack(&u, cap, None, 0, u64::MAX);
            assert_eq!(out.packing.len(), out.upper);
            let mut flat: Vec<u32> = out.packing.iter().flatten().copied().collect();
            flat.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(flat, u, "packing conserves the multiset");
        }
    }
}
