//! The Theorem 1 inequality chain, step by step on a concrete
//! instance.
//!
//! §VII.D assembles the final bound from the machinery:
//!
//! ```text
//! FF_total = Σ|V_k| + Σ|W_k|                                (§IV)
//!          = Σ_x Σ|x_l| + Σ_y |y| + span(R)                 (§V split, Σ|W| = span)
//!          ≤ Σ_x (Σ|x_l| + |u(x)|) + Σ_y |y| + span(R)      (add supplier periods)
//!          ≤ (µ+3)·[Σ_x d(x ∪ u(x)) + Σ_y d(y)] + span(R)   (amortized level ≥ 1/(µ+3))
//!          ≤ (µ+3)·d(S) + span(R)    where S = ⋃(x ∪ u(x) ∪ y)  (double-count elimination)
//!          ≤ (µ+3)·vol(R) + span(R)                         (d ≤ vol)
//!          ≤ (µ+4)·OPT_total(R)                             (Propositions 1–2)
//! ```
//!
//! [`TheoremChain::compute`] evaluates every line in exact
//! arithmetic, so a run renders the proof *numerically instantiated*
//! for the given instance — useful both as a teaching artifact and as
//! the sharpest possible regression test of the reconstruction.

use crate::decomposition::{demand_over, Decomposition};
use dbp_core::{FirstFit, Instance, PackingOutcome};
use dbp_numeric::{IntervalSet, Rational};
use std::fmt;

/// One line of the chain: `lhs relation rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// Human-readable statement.
    pub label: &'static str,
    /// Left-hand value.
    pub lhs: Rational,
    /// Right-hand value.
    pub rhs: Rational,
    /// `"="` or `"≤"`.
    pub relation: &'static str,
    /// Whether the relation holds.
    pub holds: bool,
}

/// The evaluated chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremChain {
    /// Instance µ.
    pub mu: Rational,
    /// `FF_total(R)`.
    pub ff_total: Rational,
    /// All steps in order.
    pub steps: Vec<ChainStep>,
}

impl TheoremChain {
    /// Runs First Fit and evaluates the chain.
    ///
    /// # Panics
    /// Panics on an empty instance.
    pub fn compute(instance: &Instance) -> TheoremChain {
        let outcome = dbp_core::Runner::new(instance)
            .run(&mut FirstFit::new())
            .expect("First Fit succeeds on valid instances");
        TheoremChain::compute_for(instance, &outcome)
    }

    /// Evaluates the chain for a given (First Fit) outcome.
    pub fn compute_for(instance: &Instance, outcome: &PackingOutcome) -> TheoremChain {
        let d = Decomposition::compute(instance, outcome);
        let mu = d.mu;
        let mu3 = mu + Rational::from_int(3);
        let ff_total = outcome.total_usage();
        let span = instance.span();
        let vol = instance.vol();

        // Split sums.
        let sum_v = d.total_v();
        let sum_w = d.total_w();
        let sum_l: Rational = d.groups.iter().map(|g| g.members_len(&d)).sum();
        let sum_h: Rational = d.h_intervals().iter().map(|(_, y)| y.len()).sum();
        let sum_u: Rational = d.groups.iter().map(|g| g.supplier_period.len()).sum();

        // Component demands (with multiplicity).
        let mut d_groups = Rational::ZERO;
        for g in &d.groups {
            let bin = &d.bins[g.bin_idx];
            for &m in &g.members {
                d_groups += demand_over(instance, outcome, g.bin, &bin.subperiods[m].l);
            }
            d_groups += demand_over(instance, outcome, g.supplier, &g.supplier_period);
        }
        let mut d_h = Rational::ZERO;
        for (k, y) in d.h_intervals() {
            d_h += demand_over(instance, outcome, d.bins[k].bin, &y);
        }

        // Union demand (no double counting): measure each item's
        // activity against the union set S.
        let mut union_parts = Vec::new();
        for g in &d.groups {
            union_parts.push(g.supplier_period);
            for &m in &g.members {
                union_parts.push(d.bins[g.bin_idx].subperiods[m].l);
            }
        }
        for (_, y) in d.h_intervals() {
            union_parts.push(y);
        }
        let union_set = IntervalSet::from_intervals(union_parts);
        let d_union: Rational = instance
            .items()
            .iter()
            .map(|r| r.size * union_set.overlap_len(&r.interval))
            .sum();

        let mut steps = Vec::new();
        let mut push = |label, lhs: Rational, rhs: Rational, relation: &'static str| {
            let holds = match relation {
                "=" => lhs == rhs,
                _ => lhs <= rhs,
            };
            steps.push(ChainStep {
                label,
                lhs,
                rhs,
                relation,
                holds,
            });
        };

        push("FF_total = Σ|V_k| + Σ|W_k|", ff_total, sum_v + sum_w, "=");
        push("Σ|W_k| = span(R)", sum_w, span, "=");
        push("Σ|V_k| = Σ|x_l| + Σ|y|", sum_v, sum_l + sum_h, "=");
        push(
            "Σ|x_l| + Σ|y| ≤ Σ(|x_l|+|u|) + Σ|y|",
            sum_l + sum_h,
            sum_l + sum_u + sum_h,
            "≤",
        );
        push(
            "Σ(|x_l|+|u|) + Σ|y| ≤ (µ+3)·[Σd(x∪u) + Σd(y)]",
            sum_l + sum_u + sum_h,
            mu3 * (d_groups + d_h),
            "≤",
        );
        push(
            "Σ|x_l| + Σ|y| + Σ|u| ≤ (µ+3)·d(S)  [dedup]",
            sum_l + sum_u + sum_h,
            mu3 * d_union,
            "≤",
        );
        push("d(S) ≤ vol(R)", d_union, vol, "≤");
        push(
            "FF_total ≤ (µ+3)·vol + span",
            ff_total,
            mu3 * vol + span,
            "≤",
        );
        push(
            "FF_total ≤ (µ+4)·max(vol, span)",
            ff_total,
            (mu + Rational::from_int(4)) * vol.max(span),
            "≤",
        );

        TheoremChain {
            mu,
            ff_total,
            steps,
        }
    }

    /// `true` iff every step holds.
    pub fn holds(&self) -> bool {
        self.steps.iter().all(|s| s.holds)
    }
}

impl fmt::Display for TheoremChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Theorem 1 chain (µ = {}, FF_total = {}):",
            self.mu, self.ff_total
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "  [{}] {:<48} {} {} {}",
                if s.holds { "ok" } else { "!!" },
                s.label,
                s.lhs,
                s.relation,
                s.rhs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn chain_holds_on_mixed_instance() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(3, 1))
            .item(rat(1, 3), rat(1, 1), rat(2, 1))
            .item(rat(2, 3), rat(1, 2), rat(7, 2))
            .item(rat(1, 4), rat(2, 1), rat(5, 1))
            .item(rat(3, 4), rat(3, 1), rat(6, 1))
            .build()
            .unwrap();
        let chain = TheoremChain::compute(&inst);
        assert!(chain.holds(), "{chain}");
        assert_eq!(chain.steps.len(), 9);
        // Rendering marks every line ok.
        let text = chain.to_string();
        assert!(!text.contains("!!"), "{text}");
    }

    #[test]
    fn chain_holds_on_the_gadgets() {
        // The adversarial families stress the chain hardest.
        let mut b = Instance::builder();
        for _ in 0..6 {
            b = b
                .item(rat(5, 6), rat(0, 1), rat(1, 1))
                .item(rat(1, 6), rat(0, 1), rat(5, 1));
        }
        let inst = b.build().unwrap();
        let chain = TheoremChain::compute(&inst);
        assert!(chain.holds(), "{chain}");
        // First step is an identity: FF_total really is Σ|V| + Σ|W|.
        assert_eq!(chain.steps[0].lhs, chain.steps[0].rhs);
    }

    #[test]
    fn final_step_matches_certify() {
        let inst = Instance::builder()
            .item(rat(2, 5), rat(0, 1), rat(2, 1))
            .item(rat(2, 5), rat(1, 2), rat(4, 1))
            .item(rat(3, 5), rat(1, 1), rat(3, 1))
            .build()
            .unwrap();
        let chain = TheoremChain::compute(&inst);
        let report = crate::certify_first_fit(&inst);
        assert_eq!(chain.holds(), report.all_passed());
    }
}
