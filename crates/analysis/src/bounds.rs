//! Certified lower bounds on `OPT_total(R)` (paper §III.C).
//!
//! * **Proposition 1**: `OPT_total(R) ≥ vol(R) = Σ_r s(r)·|I(r)|` —
//!   no packing can beat perfect utilization.
//! * **Proposition 2**: `OPT_total(R) ≥ span(R)` — at least one bin
//!   is open whenever an item is active.
//! * **Profile bound** (sharper, still certified): at each instant
//!   `OPT(R, t) ≥ max(⌈L(t)⌉, big(t), [L(t) > 0])` where `L(t)` is
//!   the total active size and `big(t)` the number of active items
//!   larger than `1/2`; integrating this step function lower-bounds
//!   `∫ OPT(R, t) dt` and dominates both propositions.

use dbp_core::Instance;
use dbp_numeric::Rational;
use dbp_simcore::StepIntegrator;

/// `max(vol(R), span(R))` — the paper's own combination of
/// Propositions 1 and 2 (used in the Theorem 1 chain).
pub fn opt_lower_bound(instance: &Instance) -> Rational {
    instance.vol().max(instance.span())
}

/// The integrated per-instant lower bound described at module level.
///
/// Returns the integral `∫ lb(t) dt` with
/// `lb(t) = max(⌈Σ_{active} s⌉, #{active s > 1/2}, [any active])`.
/// Always `≥ max(vol, span)`.
pub fn profile_lower_bound(instance: &Instance) -> Rational {
    lower_profile(instance).integral()
}

/// The full step-function profile of the per-instant lower bound.
pub fn lower_profile(instance: &Instance) -> StepIntegrator {
    let times = instance.event_times();
    let mut profile = StepIntegrator::new();
    for w in times.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        // The active set is constant on [lo, hi).
        let mut load = Rational::ZERO;
        let mut big = 0i128;
        let mut any = false;
        for item in instance.items() {
            if item.active_at(lo) {
                any = true;
                load += item.size;
                if item.size > Rational::HALF {
                    big += 1;
                }
            }
        }
        let lb = load.ceil().max(big).max(i128::from(any));
        profile.push_segment(lo, hi, Rational::from_int(lb));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn inst(specs: &[(i128, i128, i128, i128)]) -> Instance {
        Instance::new(
            specs
                .iter()
                .map(|&(n, d, a, dep)| (rat(n, d), rat(a, 1), rat(dep, 1)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_instance_has_zero_bounds() {
        let i = Instance::new(vec![]).unwrap();
        assert_eq!(opt_lower_bound(&i), rat(0, 1));
        assert_eq!(profile_lower_bound(&i), rat(0, 1));
    }

    #[test]
    fn span_dominates_for_sparse_items() {
        // One tiny item active for 10: vol = 1/10·10 = 1, span = 10.
        let i = inst(&[(1, 10, 0, 10)]);
        assert_eq!(i.vol(), rat(1, 1));
        assert_eq!(i.span(), rat(10, 1));
        assert_eq!(opt_lower_bound(&i), rat(10, 1));
        assert_eq!(profile_lower_bound(&i), rat(10, 1));
    }

    #[test]
    fn vol_dominates_for_dense_items() {
        // Four size-1 items on [0,1): vol = 4, span = 1.
        let i = inst(&[(1, 1, 0, 1), (1, 1, 0, 1), (1, 1, 0, 1), (1, 1, 0, 1)]);
        assert_eq!(opt_lower_bound(&i), rat(4, 1));
        assert_eq!(profile_lower_bound(&i), rat(4, 1));
    }

    #[test]
    fn profile_bound_beats_both_propositions() {
        // Phase A [0,1): four size-1 items (needs 4 bins).
        // Phase B [1,9): one item of size 1/10 (needs 1 bin).
        // vol = 4 + 0.8 = 4.8; span = 9;
        // profile = 4·1 + 1·8 = 12 > max(vol, span).
        let i = inst(&[
            (1, 1, 0, 1),
            (1, 1, 0, 1),
            (1, 1, 0, 1),
            (1, 1, 0, 1),
            (1, 10, 1, 9),
        ]);
        assert_eq!(opt_lower_bound(&i), rat(9, 1));
        assert_eq!(profile_lower_bound(&i), rat(12, 1));
    }

    #[test]
    fn big_item_count_matters() {
        // Two items of 3/5 on [0,1): load = 1.2, ceil = 2, big = 2.
        // Three items of 3/5 on [2,3): ceil(1.8) = 2 but big = 3.
        let i = inst(&[
            (3, 5, 0, 1),
            (3, 5, 0, 1),
            (3, 5, 2, 3),
            (3, 5, 2, 3),
            (3, 5, 2, 3),
        ]);
        assert_eq!(profile_lower_bound(&i), rat(2 + 3, 1));
    }

    #[test]
    fn profile_respects_gaps() {
        let i = inst(&[(1, 2, 0, 1), (1, 2, 5, 6)]);
        assert_eq!(profile_lower_bound(&i), rat(2, 1));
        assert_eq!(lower_profile(&i).positive_measure(), rat(2, 1));
    }
}
