//! Competitive-ratio measurement of concrete packings.
//!
//! The competitive ratio of an algorithm is the supremum of
//! `ALG_total(R) / OPT_total(R)` over instances (§III.C). On a
//! concrete instance we can measure the achieved ratio against the
//! exact adversary, or — when exact solving is out of reach — report
//! certified pessimistic/optimistic ratios against the adversary
//! bracket.

use crate::optimal::{opt_total, OptConfig, OptTotal};
use crate::solver::ExactBinPacking;
use dbp_core::{Instance, PackingOutcome};
use dbp_numeric::Rational;
use serde::Serialize;

/// The measured performance of one packing on one instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RatioReport {
    /// Algorithm name.
    pub algorithm: String,
    /// The achieved objective `ALG_total(R)`.
    pub cost: Rational,
    /// Adversary cost (exact or bracket).
    pub opt_lower: Rational,
    /// Adversary upper bound.
    pub opt_upper: Rational,
    /// Instance duration ratio `µ` (`None` for empty instances).
    pub mu: Option<Rational>,
    /// `cost / opt_upper` — a certified LOWER bound on the achieved
    /// ratio. `None` for zero-cost (empty) instances.
    pub ratio_lower: Option<Rational>,
    /// `cost / opt_lower` — a certified UPPER bound on the achieved
    /// ratio (equals the exact ratio when the adversary is exact).
    pub ratio_upper: Option<Rational>,
}

impl RatioReport {
    /// The exact achieved ratio, when the adversary was exact.
    pub fn exact_ratio(&self) -> Option<Rational> {
        (self.opt_lower == self.opt_upper)
            .then_some(self.ratio_upper)
            .flatten()
    }

    /// The paper's Theorem 1 bound `µ + 4` for this instance.
    pub fn theorem1_bound(&self) -> Option<Rational> {
        self.mu.map(|mu| mu + Rational::from_int(4))
    }

    /// `true` iff the measured ratio is consistent with Theorem 1
    /// (always expected for First Fit).
    pub fn within_theorem1(&self) -> bool {
        match (self.ratio_upper, self.theorem1_bound()) {
            // Compare the certified ratio upper bound only when the
            // adversary is exact; otherwise use the optimistic side
            // (cost / opt_upper), which is a true lower bound on the
            // achieved ratio and must *also* respect the theorem.
            (Some(_), Some(bound)) => match self.exact_ratio() {
                Some(r) => r <= bound,
                None => self.ratio_lower.map(|r| r <= bound).unwrap_or(true),
            },
            _ => true,
        }
    }
}

/// Measures a packing outcome against the adversary with the given
/// configuration.
pub fn measure_ratio_with(
    instance: &Instance,
    outcome: &PackingOutcome,
    solver: &ExactBinPacking,
    config: OptConfig,
) -> RatioReport {
    let OptTotal { lower, upper } = opt_total(instance, solver, config);
    let cost = outcome.total_usage();
    let ratio_upper = (!lower.is_zero()).then(|| cost / lower);
    let ratio_lower = (!upper.is_zero()).then(|| cost / upper);
    RatioReport {
        algorithm: outcome.algorithm().to_string(),
        cost,
        opt_lower: lower,
        opt_upper: upper,
        mu: instance.mu(),
        ratio_lower,
        ratio_upper,
    }
}

/// Measures with a fresh solver and default configuration.
pub fn measure_ratio(instance: &Instance, outcome: &PackingOutcome) -> RatioReport {
    measure_ratio_with(
        instance,
        outcome,
        &ExactBinPacking::new(),
        OptConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;

    #[test]
    fn first_fit_on_friendly_instance_is_optimal() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        assert_eq!(rep.exact_ratio(), Some(rat(1, 1)));
        assert!(rep.within_theorem1());
        assert_eq!(rep.cost, rat(2, 1));
        assert_eq!(rep.opt_lower, rat(2, 1));
    }

    #[test]
    fn next_fit_pays_on_the_pair_gadget() {
        // §VIII, n = 4, µ = 3: NF cost = n·µ = 12; OPT_total = 5
        // (see optimal.rs::section8_optimal_cost).
        let n = 4i128;
        let mu = 3i128;
        let mut b = Instance::builder();
        for _ in 0..n {
            b = b
                .item(rat(1, 2), rat(0, 1), rat(1, 1))
                .item(rat(1, n), rat(0, 1), rat(mu, 1));
        }
        let inst = b.build().unwrap();
        let out = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        assert_eq!(rep.cost, rat(12, 1));
        assert_eq!(rep.exact_ratio(), Some(rat(12, 5)));
        assert_eq!(rep.mu, Some(rat(3, 1)));
    }

    #[test]
    fn empty_instance_has_no_ratio() {
        let inst = Instance::new(vec![]).unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let rep = measure_ratio(&inst, &out);
        assert_eq!(rep.ratio_upper, None);
        assert!(rep.within_theorem1());
    }

    #[test]
    fn bracket_ratios_sandwich_exact() {
        let specs: Vec<_> = (0..6)
            .map(|k| (rat(2, 5), rat(k, 1), rat(k + 3, 1)))
            .collect();
        let inst = Instance::new(specs).unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let solver = ExactBinPacking::new();
        let exact = measure_ratio_with(&inst, &out, &solver, OptConfig::default());
        let capped = measure_ratio_with(&inst, &out, &solver, OptConfig::with_max_exact(2));
        let e = exact.exact_ratio().unwrap();
        assert!(capped.ratio_lower.unwrap() <= e);
        assert!(capped.ratio_upper.unwrap() >= e);
    }
}
