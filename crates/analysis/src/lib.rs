#![warn(missing_docs)]

//! # `dbp-analysis` — the offline adversary and the proof machinery
//!
//! Everything needed to *evaluate* an online packing against the
//! paper's yardsticks:
//!
//! * [`solver`] — an exact branch-and-bound solver for classical bin
//!   packing (`OPT(R, t)` is a bin packing instance at each time
//!   point), front-ending the integer kernel with a lock-sharded,
//!   grid-canonical memo.
//! * [`units`] — tick-compilation of size multisets to `u32` units on
//!   the denominator-LCM grid, and the gcd-canonical memo key.
//! * [`bb`] — the integer branch-and-bound kernel: Martello–Toth
//!   L2/L3 dual-feasible bounds, dominance reduction, FFD +
//!   local-search incumbent, budgeted best-fit-ordered DFS with warm
//!   starts.
//! * [`optimal`] — the offline adversary with repacking:
//!   `OPT_total(R) = ∫ OPT(R, t) dt`, computed exactly via the
//!   event-interval decomposition (the profile is piecewise
//!   constant), with certified lower/upper brackets when exact
//!   solving is out of reach.
//! * [`bounds`] — Propositions 1 and 2 (`vol`, `span`) and the
//!   sharper integrable lower bound `∫ max(⌈L(t)⌉, …) dt`.
//! * [`ratio`] — competitive-ratio measurement of a packing outcome
//!   against `OPT_total` or its certified bounds.
//! * [`decomposition`] — the full §IV–§VII analysis pipeline: usage
//!   periods `U_k = V_k ∪ W_k`, small-item selection, l/h-subperiods,
//!   pairing and consolidation, supplier bins and supplier periods.
//! * [`certify`] — executable statements of Propositions 3–7,
//!   Lemmas 1–2 and the Theorem 1 inequality chain, checked on
//!   concrete instances in exact arithmetic.

pub mod bb;
pub mod bounds;
pub mod certify;
pub mod chain;
pub mod decomposition;
pub mod optimal;
pub mod ratio;
pub mod solver;
pub mod units;

pub use bb::BbOutcome;
pub use bounds::{opt_lower_bound, profile_lower_bound};
pub use certify::{certify_first_fit, certify_packing, CertReport, CheckResult};
pub use chain::{ChainStep, TheoremChain};
pub use decomposition::{BinDecomp, Decomposition, LGroup, Subperiod, WindowRule};
pub use optimal::{opt_profile, opt_total, opt_total_exact, OptConfig, OptProfile, OptTotal};
pub use ratio::{measure_ratio, measure_ratio_with, RatioReport};
pub use solver::{reference_min_bins, ExactBinPacking};
pub use units::{compile_sizes, UnitKey, UnitSizes};
