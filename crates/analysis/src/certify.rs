//! Executable certificates for the paper's propositions and lemmas.
//!
//! Each check turns a statement from §IV–§VII into an exact-arithmetic
//! assertion over a concrete instance + packing, returning structured
//! pass/fail evidence. The property-test suite runs these over
//! thousands of randomized instances; `exp_certify` (dbp-bench)
//! aggregates them into the E10 report.
//!
//! Two tiers:
//!
//! * **Structural** checks (Propositions 3–7, supplier existence,
//!   `Σ|W_k| = span`, Lemmas 1–4) hold for *any* packing, because the
//!   decomposition is defined purely from usage periods and arrivals.
//! * **First-Fit** checks (amortized level ≥ `1/(µ+3)`, the Theorem 1
//!   chain) additionally use the Any-Fit/First-Fit non-fit guarantee
//!   `s(R_k) + s(p_k) > 1` and are only claimed for First Fit.

use crate::decomposition::{demand_over, level_at, Decomposition};
use crate::optimal::{opt_total, OptConfig};
use crate::solver::ExactBinPacking;
use dbp_core::{FirstFit, Instance, PackingOutcome};
use dbp_numeric::{Interval, IntervalSet, Rational};
use std::fmt;

/// Outcome of one certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Stable identifier, e.g. `"prop5"`.
    pub name: &'static str,
    /// Human description of the statement checked.
    pub statement: &'static str,
    /// Whether the statement held (`None` = not applicable, e.g.
    /// exact OPT out of reach).
    pub passed: Option<bool>,
    /// First few violations, rendered for humans.
    pub violations: Vec<String>,
}

impl CheckResult {
    fn pass(name: &'static str, statement: &'static str) -> CheckResult {
        CheckResult {
            name,
            statement,
            passed: Some(true),
            violations: Vec::new(),
        }
    }

    fn skipped(name: &'static str, statement: &'static str) -> CheckResult {
        CheckResult {
            name,
            statement,
            passed: None,
            violations: Vec::new(),
        }
    }

    fn record(&mut self, violation: String) {
        self.passed = Some(false);
        if self.violations.len() < 5 {
            self.violations.push(violation);
        }
    }
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = match self.passed {
            Some(true) => "PASS",
            Some(false) => "FAIL",
            None => "SKIP",
        };
        write!(f, "[{status}] {}: {}", self.name, self.statement)?;
        for v in &self.violations {
            write!(f, "\n       ! {v}")?;
        }
        Ok(())
    }
}

/// A full certification report for one instance + packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertReport {
    /// Algorithm that produced the packing.
    pub algorithm: String,
    /// Instance `µ`.
    pub mu: Rational,
    /// All certificates.
    pub checks: Vec<CheckResult>,
}

impl CertReport {
    /// `true` iff no check failed (skips allowed).
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed != Some(false))
    }

    /// The failed checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.checks
            .iter()
            .filter(|c| c.passed == Some(false))
            .collect()
    }
}

impl fmt::Display for CertReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "certification of {} (µ = {}):", self.algorithm, self.mu)?;
        for c in &self.checks {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// Runs First Fit on the instance and certifies everything, including
/// the First-Fit-specific checks.
pub fn certify_first_fit(instance: &Instance) -> CertReport {
    let outcome = dbp_core::Runner::new(instance)
        .run(&mut FirstFit::new())
        .expect("First Fit never fails on a valid instance");
    certify_packing(instance, &outcome, true)
}

/// Certifies a packing. With `first_fit_specific = false`, only the
/// structural (algorithm-independent) checks are performed.
pub fn certify_packing(
    instance: &Instance,
    outcome: &PackingOutcome,
    first_fit_specific: bool,
) -> CertReport {
    let mu = instance.mu().unwrap_or(Rational::ONE);
    let mut checks = Vec::new();
    if instance.is_empty() {
        return CertReport {
            algorithm: outcome.algorithm().to_string(),
            mu,
            checks,
        };
    }
    let d = Decomposition::compute(instance, outcome);

    checks.push(check_usage_partition(instance, outcome, &d));
    checks.push(check_supplier_exists(&d));
    checks.push(check_prop3(&d));
    checks.push(check_prop4(instance, outcome, &d));
    checks.push(check_prop5(&d));
    checks.push(check_prop6(instance, outcome, &d));
    checks.push(check_prop7(&d));
    checks.push(check_lemma1(&d));
    checks.push(check_lemma2(&d));
    checks.push(check_h_demand(instance, outcome, &d));

    if first_fit_specific {
        checks.push(check_amortized_level(instance, outcome, &d));
        checks.push(check_theorem1_vol_span(instance, outcome, &d));
        checks.push(check_theorem1_opt(instance, outcome, &d));
    }

    CertReport {
        algorithm: outcome.algorithm().to_string(),
        mu,
        checks,
    }
}

/// §IV: `V_k ∪ W_k = U_k` disjointly, the `W_k` are pairwise
/// disjoint, and `Σ|W_k| = span(R)`.
fn check_usage_partition(
    instance: &Instance,
    _outcome: &PackingOutcome,
    d: &Decomposition,
) -> CheckResult {
    let mut r = CheckResult::pass(
        "usage-partition",
        "V_k ∪ W_k = U_k; W_k pairwise disjoint; Σ|W_k| = span(R)",
    );
    for b in &d.bins {
        if b.v.len() + b.w.len() != b.usage.len()
            || (!b.v.is_empty() && b.v.lo() != b.usage.lo())
            || (!b.w.is_empty() && b.w.hi() != b.usage.hi())
        {
            r.record(format!("bin {}: V={} W={} U={}", b.bin, b.v, b.w, b.usage));
        }
    }
    let ws: Vec<Interval> = d.bins.iter().map(|b| b.w).collect();
    if !IntervalSet::pairwise_disjoint(ws.iter()) {
        r.record("W_k periods intersect".to_string());
    }
    if d.total_w() != instance.span() {
        r.record(format!(
            "Σ|W| = {} ≠ span = {}",
            d.total_w(),
            instance.span()
        ));
    }
    r
}

/// §V: every l-subperiod has a supplier bin.
fn check_supplier_exists(d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass(
        "supplier-exists",
        "every l-subperiod has an earlier-opened bin open at its left endpoint",
    );
    for &(bin_idx, sub_idx) in &d.orphan_l_subperiods {
        r.record(format!(
            "bin {} subperiod {} has no supplier",
            d.bins[bin_idx].bin, sub_idx
        ));
    }
    r
}

/// Proposition 3: `|x_{l,i}| ≤ µ` (i.e. `d_max` in unnormalized
/// units).
fn check_prop3(d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass("prop3", "every l-subperiod has length ≤ d_max");
    for b in &d.bins {
        for s in b.l_subperiods() {
            if s.l.len() > d.d_max {
                r.record(format!(
                    "bin {} x_{}: |l| = {} > {}",
                    b.bin,
                    s.index,
                    s.l.len(),
                    d.d_max
                ));
            }
        }
    }
    r
}

/// Proposition 4: at the left endpoint of each l-subperiod, a new
/// small item is placed in its bin.
fn check_prop4(instance: &Instance, outcome: &PackingOutcome, d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass(
        "prop4",
        "a new small item arrives into the bin at each l-subperiod's left endpoint",
    );
    for b in &d.bins {
        for (pos, s) in b.l_subperiods().enumerate() {
            let Some(&sel) = b.selected.get(pos) else {
                r.record(format!("bin {}: missing selected item #{pos}", b.bin));
                continue;
            };
            let item = instance.item(sel);
            if item.arrival() != s.l.lo() {
                r.record(format!(
                    "bin {}: selected {} arrives at {} ≠ {}",
                    b.bin,
                    sel,
                    item.arrival(),
                    s.l.lo()
                ));
            }
            if !item.is_small() {
                r.record(format!("bin {}: selected {} is large", b.bin, sel));
            }
            if outcome.bin_of(sel) != Some(b.bin) {
                r.record(format!("bin {}: selected {} packed elsewhere", b.bin, sel));
            }
        }
    }
    r
}

/// Proposition 5: consecutive l-subperiods satisfy
/// `|x_{l,i}| + |x_{l,i+1}| > d_max`.
fn check_prop5(d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass(
        "prop5",
        "consecutive l-subperiods have combined length > d_max",
    );
    for b in &d.bins {
        let ls: Vec<&Interval> = b.l_subperiods().map(|s| &s.l).collect();
        for w in ls.windows(2) {
            if w[0].len() + w[1].len() <= d.d_max {
                r.record(format!(
                    "bin {}: |{}| + |{}| ≤ {}",
                    b.bin, w[0], w[1], d.d_max
                ));
            }
        }
    }
    r
}

/// Proposition 6: the bin level is ≥ 1/2 throughout h-subperiods.
fn check_prop6(instance: &Instance, outcome: &PackingOutcome, d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass("prop6", "bin level ≥ 1/2 throughout h-subperiods");
    for b in &d.bins {
        for s in b.h_subperiods() {
            // The level is piecewise constant, changing only at event
            // times; check the left endpoint and every event inside.
            let mut probes = vec![s.h.lo()];
            for t in instance.event_times() {
                if s.h.lo() < t && t < s.h.hi() {
                    probes.push(t);
                }
            }
            for t in probes {
                let level = level_at(instance, outcome, b.bin, t);
                if level < Rational::HALF {
                    r.record(format!(
                        "bin {} h-subperiod {}: level {} < 1/2 at t={}",
                        b.bin, s.h, level, t
                    ));
                }
            }
        }
    }
    r
}

/// Proposition 7: if two consecutive l-subperiods form a pair, the
/// intervening h-subperiod is empty.
fn check_prop7(d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass(
        "prop7",
        "paired l-subperiods have no intervening h-subperiod",
    );
    for g in &d.groups {
        if !g.is_consolidated() {
            continue;
        }
        let bin = &d.bins[g.bin_idx];
        for &m in &g.members[..g.members.len() - 1] {
            if !bin.subperiods[m].h.is_empty() {
                r.record(format!(
                    "bin {}: paired x_{} has h = {}",
                    g.bin, m, bin.subperiods[m].h
                ));
            }
        }
    }
    r
}

/// Lemma 1 (reconstructed): a consolidated supplier period is shorter
/// than `(2/(µ+1))·Σ|x_{l,k}|`; a single's equals it exactly.
fn check_lemma1(d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass(
        "lemma1",
        "supplier period length ≤ (2/(µ+1))·Σ|x_l|, strict for consolidated runs",
    );
    let factor = Rational::TWO / (d.mu + Rational::ONE);
    for g in &d.groups {
        let bound = factor * g.members_len(d);
        let len = g.supplier_period.len();
        let ok = if g.is_consolidated() {
            len < bound
        } else {
            len == bound
        };
        if !ok {
            r.record(format!(
                "group in bin {} (members {:?}): |u| = {} vs bound {}",
                g.bin, g.members, len, bound
            ));
        }
    }
    r
}

/// Lemma 2: supplier periods sharing a supplier bin are pairwise
/// disjoint.
fn check_lemma2(d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass(
        "lemma2",
        "supplier periods of the same supplier bin do not intersect",
    );
    let mut by_supplier: std::collections::BTreeMap<dbp_core::BinId, Vec<Interval>> =
        std::collections::BTreeMap::new();
    for g in &d.groups {
        by_supplier
            .entry(g.supplier)
            .or_default()
            .push(g.supplier_period);
    }
    for (supplier, periods) in by_supplier {
        if !IntervalSet::pairwise_disjoint(periods.iter()) {
            r.record(format!(
                "supplier {}: periods intersect: {:?}",
                supplier, periods
            ));
        }
    }
    r
}

/// §VII.D: the items of a bin supply demand ≥ `|y|/2` over each of
/// its h-subperiods (direct consequence of Proposition 6).
fn check_h_demand(instance: &Instance, outcome: &PackingOutcome, d: &Decomposition) -> CheckResult {
    let mut r = CheckResult::pass("h-demand", "own-bin demand over each h-subperiod ≥ |y|/2");
    for b in &d.bins {
        for s in b.h_subperiods() {
            let dem = demand_over(instance, outcome, b.bin, &s.h);
            if dem < s.h.len() * Rational::HALF {
                r.record(format!(
                    "bin {} h {}: demand {} < |y|/2 = {}",
                    b.bin,
                    s.h,
                    dem,
                    s.h.len() * Rational::HALF
                ));
            }
        }
    }
    r
}

/// §VII.A–B (First Fit): per group, own-bin demand over the member
/// l-subperiods plus supplier-bin demand over the supplier period is
/// at least `(Σ|x_l| + |u|)/(µ+3)`.
fn check_amortized_level(
    instance: &Instance,
    outcome: &PackingOutcome,
    d: &Decomposition,
) -> CheckResult {
    let mut r = CheckResult::pass(
        "amortized-level",
        "d(x ∪ u(x)) ≥ (Σ|x_l| + |u|)/(µ+3) for every single/consolidated group",
    );
    let mu_plus_3 = d.mu + Rational::from_int(3);
    for g in &d.groups {
        let bin = &d.bins[g.bin_idx];
        let mut d_own = Rational::ZERO;
        for &m in &g.members {
            d_own += demand_over(instance, outcome, g.bin, &bin.subperiods[m].l);
        }
        let d_sup = demand_over(instance, outcome, g.supplier, &g.supplier_period);
        let lhs = d_own + d_sup;
        let rhs = (g.members_len(d) + g.supplier_period.len()) / mu_plus_3;
        if lhs < rhs {
            r.record(format!(
                "group in bin {} (members {:?}): d = {} < {}",
                g.bin, g.members, lhs, rhs
            ));
        }
    }
    r
}

/// Theorem 1 workhorse inequality:
/// `FF_total(R) ≤ (µ+3)·vol(R) + span(R)`.
fn check_theorem1_vol_span(
    instance: &Instance,
    outcome: &PackingOutcome,
    d: &Decomposition,
) -> CheckResult {
    let mut r = CheckResult::pass("theorem1-vol-span", "FF_total ≤ (µ+3)·vol + span");
    let bound = (d.mu + Rational::from_int(3)) * instance.vol() + instance.span();
    if outcome.total_usage() > bound {
        r.record(format!(
            "FF_total = {} > (µ+3)·vol + span = {}",
            outcome.total_usage(),
            bound
        ));
    }
    r
}

/// Theorem 1 itself: `FF_total(R) ≤ (µ+4)·OPT_total(R)`, checked when
/// the exact adversary is computable.
fn check_theorem1_opt(
    instance: &Instance,
    outcome: &PackingOutcome,
    d: &Decomposition,
) -> CheckResult {
    const STATEMENT: &str = "FF_total ≤ (µ+4)·OPT_total (exact adversary)";
    if instance.max_concurrency() > 24 {
        return CheckResult::skipped("theorem1-opt", STATEMENT);
    }
    let solver = ExactBinPacking::new();
    let opt = opt_total(instance, &solver, OptConfig::default());
    let Some(exact) = opt.exact() else {
        return CheckResult::skipped("theorem1-opt", STATEMENT);
    };
    let mut r = CheckResult::pass("theorem1-opt", STATEMENT);
    let bound = (d.mu + Rational::from_int(4)) * exact;
    if outcome.total_usage() > bound {
        r.record(format!(
            "FF_total = {} > (µ+4)·OPT = {}",
            outcome.total_usage(),
            bound
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;

    #[test]
    fn friendly_instance_fully_certifies() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(1, 3), rat(1, 1), rat(3, 1))
            .item(rat(2, 3), rat(1, 2), rat(5, 2))
            .item(rat(1, 4), rat(2, 1), rat(4, 1))
            .build()
            .unwrap();
        let report = certify_first_fit(&inst);
        assert!(report.all_passed(), "{report}");
        // The exact adversary is in reach here, so nothing is skipped.
        assert!(report.checks.iter().all(|c| c.passed.is_some()), "{report}");
    }

    #[test]
    fn section8_gadget_certifies() {
        // The Next Fit gadget run under First Fit still satisfies all
        // First Fit certificates.
        let n = 6i128;
        let mut b = Instance::builder();
        for _ in 0..n {
            b = b
                .item(rat(1, 2), rat(0, 1), rat(1, 1))
                .item(rat(1, n), rat(0, 1), rat(4, 1));
        }
        let inst = b.build().unwrap();
        let report = certify_first_fit(&inst);
        assert!(report.all_passed(), "{report}");
    }

    #[test]
    fn structural_checks_hold_for_other_algorithms() {
        let inst = Instance::builder()
            .item(rat(2, 5), rat(0, 1), rat(3, 1))
            .item(rat(3, 5), rat(1, 1), rat(2, 1))
            .item(rat(2, 5), rat(1, 2), rat(7, 2))
            .item(rat(1, 5), rat(2, 1), rat(4, 1))
            .build()
            .unwrap();
        for mut algo in [
            Box::new(BestFit::new()) as Box<dyn dbp_core::PackingAlgorithm>,
            Box::new(WorstFit::new()),
            Box::new(NextFit::new()),
        ] {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            let report = certify_packing(&inst, &out, false);
            assert!(report.all_passed(), "{report}");
        }
    }

    #[test]
    fn report_rendering_mentions_failures() {
        let mut r = CheckResult::pass("demo", "demo statement");
        r.record("boom".to_string());
        let rendered = format!("{r}");
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("boom"));
        let ok = CheckResult::pass("demo", "demo statement");
        assert!(format!("{ok}").contains("PASS"));
        let skip = CheckResult::skipped("demo", "demo statement");
        assert!(format!("{skip}").contains("SKIP"));
    }

    #[test]
    fn empty_instance_report_is_empty() {
        let inst = Instance::new(vec![]).unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let report = certify_packing(&inst, &out, true);
        assert!(report.checks.is_empty());
        assert!(report.all_passed());
    }
}
