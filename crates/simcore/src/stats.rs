//! Exact time-weighted statistics for step functions of time.

use dbp_numeric::Rational;
use serde::{Deserialize, Serialize};

/// Integrates a rational-valued step function of time exactly.
///
/// Feed it `set(t, v)` updates with non-decreasing `t`; it maintains
/// `∫ v(t) dt` plus the time-weighted extremes. This is the engine
/// behind bin-level utilization accounting and `∫ OPT(R, t) dt`.
///
/// ```
/// use dbp_simcore::TimeWeighted;
/// use dbp_numeric::rat;
///
/// let mut w = TimeWeighted::starting_at(rat(0, 1), rat(0, 1));
/// w.set(rat(1, 1), rat(3, 1)); // v=0 on [0,1)
/// w.set(rat(4, 1), rat(1, 1)); // v=3 on [1,4)
/// w.finish(rat(6, 1));         // v=1 on [4,6)
/// assert_eq!(w.integral(), rat(11, 1)); // 0*1 + 3*3 + 1*2
/// assert_eq!(w.time_average().unwrap(), rat(11, 6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: Rational,
    last_t: Rational,
    last_v: Rational,
    integral: Rational,
    max_v: Rational,
    min_v: Rational,
    finished: bool,
}

impl TimeWeighted {
    /// Starts tracking at time `t0` with initial value `v0`.
    pub fn starting_at(t0: Rational, v0: Rational) -> TimeWeighted {
        TimeWeighted {
            start: t0,
            last_t: t0,
            last_v: v0,
            integral: Rational::ZERO,
            max_v: v0,
            min_v: v0,
            finished: false,
        }
    }

    /// Updates the value to `v` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the previous update or if the
    /// tracker was already [`finish`](Self::finish)ed.
    pub fn set(&mut self, t: Rational, v: Rational) {
        assert!(!self.finished, "TimeWeighted already finished");
        assert!(
            t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        self.integral += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
        if v > self.max_v {
            self.max_v = v;
        }
        if v < self.min_v {
            self.min_v = v;
        }
    }

    /// Adds `delta` to the current value at time `t` (convenience for
    /// counter-style signals such as "number of open bins").
    pub fn add(&mut self, t: Rational, delta: Rational) {
        let v = self.last_v + delta;
        self.set(t, v);
    }

    /// Closes the observation window at time `t_end`.
    pub fn finish(&mut self, t_end: Rational) {
        assert!(!self.finished, "TimeWeighted already finished");
        assert!(t_end >= self.last_t, "finish time precedes last update");
        self.integral += self.last_v * (t_end - self.last_t);
        self.last_t = t_end;
        self.finished = true;
    }

    /// The current value of the step function.
    pub fn current(&self) -> Rational {
        self.last_v
    }

    /// `∫ v(t) dt` over the observed window so far.
    pub fn integral(&self) -> Rational {
        self.integral
    }

    /// Time-weighted mean over the observed window; `None` if the
    /// window has zero length.
    pub fn time_average(&self) -> Option<Rational> {
        let span = self.last_t - self.start;
        if span.is_zero() {
            None
        } else {
            Some(self.integral / span)
        }
    }

    /// Maximum value observed (including the initial value).
    pub fn max(&self) -> Rational {
        self.max_v
    }

    /// Minimum value observed (including the initial value).
    pub fn min(&self) -> Rational {
        self.min_v
    }

    /// Length of the observation window so far.
    pub fn elapsed(&self) -> Rational {
        self.last_t - self.start
    }

    /// `true` once [`finish`](Self::finish) closed the window.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Merges `other` into `self` under **zero-extension** semantics:
    /// each signal is treated as `0` outside its own observation
    /// window, and the merged tracker summarizes the pointwise sum.
    ///
    /// The merge is commutative and associative, and the additive
    /// aggregates are *exact*:
    ///
    /// * `integral` adds — `∫(v₁+v₂) dt = ∫v₁ dt + ∫v₂ dt`, so
    ///   per-shard usage integrals fold into the fleet total without
    ///   rounding;
    /// * the window stitches: `start = min`, `last_t = max`;
    /// * the current value sums over the signals whose window reaches
    ///   the merged clock (a signal that stopped earlier contributes
    ///   its zero extension);
    /// * `finished` only when both inputs are.
    ///
    /// `max`/`min` are summarized as the componentwise extremes — a
    /// lower bound on the sum's true maximum (and an upper bound on
    /// its minimum) when the windows overlap, since the pointwise
    /// extremes of a sum are not recoverable from two summaries.
    pub fn merge(&mut self, other: &TimeWeighted) {
        use std::cmp::Ordering;
        self.integral += other.integral;
        self.last_v = match self.last_t.cmp(&other.last_t) {
            Ordering::Less => other.last_v,
            Ordering::Equal => self.last_v + other.last_v,
            Ordering::Greater => self.last_v,
        };
        self.start = self.start.min(other.start);
        self.last_t = self.last_t.max(other.last_t);
        self.max_v = self.max_v.max(other.max_v);
        self.min_v = self.min_v.min(other.min_v);
        self.finished = self.finished && other.finished;
    }
}

/// Integrates an integer-valued step function given as explicit
/// breakpoints — the piecewise-constant `OPT(R, t)` profile.
///
/// Unlike [`TimeWeighted`] this is a one-shot builder: supply all
/// `(interval_start, value)` breakpoints in order plus the end time.
#[derive(Debug, Clone, Default)]
pub struct StepIntegrator {
    segments: Vec<(Rational, Rational, Rational)>, // (lo, hi, value)
}

impl StepIntegrator {
    /// Creates an empty integrator.
    pub fn new() -> StepIntegrator {
        StepIntegrator::default()
    }

    /// Appends a constant segment `value` on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if segments are not appended left-to-right or overlap.
    pub fn push_segment(&mut self, lo: Rational, hi: Rational, value: Rational) {
        assert!(lo <= hi, "segment endpoints out of order");
        if let Some((_, prev_hi, _)) = self.segments.last() {
            assert!(
                lo >= *prev_hi,
                "segments must be appended in order without overlap"
            );
        }
        if lo < hi {
            self.segments.push((lo, hi, value));
        }
    }

    /// `∫ v(t) dt` over all segments.
    pub fn integral(&self) -> Rational {
        self.segments
            .iter()
            .map(|(lo, hi, v)| *v * (*hi - *lo))
            .sum()
    }

    /// Maximum segment value (`None` when empty). For MinUsageTime's
    /// sibling objective — the standard DBP "max concurrent bins".
    pub fn max_value(&self) -> Option<Rational> {
        self.segments.iter().map(|(_, _, v)| *v).max()
    }

    /// Total measure where the value is strictly positive.
    pub fn positive_measure(&self) -> Rational {
        self.segments
            .iter()
            .filter(|(_, _, v)| v.is_positive())
            .map(|(lo, hi, _)| *hi - *lo)
            .sum()
    }

    /// The recorded segments.
    pub fn segments(&self) -> &[(Rational, Rational, Rational)] {
        &self.segments
    }
}

/// A simple monotone event counter with named buckets, used by the
/// experiment harness for run summaries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments by one.
    pub fn bump(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Streaming summary statistics over `f64` observations
/// (Welford's algorithm). Used for *reporting* only — correctness
/// checks always go through exact arithmetic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> SummaryStats {
        SummaryStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance with Bessel's correction (`None` for n < 2).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation (`None` for n < 2).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn time_weighted_integrates_steps() {
        let mut w = TimeWeighted::starting_at(rat(0, 1), rat(2, 1));
        w.set(rat(2, 1), rat(5, 1));
        w.set(rat(3, 1), rat(0, 1));
        w.finish(rat(5, 1));
        // 2*2 + 5*1 + 0*2 = 9
        assert_eq!(w.integral(), rat(9, 1));
        assert_eq!(w.time_average(), Some(rat(9, 5)));
        assert_eq!(w.max(), rat(5, 1));
        assert_eq!(w.min(), rat(0, 1));
        assert_eq!(w.elapsed(), rat(5, 1));
    }

    #[test]
    fn time_weighted_add_deltas() {
        let mut w = TimeWeighted::starting_at(rat(0, 1), rat(0, 1));
        w.add(rat(1, 1), rat(1, 1)); // 1 open bin from t=1
        w.add(rat(2, 1), rat(1, 1)); // 2 open bins from t=2
        w.add(rat(4, 1), rat(-2, 1)); // all closed at t=4
        w.finish(rat(10, 1));
        assert_eq!(w.integral(), rat(5, 1)); // 0*1 + 1*1 + 2*2 + 0*6
        assert_eq!(w.current(), rat(0, 1));
    }

    #[test]
    fn zero_width_updates_are_fine() {
        let mut w = TimeWeighted::starting_at(rat(1, 1), rat(3, 1));
        w.set(rat(1, 1), rat(7, 1)); // simultaneous update
        w.finish(rat(2, 1));
        assert_eq!(w.integral(), rat(7, 1));
        assert_eq!(w.max(), rat(7, 1));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_time_panics() {
        let mut w = TimeWeighted::starting_at(rat(5, 1), rat(0, 1));
        w.set(rat(4, 1), rat(1, 1));
    }

    #[test]
    fn empty_window_has_no_average() {
        let w = TimeWeighted::starting_at(rat(3, 1), rat(9, 1));
        assert_eq!(w.time_average(), None);
    }

    #[test]
    fn merge_adds_integrals_and_stitches_windows() {
        // Overlapping windows: [0, 4] at value 2, [1, 6] at value 3.
        let mut a = TimeWeighted::starting_at(rat(0, 1), rat(2, 1));
        a.set(rat(4, 1), rat(0, 1)); // ∫ = 8
        let mut b = TimeWeighted::starting_at(rat(1, 1), rat(3, 1));
        b.set(rat(6, 1), rat(1, 1)); // ∫ = 15
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.integral(), rat(23, 1));
        assert_eq!(merged.elapsed(), rat(6, 1));
        // `b` alone reaches the merged clock, so its value carries.
        assert_eq!(merged.current(), rat(1, 1));
        assert_eq!(merged.max(), rat(3, 1));
        assert_eq!(merged.min(), rat(0, 1));
        // Commutative.
        let mut swapped = b.clone();
        swapped.merge(&a);
        assert_eq!(swapped, merged);
    }

    #[test]
    fn merge_sums_current_values_on_equal_clocks() {
        let mut a = TimeWeighted::starting_at(rat(0, 1), rat(1, 1));
        a.set(rat(2, 1), rat(5, 1));
        let mut b = TimeWeighted::starting_at(rat(0, 1), rat(2, 1));
        b.set(rat(2, 1), rat(7, 1));
        a.merge(&b);
        assert_eq!(a.current(), rat(12, 1));
        assert_eq!(a.integral(), rat(6, 1)); // 1*2 + 2*2
        assert!(!a.is_finished());
    }

    #[test]
    fn merge_is_associative_and_tracks_finished() {
        let tracker = |t0: i128, v: i128, t1: i128, fin: bool| {
            let mut w = TimeWeighted::starting_at(rat(t0, 1), rat(v, 1));
            w.set(rat(t1, 1), rat(v + 1, 1));
            if fin {
                w.finish(rat(t1 + 1, 1));
            }
            w
        };
        let (a, b, c) = (
            tracker(0, 1, 3, true),
            tracker(1, 4, 5, true),
            tracker(2, 2, 9, false),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert!(!left.is_finished()); // c never finished
        let mut ab = a.clone();
        ab.merge(&b);
        assert!(ab.is_finished());
    }

    #[test]
    fn step_integrator_profile() {
        let mut s = StepIntegrator::new();
        s.push_segment(rat(0, 1), rat(1, 1), rat(2, 1));
        s.push_segment(rat(1, 1), rat(3, 1), rat(0, 1));
        s.push_segment(rat(3, 1), rat(4, 1), rat(5, 1));
        assert_eq!(s.integral(), rat(7, 1));
        assert_eq!(s.max_value(), Some(rat(5, 1)));
        assert_eq!(s.positive_measure(), rat(2, 1));
        assert_eq!(s.segments().len(), 3);
    }

    #[test]
    fn step_integrator_skips_empty_segments() {
        let mut s = StepIntegrator::new();
        s.push_segment(rat(0, 1), rat(0, 1), rat(9, 1));
        assert_eq!(s.segments().len(), 0);
        assert_eq!(s.integral(), rat(0, 1));
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn step_integrator_rejects_overlap() {
        let mut s = StepIntegrator::new();
        s.push_segment(rat(0, 1), rat(2, 1), rat(1, 1));
        s.push_segment(rat(1, 1), rat(3, 1), rat(1, 1));
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_stats_welford() {
        let mut s = SummaryStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_stats_empty_and_single() {
        let mut s = SummaryStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        s.push(3.5);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), None);
        assert_eq!(s.std_dev(), None);
    }
}
