//! Pre-sorted, reusable event schedules.
//!
//! [`EventQueue`](crate::EventQueue) is the right tool when events
//! are *discovered* during a run (control events, simulator
//! follow-ups). Instance replay is different: the complete event set
//! is known up front, and a sweep replays the *same* events once per
//! algorithm. [`EventSchedule`] covers that case with a flat,
//! pre-sorted `Vec` — built once with a single `O(n log n)` sort,
//! then iterated any number of times with zero per-run allocation or
//! heap sifting.
//!
//! The ordering contract is identical to the queue's: events fire in
//! `(time, class, seq)` order, where `seq` is the insertion index.
//! The `prop_simcore` property suite asserts pop-order parity between
//! the two structures, many-way ties included, so a replay driven
//! from a schedule is event-for-event identical to one driven from a
//! freshly filled queue.

use crate::queue::{EventClass, ScheduledEvent};
use dbp_numeric::Rational;

/// An immutable, pre-sorted sequence of events.
///
/// ```
/// use dbp_simcore::{EventClass, EventSchedule};
/// use dbp_numeric::rat;
///
/// let sched = EventSchedule::new(vec![
///     (rat(2, 1), EventClass::Arrival, "arrive@2"),
///     (rat(1, 1), EventClass::Arrival, "arrive@1"),
///     (rat(2, 1), EventClass::Departure, "depart@2"),
/// ]);
/// let order: Vec<_> = sched.events().iter().map(|e| e.payload).collect();
/// assert_eq!(order, ["arrive@1", "depart@2", "arrive@2"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSchedule<T> {
    events: Vec<ScheduledEvent<T>>,
}

impl<T> EventSchedule<T> {
    /// Builds a schedule from `(time, class, payload)` entries. Each
    /// entry's `seq` is its position in `entries` — the same number
    /// [`EventQueue::schedule`](crate::EventQueue::schedule) would
    /// have assigned — so full ties resolve in insertion order.
    pub fn new(entries: Vec<(Rational, EventClass, T)>) -> EventSchedule<T> {
        let mut events: Vec<ScheduledEvent<T>> = entries
            .into_iter()
            .enumerate()
            .map(|(seq, (time, class, payload))| ScheduledEvent {
                time,
                class,
                seq: seq as u64,
                payload,
            })
            .collect();
        // Keys are unique (seq is), so an unstable sort is safe.
        events.sort_unstable_by_key(|a| (a.time, a.class, a.seq));
        EventSchedule { events }
    }

    /// The events in firing order.
    pub fn events(&self) -> &[ScheduledEvent<T>] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the events in firing order.
    pub fn iter(&self) -> std::slice::Iter<'_, ScheduledEvent<T>> {
        self.events.iter()
    }
}

impl<'a, T> IntoIterator for &'a EventSchedule<T> {
    type Item = &'a ScheduledEvent<T>;
    type IntoIter = std::slice::Iter<'a, ScheduledEvent<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn empty_schedule() {
        let s: EventSchedule<()> = EventSchedule::new(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn orders_by_time_class_seq() {
        let s = EventSchedule::new(vec![
            (rat(1, 1), EventClass::Arrival, "a@1"),
            (rat(1, 1), EventClass::Control, "c@1"),
            (rat(1, 1), EventClass::Departure, "d@1"),
            (rat(1, 2), EventClass::Arrival, "a@.5"),
        ]);
        let order: Vec<_> = s.iter().map(|e| e.payload).collect();
        assert_eq!(order, ["a@.5", "d@1", "a@1", "c@1"]);
    }

    #[test]
    fn full_ties_keep_insertion_order() {
        let s = EventSchedule::new(vec![
            (rat(3, 1), EventClass::Arrival, 0),
            (rat(3, 1), EventClass::Arrival, 1),
            (rat(3, 1), EventClass::Arrival, 2),
        ]);
        let order: Vec<_> = s.iter().map(|e| e.payload).collect();
        assert_eq!(order, [0, 1, 2]);
        let seqs: Vec<_> = s.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn replay_is_repeatable() {
        let s = EventSchedule::new(vec![
            (rat(2, 1), EventClass::Departure, 'd'),
            (rat(1, 1), EventClass::Arrival, 'a'),
        ]);
        let first: Vec<_> = s.iter().map(|e| (e.time, e.payload)).collect();
        let second: Vec<_> = s.iter().map(|e| (e.time, e.payload)).collect();
        assert_eq!(first, second);
        assert_eq!(first, [(rat(1, 1), 'a'), (rat(2, 1), 'd')]);
    }
}
