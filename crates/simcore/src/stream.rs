//! Streaming event types for online ingestion.
//!
//! Batch replay knows the full event set up front and pre-sorts it
//! ([`crate::EventSchedule`]); a *streaming* consumer sees events one
//! at a time, in the order the outside world produces them. A
//! [`StreamEvent`] is one such wire event: an arrival carrying the
//! item's size, or a departure. Departure times are never attached to
//! arrivals — the online contract of the MinUsageTime DBP model is
//! that an item's departure is revealed only by its departure event.
//!
//! The payload type `T` identifies the item (the packing layer uses
//! its `ItemId`). Events serialize through the workspace `serde`
//! stand-in as externally-tagged objects —
//! `{"arrive": {"id": …, "size": …, "time": …}}` /
//! `{"depart": {"id": …, "time": …}}` — which is also the JSONL line
//! format the CLI `stream` command consumes.

use dbp_numeric::Rational;
use serde::{Deserialize, Error, Serialize, Value};

/// One wire event of an online arrival/departure stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent<T> {
    /// An item arrives with `size` at `time`; its departure is
    /// unknown until a matching [`Depart`](Self::Depart) shows up.
    Arrive {
        /// Item identifier.
        id: T,
        /// Item size (the packing layer expects it in `(0, 1]`).
        size: Rational,
        /// Arrival time.
        time: Rational,
    },
    /// The item identified by `id` departs at `time`.
    Depart {
        /// Item identifier.
        id: T,
        /// Departure time.
        time: Rational,
    },
}

impl<T: Copy> StreamEvent<T> {
    /// The event's item identifier.
    pub fn id(&self) -> T {
        match *self {
            StreamEvent::Arrive { id, .. } | StreamEvent::Depart { id, .. } => id,
        }
    }

    /// The event's timestamp.
    pub fn time(&self) -> Rational {
        match *self {
            StreamEvent::Arrive { time, .. } | StreamEvent::Depart { time, .. } => time,
        }
    }

    /// `true` for an arrival.
    pub fn is_arrival(&self) -> bool {
        matches!(self, StreamEvent::Arrive { .. })
    }
}

// The vendored `serde_derive` does not handle generic types, so the
// externally-tagged enum encoding is written out by hand.
impl<T: Serialize> Serialize for StreamEvent<T> {
    fn to_value(&self) -> Value {
        match self {
            StreamEvent::Arrive { id, size, time } => Value::Object(vec![(
                "arrive".to_string(),
                Value::Object(vec![
                    ("id".to_string(), id.to_value()),
                    ("size".to_string(), size.to_value()),
                    ("time".to_string(), time.to_value()),
                ]),
            )]),
            StreamEvent::Depart { id, time } => Value::Object(vec![(
                "depart".to_string(),
                Value::Object(vec![
                    ("id".to_string(), id.to_value()),
                    ("time".to_string(), time.to_value()),
                ]),
            )]),
        }
    }
}

impl<T: Deserialize> Deserialize for StreamEvent<T> {
    fn from_value(v: &Value) -> Result<StreamEvent<T>, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("stream event: expected an object"))?;
        let [(tag, body)] = obj else {
            return Err(Error::custom(
                "stream event: expected exactly one of `arrive`/`depart`",
            ));
        };
        let field = |name: &str| -> Result<&Value, Error> {
            body.as_object()
                .and_then(|fields| fields.iter().find_map(|(k, v)| (k == name).then_some(v)))
                .ok_or_else(|| Error::custom(format!("stream event: missing field `{name}`")))
        };
        match tag.as_str() {
            "arrive" => Ok(StreamEvent::Arrive {
                id: T::from_value(field("id")?)?,
                size: Rational::from_value(field("size")?)?,
                time: Rational::from_value(field("time")?)?,
            }),
            "depart" => Ok(StreamEvent::Depart {
                id: T::from_value(field("id")?)?,
                time: Rational::from_value(field("time")?)?,
            }),
            other => Err(Error::custom(format!(
                "stream event: unknown tag `{other}` (expected `arrive` or `depart`)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn accessors_expose_id_time_kind() {
        let a = StreamEvent::Arrive {
            id: 3u32,
            size: rat(1, 2),
            time: rat(5, 1),
        };
        let d = StreamEvent::Depart {
            id: 3u32,
            time: rat(7, 1),
        };
        assert_eq!(a.id(), 3);
        assert_eq!(a.time(), rat(5, 1));
        assert!(a.is_arrival());
        assert_eq!(d.id(), 3);
        assert_eq!(d.time(), rat(7, 1));
        assert!(!d.is_arrival());
    }

    #[test]
    fn events_round_trip_through_the_data_model() {
        let events = vec![
            StreamEvent::Arrive {
                id: 0u32,
                size: rat(3, 10),
                time: rat(-1, 2),
            },
            StreamEvent::Depart {
                id: 0u32,
                time: rat(9, 4),
            },
        ];
        for ev in &events {
            let back = StreamEvent::<u32>::from_value(&ev.to_value()).unwrap();
            assert_eq!(back, *ev);
        }
    }

    #[test]
    fn malformed_values_are_typed_errors() {
        assert!(StreamEvent::<u32>::from_value(&Value::Int(3)).is_err());
        let unknown = Value::Object(vec![("jump".into(), Value::Object(vec![]))]);
        assert!(StreamEvent::<u32>::from_value(&unknown).is_err());
        let missing = Value::Object(vec![("arrive".into(), Value::Object(vec![]))]);
        assert!(StreamEvent::<u32>::from_value(&missing).is_err());
    }
}
