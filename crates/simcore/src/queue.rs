//! Deterministic event queue with stable tie-breaking.

use dbp_numeric::Rational;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority class of an event at equal timestamps.
///
/// Items are active on half-open intervals `[arrival, departure)`
/// (paper §III.A), so at any instant `t` a departure scheduled for
/// `t` has already taken effect when an arrival at `t` is processed.
/// `Departure < Arrival < Control` in processing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// Capacity-freeing events; processed first at a given time.
    Departure = 0,
    /// Capacity-consuming events; processed after departures.
    Arrival = 1,
    /// Measurement / bookkeeping events; processed last.
    Control = 2,
}

/// An event drawn from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// Simulation time at which the event fires.
    pub time: Rational,
    /// Tie-breaking class (see [`EventClass`]).
    pub class: EventClass,
    /// Insertion sequence number; the final tie-breaker.
    pub seq: u64,
    /// User payload.
    pub payload: T,
}

/// Internal heap node: `BinaryHeap` is a max-heap, so ordering is
/// reversed to pop the *earliest* event first.
struct Node<T> {
    time: Rational,
    class: EventClass,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Node<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.class == other.class && self.seq == other.seq
    }
}
impl<T> Eq for Node<T> {}

impl<T> PartialOrd for Node<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Node<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, class, seq) == greater heap priority.
        (other.time, other.class, other.seq).cmp(&(self.time, self.class, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use dbp_simcore::{EventClass, EventQueue};
/// use dbp_numeric::rat;
///
/// let mut q = EventQueue::new();
/// q.schedule(rat(2, 1), EventClass::Arrival, "arrive@2");
/// q.schedule(rat(1, 1), EventClass::Arrival, "arrive@1");
/// q.schedule(rat(2, 1), EventClass::Departure, "depart@2");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
/// assert_eq!(order, ["arrive@1", "depart@2", "arrive@2"]);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Node<T>>,
    next_seq: u64,
    now: Option<Rational>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: None,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event, if any. Monotone
    /// non-decreasing over the lifetime of the queue.
    pub fn now(&self) -> Option<Rational> {
        self.now
    }

    /// Schedules an event; returns its sequence number.
    ///
    /// # Panics
    /// Panics if the event is scheduled strictly in the past (before
    /// the time of the last popped event). Same-time scheduling is
    /// allowed: the new event will be ordered after already-popped
    /// events by class/sequence.
    pub fn schedule(&mut self, time: Rational, class: EventClass, payload: T) -> u64 {
        if let Some(now) = self.now {
            assert!(
                time >= now,
                "cannot schedule event in the past: t={time} < now={now}"
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Node {
            time,
            class,
            seq,
            payload,
        });
        seq
    }

    /// Pops the earliest event (by `(time, class, seq)`), advancing
    /// the queue's notion of *now*.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let node = self.heap.pop()?;
        self.now = Some(node.time);
        Some(ScheduledEvent {
            time: node.time,
            class: node.class,
            seq: node.seq,
            payload: node.payload,
        })
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Rational> {
        self.heap.peek().map(|n| n.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5, 1, 4, 2, 3] {
            q.schedule(rat(t, 1), EventClass::Arrival, t);
        }
        let order: Vec<i128> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn departures_before_arrivals_at_equal_time() {
        let mut q = EventQueue::new();
        q.schedule(rat(1, 1), EventClass::Arrival, "a");
        q.schedule(rat(1, 1), EventClass::Control, "c");
        q.schedule(rat(1, 1), EventClass::Departure, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["d", "a", "c"]);
    }

    #[test]
    fn insertion_order_breaks_full_ties() {
        let mut q = EventQueue::new();
        q.schedule(rat(1, 1), EventClass::Arrival, "first");
        q.schedule(rat(1, 1), EventClass::Arrival, "second");
        q.schedule(rat(1, 1), EventClass::Arrival, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn now_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(rat(3, 1), EventClass::Arrival, ());
        q.schedule(rat(1, 1), EventClass::Arrival, ());
        assert_eq!(q.now(), None);
        q.pop();
        assert_eq!(q.now(), Some(rat(1, 1)));
        // Scheduling at the current time is allowed.
        q.schedule(rat(1, 1), EventClass::Control, ());
        q.pop();
        assert_eq!(q.now(), Some(rat(1, 1)));
        q.pop();
        assert_eq!(q.now(), Some(rat(3, 1)));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(rat(2, 1), EventClass::Arrival, ());
        q.pop();
        q.schedule(rat(1, 1), EventClass::Arrival, ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(rat(7, 2), EventClass::Arrival, ());
        assert_eq!(q.peek_time(), Some(rat(7, 2)));
        assert_eq!(q.now(), None);
        assert_eq!(q.len(), 1);
    }
}
