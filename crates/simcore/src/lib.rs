#![warn(missing_docs)]

//! # `dbp-simcore` — discrete-event simulation core
//!
//! A small, deterministic discrete-event substrate shared by the
//! online packing engine (`dbp-core`) and the cloud-allocation
//! simulator (`dbp-cloudsim`).
//!
//! Design points:
//!
//! * **Exact time.** The simulation clock runs on
//!   [`dbp_numeric::Rational`]; no floating-point drift, so two runs
//!   of the same instance are bit-identical and event ties are real
//!   ties, resolved by an explicit, documented policy.
//! * **Stable ordering.** [`EventQueue`] orders events by
//!   `(time, class, seq)`. `class` encodes the paper's half-open
//!   interval semantics: an item active on `[a, d)` has *departed* at
//!   time `d`, so departures at `t` are processed before arrivals at
//!   `t` (a new item can reuse capacity freed at the same instant).
//!   `seq` is the insertion sequence number, making the whole order
//!   total and deterministic.
//! * **Reusable schedules.** When the full event set is known up
//!   front (instance replay), [`EventSchedule`] is a flat, pre-sorted
//!   alternative to the heap with the *same* `(time, class, seq)`
//!   contract: built once, replayed per algorithm at zero per-run
//!   cost.
//! * **Streaming events.** When the event set is *not* known up
//!   front (live ingestion), [`StreamEvent`] is the wire type: an
//!   arrival carries only the item's size and time — never its
//!   departure — matching the online model the packing layer
//!   enforces.
//! * **Time-weighted statistics.** [`stats::TimeWeighted`] integrates
//!   step functions of time exactly — this is how bin levels,
//!   open-server counts and `∫ OPT(R,t) dt` style quantities are
//!   accumulated.

pub mod queue;
pub mod schedule;
pub mod stats;
pub mod stream;

pub use queue::{EventClass, EventQueue, ScheduledEvent};
pub use schedule::EventSchedule;
pub use stats::{Counter, StepIntegrator, SummaryStats, TimeWeighted};
pub use stream::StreamEvent;
