//! Property tests for the event queue and exact statistics.

use dbp_numeric::{rat, Rational};
use dbp_simcore::{EventClass, EventQueue, EventSchedule, TimeWeighted};
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = EventClass> {
    prop_oneof![
        Just(EventClass::Departure),
        Just(EventClass::Arrival),
        Just(EventClass::Control),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The queue is a total order on (time, class, seq): popping
    /// yields a sorted sequence, stable for full ties.
    #[test]
    fn queue_pops_in_total_order(
        events in prop::collection::vec(((0i128..50, 1i128..8), class_strategy()), 0..60)
    ) {
        let mut q = EventQueue::new();
        for (i, ((num, den), class)) in events.iter().enumerate() {
            q.schedule(rat(*num, *den), *class, i);
        }
        let mut popped: Vec<(Rational, EventClass, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.time, ev.class, ev.payload));
        }
        prop_assert_eq!(popped.len(), events.len());
        for w in popped.windows(2) {
            let (t1, c1, p1) = w[0];
            let (t2, c2, p2) = w[1];
            prop_assert!(
                (t1, c1) < (t2, c2) || ((t1, c1) == (t2, c2) && p1 < p2),
                "order violated: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    /// The flat [`EventSchedule`] pops events in exactly the same
    /// `(time, class, seq)` order as the heap-backed [`EventQueue`]
    /// when filled in the same insertion order. The narrow time range
    /// with only a handful of denominators forces many-way equal-time
    /// (and equal-class) ties, so the tie-breaking contract itself is
    /// what gets exercised.
    #[test]
    fn schedule_matches_queue_order(
        events in prop::collection::vec(((0i128..8, 1i128..4), class_strategy()), 0..80)
    ) {
        let mut q = EventQueue::new();
        for (i, ((num, den), class)) in events.iter().enumerate() {
            q.schedule(rat(*num, *den), *class, i);
        }
        let sched = EventSchedule::new(
            events
                .iter()
                .enumerate()
                .map(|(i, ((num, den), class))| (rat(*num, *den), *class, i))
                .collect(),
        );
        let heap_order: Vec<(Rational, EventClass, u64, usize)> =
            std::iter::from_fn(|| q.pop())
                .map(|e| (e.time, e.class, e.seq, e.payload))
                .collect();
        let flat_order: Vec<(Rational, EventClass, u64, usize)> = sched
            .iter()
            .map(|e| (e.time, e.class, e.seq, e.payload))
            .collect();
        prop_assert_eq!(heap_order, flat_order);
    }

    /// Interleaved scheduling respects the no-past rule and keeps
    /// order: scheduling at exactly `now` is fine.
    #[test]
    fn queue_allows_schedule_at_now(times in prop::collection::vec(0i128..20, 1..20)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut q = EventQueue::new();
        for &t in &sorted {
            q.schedule(rat(t, 1), EventClass::Arrival, ());
        }
        let mut count = 0;
        while let Some(ev) = q.pop() {
            // Schedule a follow-up at the same instant sometimes.
            if count % 3 == 0 {
                q.schedule(ev.time, EventClass::Control, ());
            }
            count += 1;
        }
        prop_assert!(count >= sorted.len());
    }

    /// TimeWeighted's integral equals the hand-computed Riemann sum
    /// of the step function.
    #[test]
    fn time_weighted_matches_manual_sum(
        steps in prop::collection::vec((1i128..10, -5i128..10), 1..30)
    ) {
        let mut w = TimeWeighted::starting_at(Rational::ZERO, Rational::ZERO);
        let mut manual = Rational::ZERO;
        let mut t = Rational::ZERO;
        let mut v = Rational::ZERO;
        for &(dt, val) in &steps {
            let nt = t + rat(dt, 1);
            manual += v * (nt - t);
            t = nt;
            v = rat(val, 1);
            w.set(t, v);
        }
        let end = t + Rational::ONE;
        manual += v * Rational::ONE;
        w.finish(end);
        prop_assert_eq!(w.integral(), manual);
        prop_assert_eq!(w.elapsed(), end);
        // Extremes bound every step value.
        for &(_, val) in &steps {
            prop_assert!(w.min() <= rat(val, 1));
            prop_assert!(w.max() >= rat(val, 1));
        }
    }
}
