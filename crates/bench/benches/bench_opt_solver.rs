//! Exact bin packing solver scaling with active-set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_analysis::ExactBinPacking;
use dbp_numeric::{rat, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sizes(n: usize, seed: u64) -> Vec<Rational> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rat(rng.gen_range(1..=16), 16)).collect()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_solver");
    for n in [8usize, 12, 16, 20, 24] {
        let sizes = random_sizes(n, 7);
        group.bench_with_input(BenchmarkId::new("min_bins", n), &sizes, |b, sizes| {
            b.iter(|| {
                // Fresh solver per iteration: measure the solve, not
                // the memo hit.
                ExactBinPacking::new().min_bins(sizes)
            });
        });
    }
    // Memoized path for contrast.
    let sizes = random_sizes(20, 7);
    let solver = ExactBinPacking::new();
    solver.min_bins(&sizes);
    group.bench_function("min_bins_memoized_20", |b| {
        b.iter(|| solver.min_bins(&sizes));
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
