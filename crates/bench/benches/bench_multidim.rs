//! Vector packing engine + adversary costs vs dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_multidim::{md_opt_total, run_md_packing, MdFirstFit, MdRandomWorkload};
use dbp_numeric::rat;

fn bench_multidim(c: &mut Criterion) {
    let mut group = c.benchmark_group("multidim");
    for dim in [1usize, 2, 4] {
        let mut wl = MdRandomWorkload::cpu_mem(400, rat(4, 1), 17);
        wl.dim = dim;
        let inst = wl.generate();
        group.bench_with_input(BenchmarkId::new("ff_pack", dim), &inst, |b, inst| {
            b.iter(|| {
                run_md_packing(inst, &mut MdFirstFit::new())
                    .unwrap()
                    .bins_opened()
            });
        });
    }
    let inst = MdRandomWorkload::cpu_mem(60, rat(3, 1), 3).generate();
    group.bench_function("vector_adversary_60", |b| {
        b.iter(|| md_opt_total(&inst, 12));
    });
    group.finish();
}

criterion_group!(benches, bench_multidim);
criterion_main!(benches);
