//! §IV–§VII decomposition and certification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbp_analysis::{certify_first_fit, Decomposition};
use dbp_core::prelude::*;
use dbp_numeric::rat;
use dbp_workloads::RandomWorkload;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    for n in [50usize, 200, 800] {
        let inst = RandomWorkload::with_mu(n, rat(4, 1), 11).generate();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("compute", n),
            &(&inst, &out),
            |b, (inst, out)| {
                b.iter(|| Decomposition::compute(inst, out));
            },
        );
    }
    // Full certification (includes an exact adversary solve) on a
    // small instance.
    let inst = RandomWorkload::with_mu(40, rat(4, 1), 3).generate();
    group.bench_function("certify_first_fit_40", |b| {
        b.iter(|| certify_first_fit(&inst));
    });
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
