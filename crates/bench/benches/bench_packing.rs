//! Per-algorithm packing throughput on random workloads.
//!
//! Measures `run_packing` end-to-end (event replay + placement +
//! accounting) for each algorithm at several instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_core::prelude::*;
use dbp_core::PackingAlgorithm;
use dbp_numeric::rat;
use dbp_workloads::RandomWorkload;

fn algorithms() -> Vec<Box<dyn PackingAlgorithm>> {
    vec![
        Box::new(FirstFit::new()),
        Box::new(FirstFitFast::new()),
        Box::new(BestFit::new()),
        Box::new(BestFitFast::new()),
        Box::new(WorstFit::new()),
        Box::new(WorstFitFast::new()),
        Box::new(NextFit::new()),
        Box::new(HybridFirstFit::classic()),
    ]
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    for n in [100usize, 1000, 4000] {
        let inst = RandomWorkload::with_mu(n, rat(8, 1), 42).generate();
        group.throughput(Throughput::Elements(n as u64));
        for mut algo in algorithms() {
            let name = algo.name();
            group.bench_with_input(BenchmarkId::new(name, n), &inst, |b, inst| {
                b.iter(|| Runner::new(inst).run(algo.as_mut()).unwrap().total_usage());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
