//! Exact-arithmetic primitive costs.

use criterion::{criterion_group, criterion_main, Criterion};
use dbp_numeric::{rat, Interval, IntervalSet, Rational};
use std::hint::black_box;

fn bench_numeric(c: &mut Criterion) {
    let a = rat(355, 113);
    let b = rat(-217, 961);
    c.bench_function("rational_add", |bch| {
        bch.iter(|| black_box(a) + black_box(b))
    });
    c.bench_function("rational_mul", |bch| {
        bch.iter(|| black_box(a) * black_box(b))
    });
    c.bench_function("rational_cmp", |bch| {
        bch.iter(|| black_box(a) < black_box(b))
    });

    // IntervalSet insertion patterns.
    let sequential: Vec<Interval> = (0..512)
        .map(|i| Interval::new(rat(2 * i, 1), rat(2 * i + 1, 1)))
        .collect();
    c.bench_function("intervalset_insert_sequential_512", |bch| {
        bch.iter(|| {
            let mut s = IntervalSet::new();
            for iv in &sequential {
                s.insert(*iv);
            }
            s.measure()
        })
    });
    let overlapping: Vec<Interval> = (0..512)
        .map(|i| Interval::new(rat(i, 2), rat(i, 2) + Rational::from_int(4)))
        .collect();
    c.bench_function("intervalset_insert_overlapping_512", |bch| {
        bch.iter(|| {
            let mut s = IntervalSet::new();
            for iv in &overlapping {
                s.insert(*iv);
            }
            s.measure()
        })
    });
}

criterion_group!(benches, bench_numeric);
criterion_main!(benches);
