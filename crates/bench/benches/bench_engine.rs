//! Engine-level microbenchmarks: event replay and snapshot cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_core::prelude::*;
use dbp_numeric::rat;
use dbp_workloads::random::{ArrivalDist, RandomWorkload};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    // Bursty stream (many concurrent bins) vs sparse stream.
    for (label, horizon_div) in [("dense", 16usize), ("sparse", 2)] {
        let n = 2000usize;
        let mut wl = RandomWorkload::with_mu(n, rat(4, 1), 5);
        wl.arrivals = ArrivalDist::Uniform {
            horizon: rat((n / horizon_div) as i128, 1),
        };
        let inst = wl.generate();
        group.throughput(Throughput::Elements(2 * n as u64)); // arrivals + departures
        group.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
            b.iter(|| {
                Runner::new(inst)
                    .run(&mut FirstFit::new())
                    .unwrap()
                    .bins_opened()
            });
        });
        // Same stream through the FitTree-indexed variant: the gap
        // between these two is the linear-scan cost.
        group.bench_with_input(
            BenchmarkId::new(format!("{label}-fast"), n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    Runner::new(inst)
                        .run(&mut FirstFitFast::new())
                        .unwrap()
                        .bins_opened()
                });
            },
        );
        // And through the tick-compiled integer engine: the schedule
        // is compiled once and each iteration is a pure `u64` replay
        // — the gap to `-fast` is the Rational-arithmetic cost.
        let compiled = CompiledInstance::compile(&inst).expect("workload compiles");
        group.bench_with_input(
            BenchmarkId::new(format!("{label}-tick"), n),
            &compiled,
            |b, compiled| {
                b.iter(|| compiled.run(TickPolicy::FirstFit).unwrap().bins_opened());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
