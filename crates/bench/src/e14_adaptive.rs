//! E14 — the adaptive lower-bound game.
//!
//! The paper's universal lower bound lets the adversary pick
//! departures *after* seeing placements. This experiment plays that
//! game live against each algorithm ([`dbp_workloads::adaptive`]):
//! the keep-smallest adversary traps every algorithm that ever lets a
//! small item share a bin with short-lived cargo (all the Any-Fit
//! rules and Next Fit → ratio ≈ µ), while a size-segregating
//! algorithm escapes this particular strategy — the measured gap is
//! the empirical content of "no online algorithm beats µ, and beating
//! the *gadget* requires structural tricks".

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::Runner;
use dbp_numeric::Rational;
use dbp_workloads::adaptive::{play, KeepSmallestAdversary};

/// One (µ, algorithm) cell.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Horizon the adversary realizes (µ of the realized instance).
    pub mu: u32,
    /// Algorithm.
    pub algorithm: String,
    /// Bins the algorithm opened in the game.
    pub bins: usize,
    /// Algorithm cost in the game.
    pub cost: Rational,
    /// Ratio vs the exact adversary on the realized instance.
    pub ratio: Rational,
}

/// Runs the game for each µ × algorithm.
pub fn run(mus: &[u32], k: u32) -> (Vec<AdaptiveRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        for mut algo in crate::algorithm_lineup() {
            let mut adversary = KeepSmallestAdversary::new(k, mu);
            let result = play(&mut adversary, algo.as_mut(), 100_000).expect("game is feasible");
            // Price the realized instance with the exact adversary.
            let rerun = Runner::new(&result.instance).run(algo.as_mut()).unwrap();
            debug_assert_eq!(rerun.total_usage(), result.algorithm_cost);
            let rep = measure_ratio(&result.instance, &rerun);
            rows.push(AdaptiveRow {
                mu,
                algorithm: rerun.algorithm().to_string(),
                bins: result.bins_opened,
                cost: result.algorithm_cost,
                ratio: rep
                    .exact_ratio()
                    .or(rep.ratio_upper)
                    .unwrap_or(Rational::ZERO),
            });
        }
    }

    let mut table = Table::new(
        "E14: adaptive lower-bound game (keep-smallest adversary)",
        &["µ", "algorithm", "bins", "cost", "ratio vs OPT"],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            r.algorithm.clone(),
            r.bins.to_string(),
            r.cost.to_string(),
            dec(r.ratio),
        ]);
    }
    table.note(&format!(
        "k = {k} pairs; departures chosen after observing placements"
    ));
    table
        .note("Any-Fit algorithms are trapped (ratio → µ); size segregation escapes this strategy");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn game_separates_trapped_from_segregating() {
        let (rows, _) = run(&[6], 10);
        let get = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap();
        for trapped in ["FirstFit", "BestFit", "WorstFit", "NextFit"] {
            let r = get(trapped);
            assert_eq!(r.cost, rat(60, 1), "{trapped} should pay kµ");
            assert!(r.ratio > rat(3, 1), "{trapped} ratio {} too small", r.ratio);
        }
        let hff = get("HybridFirstFit[1/2]");
        assert!(
            hff.ratio < rat(2, 1),
            "HFF should escape, got {}",
            hff.ratio
        );
    }
}
