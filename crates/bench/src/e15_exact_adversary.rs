//! E15 — the exact adversary at scale: crafted vs random instances.
//!
//! Two questions in one sweep. *How bad can First Fit be made* at a
//! given `µ`: the simulated-annealing search
//! ([`dbp_workloads::search`]), warm-started from the §VIII gadgets,
//! maximizes the certified measured `FF / OPT_total` ratio. *How bad
//! does it get by accident*: the maximum of the same certified ratio
//! over seeded random workloads at the same `µ`. The paper's story —
//! worst-case instances are *constructed*, not sampled — shows up as
//! a wide gap between the two columns, both still under the `µ + 4`
//! Theorem 1 ceiling.
//!
//! Every ratio is certified: `FF_total / OPT_upper` with `OPT_upper`
//! from the incremental branch-and-bound adversary, so a bracketed
//! interval solve can only *under*-report the ratio, never inflate
//! it.

use crate::table::Table;
use dbp_numeric::{rat, Rational};
use dbp_par::par_map;
use dbp_workloads::search::{anneal_first_fit, random_max_ratio, SearchConfig};

/// One µ-row of the crafted-vs-random comparison.
#[derive(Debug, Clone)]
pub struct AdversaryRow {
    /// Target duration ratio.
    pub mu: u32,
    /// Best certified `FF/OPT` found by the annealing search.
    pub crafted_ratio: Rational,
    /// The warm-start family the winner descends from.
    pub crafted_family: &'static str,
    /// Items in the winning instance.
    pub crafted_items: usize,
    /// Candidate instances the search evaluated.
    pub evaluations: u32,
    /// Max certified `FF/OPT` over the random baseline workloads.
    pub random_max: Rational,
    /// The Theorem 1 ceiling `µ + 4`.
    pub bound: Rational,
}

impl AdversaryRow {
    /// Crafted-over-random advantage (how much the search beats
    /// sampling), as a float for tables.
    pub fn advantage(&self) -> f64 {
        if self.random_max.is_zero() {
            return f64::INFINITY;
        }
        (self.crafted_ratio / self.random_max).to_f64()
    }
}

/// Runs the sweep: one annealing search and one random-max baseline
/// per `µ`, µ-rows in parallel. `iterations` bounds each search
/// chain; `random_n`/`random_seeds` size the baseline.
pub fn run(
    mus: &[u32],
    iterations: u32,
    random_n: usize,
    random_seeds: u64,
) -> (Vec<AdversaryRow>, Table) {
    let rows: Vec<AdversaryRow> = par_map(mus, |&mu| {
        let config = SearchConfig {
            iterations,
            ..SearchConfig::for_mu(mu)
        };
        let report = anneal_first_fit(config);
        let random_max = random_max_ratio(mu, random_n, random_seeds, config.node_budget);
        AdversaryRow {
            mu,
            crafted_ratio: report.best_ratio,
            crafted_family: report.start_family,
            crafted_items: report.best.items().len(),
            evaluations: report.evaluations,
            random_max,
            bound: rat(mu as i128, 1) + Rational::from_int(4),
        }
    });

    let mut table = Table::new(
        "E15 / exact adversary: crafted (annealed) vs random worst-case FF/OPT",
        &[
            "µ",
            "crafted FF/OPT",
            "from",
            "items",
            "evals",
            "random max",
            "advantage",
            "µ+4",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            format!("{:.3}", r.crafted_ratio.to_f64()),
            r.crafted_family.to_string(),
            r.crafted_items.to_string(),
            r.evaluations.to_string(),
            format!("{:.3}", r.random_max.to_f64()),
            format!("{:.2}x", r.advantage()),
            r.bound.to_string(),
        ]);
    }
    table.note(
        "ratios are certified lower bounds: FF_total / OPT_upper (incremental B&B adversary)",
    );
    table.note("crafted = simulated annealing warm-started from the §VIII gadget constructions");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crafted_beats_random_at_every_mu() {
        // The acceptance bar for the search: at µ ∈ {2, 4, 8} the
        // annealed instance must strictly beat the best random draw,
        // and everything stays under Theorem 1.
        let (rows, table) = run(&[2, 4, 8], 60, 16, 6);
        assert_eq!(rows.len(), 3);
        assert_eq!(table.len(), 3);
        for r in &rows {
            assert!(
                r.crafted_ratio > r.random_max,
                "search lost to sampling at µ = {}: {} ≤ {}",
                r.mu,
                r.crafted_ratio,
                r.random_max
            );
            assert!(
                r.crafted_ratio <= r.bound,
                "Theorem 1 violated at µ = {}",
                r.mu
            );
            assert!(r.random_max > Rational::ZERO);
        }
    }

    #[test]
    fn crafted_ratio_grows_with_mu() {
        // The µ+1 Any-Fit floor: more µ, more leverage.
        let (rows, _) = run(&[1, 4], 40, 12, 4);
        assert!(rows[1].crafted_ratio > rows[0].crafted_ratio);
    }
}
