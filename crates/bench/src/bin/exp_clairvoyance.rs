//! E12: the value of knowing departures (ablation).
fn main() {
    let (_, table) = dbp_bench::e12_clairvoyance::run(&[1, 2, 4, 8, 16], 12, 40, 12);
    println!("{table}");
}
