//! E6: First Fit under bounded item sizes (≤ 1/β).
fn main() {
    let (_, table) = dbp_bench::e6_beta::run(&[2, 3, 4, 8], &[1, 2, 4, 8], 60, 16);
    println!("{table}");
}
