//! F6: Figure 6 — Case 4 consolidated follower.
fn main() {
    println!("{}", dbp_bench::figures::fig6_case4());
}
