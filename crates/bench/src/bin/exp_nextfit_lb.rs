//! E2: §VIII Next Fit lower-bound construction.
fn main() {
    let (_, table) =
        dbp_bench::e2_nextfit::run(&[4, 8, 16, 64, 256, 1024, 4096], &[1, 2, 4, 8, 16]);
    println!("{table}");
}
