//! E13: usage-time vs the standard DBP (peak bins) objective.
fn main() {
    let (_, table) = dbp_bench::e13_standard_dbp::run(&[1, 2, 4, 8], 60, 12);
    println!("{table}");
}
