//! E10: §IV–§VII machinery certification report.
fn main() {
    let (_, table) = dbp_bench::e10_certify::run(&[1, 2, 4, 8, 16], 48, 64);
    println!("{table}");
}
