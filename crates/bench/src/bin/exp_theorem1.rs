//! E1: Theorem 1 — First Fit ratio vs the (µ+4) bound.
fn main() {
    let (_, table) = dbp_bench::e1_theorem1::run(&[1, 2, 4, 8, 16], 60, 24);
    println!("{table}");
}
