//! E1: Theorem 1 — First Fit ratio vs the (µ+4) bound.
//!
//! 250 items per instance = 500-event profiles, solved *exactly* by
//! the incremental warm-started adversary (the seed solver capped
//! exact E1 at 60 items).
fn main() {
    let (_, table) = dbp_bench::e1_theorem1::run(&[1, 2, 4, 8, 16], 250, 24);
    println!("{table}");
}
