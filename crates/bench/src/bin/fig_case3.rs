//! F5: Figure 5 — Case 3 cross-bin supplier windows.
fn main() {
    println!("{}", dbp_bench::figures::fig5_case3());
}
