//! E11: multi-dimensional (CPU+memory) MinUsageTime DBP.
fn main() {
    let (_, table) = dbp_bench::e11_multidim::run(&[1, 2, 4, 8], 40, 12);
    println!("{table}");
}
