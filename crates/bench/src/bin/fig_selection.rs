//! F3: Figure 3 — item selection and period split.
fn main() {
    println!("{}", dbp_bench::figures::fig3_selection());
}
