//! F2: Figure 2 — usage periods U_k = V_k ∪ W_k.
fn main() {
    println!("{}", dbp_bench::figures::fig2_usage_periods());
}
