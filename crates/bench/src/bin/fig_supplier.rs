//! F4: Figure 4 — supplier bins and supplier periods.
fn main() {
    println!("{}", dbp_bench::figures::fig4_supplier());
}
