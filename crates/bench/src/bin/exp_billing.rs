//! E9: billing quantum sweep.
fn main() {
    let (_, table) = dbp_bench::e9_billing::run(2024);
    println!("{table}");
}
