//! F1: Figure 1 — span of an item list.
fn main() {
    println!("{}", dbp_bench::figures::fig1_span());
}
