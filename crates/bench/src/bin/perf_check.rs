//! Compares committed `BENCH_*.json` snapshots against fresh runs and
//! fails (exit 1) on a throughput regression.
//!
//! Usage: `perf_check <baseline.json> <fresh.json> [more pairs …]
//!         [--tolerance 0.70]`
//!
//! Files are consumed in baseline/fresh pairs; each pair is gated on
//! the metrics its experiment declares:
//!
//! * `engine_throughput` — `events_per_sec` (the parallel replay
//!   headline) and `compiled_events_per_sec` (the single-threaded
//!   tick-engine replay rate);
//! * `stream` — `stream_events_per_sec` (one-event-at-a-time
//!   sessions), plus an **absolute** floor: the fresh snapshot's
//!   `stream_vs_batch_ratio` must reach the tolerance, i.e. streaming
//!   sessions keep ≥70% of the batch tick rate *measured in the same
//!   run* — a machine-independent contract, not a baseline diff;
//! * `obs_overhead` — absolute same-run floors only: the fresh
//!   snapshot's `observed_vs_unobserved_ratio` (a ring-buffered
//!   `TelemetrySink` on the engine's observer hooks — the sense of
//!   `arrive_observed`) must reach 0.85, and its
//!   `full_stack_vs_unobserved_ratio` (sink **plus** the session's
//!   exact `vol`/`span` stream accounting) must reach 0.70. Both
//!   floors are fixed, independent of `--tolerance`;
//! * `profile` — absolute same-run floors only, same shape: the
//!   fresh snapshot's `detached_vs_unobserved_ratio` (an inert probe
//!   on the session's `&mut dyn` phase hook) must reach 0.95 — the
//!   hook is supposed to be free when nobody listens — and its
//!   `attached_vs_unobserved_ratio` (a live `Profiler` timing every
//!   phase and histogramming every probe) must reach 0.70;
//! * `fit_scaling` — one absolute same-run floor: the fresh
//!   snapshot's `chunked_vs_scalar_scan_ratio` (the 8-lane chunked
//!   First Fit gap sweep against its per-slot scalar reference on a
//!   full-depth `B = 100` scan, measured back-to-back) must reach
//!   1.0 — the vectorized kernel must never lose to the loop it
//!   replaced;
//! * `server` — `server_events_per_sec` (aggregate wire-protocol
//!   placement throughput across the loadgen's client threads and
//!   tenants; the recorded p50/p99 placement latencies ride along
//!   uncompared — latency floors are machine noise on shared CI),
//!   plus an **absolute** same-run floor: the fresh snapshot's
//!   `traced_vs_untraced_ratio` (loadgen's traced pass — per-frame
//!   request ids, echo verification, request-span recording — against
//!   its untraced pass, back to back in the same run) must reach
//!   0.90: request tracing may cost at most 10% of serving
//!   throughput;
//! * `opt_solver` — `intervals_per_sec` (the incremental
//!   branch-and-bound adversary's interval-solve rate) against the
//!   baseline, plus an **absolute** same-run floor: the fresh
//!   snapshot's `speedup_vs_seed` (the same profiles re-solved
//!   through the seed per-interval `Rational` pipeline, measured in
//!   the same run) must reach 10× — the incremental kernel must stay
//!   an order of magnitude ahead of the solver it replaced.
//!
//! A metric missing from the *baseline* is skipped with a warning —
//! older baselines predate newer metrics — while a metric missing
//! from the *fresh* snapshot is a hard failure: the benchmark stopped
//! reporting something it is supposed to gate.
//!
//! The tolerance is the fraction of the baseline (or of the batch
//! rate, for the ratio gate) the fresh run must reach — 0.70 means
//! "no more than a 30% shortfall". CI runners are noisy, so the gate
//! is deliberately loose: it exists to catch order-of-magnitude slips
//! (an accidental `O(B)` scan back in the hot path), not 5% jitter.

use serde::Value;
use std::process::ExitCode;

/// Fixed same-run floor for `observed_vs_unobserved_ratio`: an
/// attached trace sink may cost at most 15% of streaming throughput.
const OBS_OVERHEAD_FLOOR: f64 = 0.85;

/// Fixed same-run floor for `full_stack_vs_unobserved_ratio`: the
/// sink plus exact `vol`/`span` session accounting may cost at most
/// 30% — the exact-arithmetic lower-bound watchdog is pricier than
/// pure observation, and gated separately so neither hides in the
/// other.
const OBS_FULL_STACK_FLOOR: f64 = 0.70;

/// Fixed same-run floor for `detached_vs_unobserved_ratio`: with no
/// live listener, the engines' phase hooks must be free — an inert
/// probe behind the session's `&mut dyn` dispatch may cost at most
/// 5% against the bare replay.
const PROFILE_DETACHED_FLOOR: f64 = 0.95;

/// Fixed same-run floor for `attached_vs_unobserved_ratio`: a live
/// `Profiler` — monotonic-clock spans around every phase, probe
/// histograms on every event — may cost at most 30% of the exact
/// engine's replay rate.
const PROFILE_ATTACHED_FLOOR: f64 = 0.70;

/// Fixed same-run floor for `chunked_vs_scalar_scan_ratio`: the
/// chunked (autovectorizing) First Fit gap sweep must at least match
/// its scalar reference on a full-depth scan — anything below parity
/// means the vectorized kernel stopped vectorizing.
const SCAN_CHUNKED_FLOOR: f64 = 1.0;

/// Fixed same-run floor for `speedup_vs_seed`: the incremental
/// warm-started branch-and-bound adversary must solve event-interval
/// profiles at least 10× faster than the seed per-interval `Rational`
/// pipeline re-measured in the same run.
const OPT_SOLVER_SPEEDUP_FLOOR: f64 = 10.0;

/// Fixed same-run floor for `traced_vs_untraced_ratio`: loadgen's
/// traced pass (per-frame request ids, echo verification, span
/// recording on every placement) may cost at most 10% of the untraced
/// pass's throughput, measured back to back in the same run.
const SERVER_TRACED_FLOOR: f64 = 0.90;

/// Baseline-relative throughput metrics gated per experiment.
fn gated_metrics(experiment: &str) -> &'static [&'static str] {
    match experiment {
        "engine_throughput" => &["events_per_sec", "compiled_events_per_sec"],
        "stream" => &["stream_events_per_sec"],
        "server" => &["server_events_per_sec"],
        "opt_solver" => &["intervals_per_sec"],
        "obs_overhead" | "profile" => &[],
        _ => &[],
    }
}

/// Same-run absolute ratio floors gated per experiment, independent
/// of `--tolerance` and of the baseline snapshot.
fn same_run_floors(experiment: &str) -> &'static [(&'static str, f64)] {
    match experiment {
        "obs_overhead" => &[
            ("observed_vs_unobserved_ratio", OBS_OVERHEAD_FLOOR),
            ("full_stack_vs_unobserved_ratio", OBS_FULL_STACK_FLOOR),
        ],
        "profile" => &[
            ("detached_vs_unobserved_ratio", PROFILE_DETACHED_FLOOR),
            ("attached_vs_unobserved_ratio", PROFILE_ATTACHED_FLOOR),
        ],
        "fit_scaling" => &[("chunked_vs_scalar_scan_ratio", SCAN_CHUNKED_FLOOR)],
        "opt_solver" => &[("speedup_vs_seed", OPT_SOLVER_SPEEDUP_FLOOR)],
        "server" => &[("traced_vs_untraced_ratio", SERVER_TRACED_FLOOR)],
        _ => &[],
    }
}

struct Snapshot {
    experiment: String,
    metrics: Value,
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = serde_json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let experiment = json
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path} has no experiment name"))?
        .to_string();
    let metrics = json
        .get("metrics")
        .cloned()
        .ok_or_else(|| format!("{path} has no metrics object"))?;
    Ok(Snapshot {
        experiment,
        metrics,
    })
}

fn metric(metrics: &Value, name: &str) -> Option<f64> {
    metrics.get(name).and_then(Value::as_f64)
}

/// Gates one baseline/fresh pair. Returns `(gated, failed)`: how many
/// checks ran and whether any failed.
fn check_pair(base: &Snapshot, fresh: &Snapshot, tolerance: f64) -> (usize, bool) {
    let mut gated = 0usize;
    let mut failed = false;
    if base.experiment != fresh.experiment {
        eprintln!(
            "perf_check: experiment mismatch — baseline `{}`, fresh `{}`",
            base.experiment, fresh.experiment
        );
        return (0, true);
    }
    for &name in gated_metrics(&base.experiment) {
        let Some(base_eps) = metric(&base.metrics, name) else {
            println!("perf_check: baseline has no metrics.{name} — skipping (older baseline?)");
            continue;
        };
        let Some(fresh_eps) = metric(&fresh.metrics, name) else {
            eprintln!("perf_check: fresh snapshot dropped metrics.{name} — failing");
            failed = true;
            continue;
        };
        gated += 1;
        let floor = base_eps * tolerance;
        let pct = 100.0 * fresh_eps / base_eps;
        println!(
            "{name}: baseline {base_eps:.0} ev/s, fresh {fresh_eps:.0} ev/s, \
             floor {floor:.0} ev/s (tolerance {tolerance:.2})"
        );
        if fresh_eps < floor {
            eprintln!(
                "perf_check: REGRESSION — {name} is {pct:.1}% of baseline (floor {:.0}%)",
                100.0 * tolerance
            );
            failed = true;
        } else {
            println!("perf_check: {name} OK ({pct:.1}% of baseline)");
        }
    }
    // Same-run absolute gate: streaming sessions must keep pace with
    // the batch engine regardless of what machine the baseline saw.
    if fresh.experiment == "stream" {
        match metric(&fresh.metrics, "stream_vs_batch_ratio") {
            Some(ratio) => {
                gated += 1;
                println!("stream_vs_batch_ratio: {ratio:.3} (floor {tolerance:.2}, same-run)");
                if ratio < tolerance {
                    eprintln!(
                        "perf_check: REGRESSION — streaming sessions at {:.1}% of the \
                         batch tick rate (floor {:.0}%)",
                        100.0 * ratio,
                        100.0 * tolerance
                    );
                    failed = true;
                } else {
                    println!("perf_check: stream_vs_batch_ratio OK");
                }
            }
            None => {
                eprintln!("perf_check: stream snapshot has no stream_vs_batch_ratio — failing");
                failed = true;
            }
        }
    }
    // Same-run absolute gates: observation and profiling must stay
    // cheap. The floors are fixed, independent of the baseline
    // tolerance.
    for &(name, floor) in same_run_floors(&fresh.experiment) {
        match metric(&fresh.metrics, name) {
            Some(ratio) => {
                gated += 1;
                println!("{name}: {ratio:.3} (floor {floor:.2}, same-run)");
                if ratio < floor {
                    eprintln!(
                        "perf_check: REGRESSION — {name} at {:.1}% of its same-run \
                         reference rate (floor {:.0}%)",
                        100.0 * ratio,
                        100.0 * floor
                    );
                    failed = true;
                } else {
                    println!("perf_check: {name} OK");
                }
            }
            None => {
                eprintln!(
                    "perf_check: {} snapshot has no {name} — failing",
                    fresh.experiment
                );
                failed = true;
            }
        }
    }
    (gated, failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.70f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    if files.is_empty() || files.len() % 2 != 0 {
        eprintln!(
            "usage: perf_check <baseline.json> <fresh.json> [more pairs …] [--tolerance 0.70]"
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut gated = 0usize;
    for pair in files.chunks(2) {
        let (base, fresh) = match (load(&pair[0]), load(&pair[1])) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("perf_check: {err}");
                }
                failed = true;
                continue;
            }
        };
        println!("== {} ==", base.experiment);
        let (pair_gated, pair_failed) = check_pair(&base, &fresh, tolerance);
        gated += pair_gated;
        failed |= pair_failed;
    }
    if gated == 0 && !failed {
        eprintln!("perf_check: no gated metric present in any baseline — nothing was checked");
        return ExitCode::FAILURE;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
