//! Compares two `BENCH_engine_throughput.json` snapshots and fails
//! (exit 1) when the fresh run's `events_per_sec` drops more than 30%
//! below the committed baseline.
//!
//! Usage: `perf_check <baseline.json> <fresh.json> [--tolerance 0.70]`
//!
//! The tolerance is the fraction of the baseline the fresh run must
//! reach — 0.70 means "no more than a 30% regression". CI runners are
//! noisy, so the gate is deliberately loose: it exists to catch
//! order-of-magnitude slips (an accidental `O(B)` scan back in the
//! hot path), not 5% jitter.

use serde::Value;
use std::process::ExitCode;

fn events_per_sec(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = serde_json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    json.get("metrics")
        .and_then(|m| m.get("events_per_sec"))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{path} has no metrics.events_per_sec"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.70f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    let [baseline, fresh] = files.as_slice() else {
        eprintln!("usage: perf_check <baseline.json> <fresh.json> [--tolerance 0.70]");
        return ExitCode::FAILURE;
    };

    let (base_eps, fresh_eps) = match (events_per_sec(baseline), events_per_sec(fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("perf_check: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let floor = base_eps * tolerance;
    println!(
        "baseline {base_eps:.0} ev/s, fresh {fresh_eps:.0} ev/s, floor {floor:.0} ev/s \
         (tolerance {tolerance:.2})"
    );
    if fresh_eps < floor {
        eprintln!(
            "perf_check: REGRESSION — fresh throughput is {:.1}% of baseline (floor {:.0}%)",
            100.0 * fresh_eps / base_eps,
            100.0 * tolerance
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf_check: OK ({:.1}% of baseline)",
        100.0 * fresh_eps / base_eps
    );
    ExitCode::SUCCESS
}
