//! Compares two `BENCH_engine_throughput.json` snapshots and fails
//! (exit 1) when any gated throughput metric in the fresh run drops
//! more than 30% below the committed baseline.
//!
//! Usage: `perf_check <baseline.json> <fresh.json> [--tolerance 0.70]`
//!
//! Two metrics are gated: `events_per_sec` (the parallel replay
//! headline) and `compiled_events_per_sec` (the single-threaded
//! tick-engine replay rate). A metric missing from the *baseline* is
//! skipped with a warning — older baselines predate the tick path —
//! while a metric missing from the *fresh* snapshot is a hard failure:
//! the benchmark stopped reporting something it is supposed to gate.
//!
//! The tolerance is the fraction of the baseline the fresh run must
//! reach — 0.70 means "no more than a 30% regression". CI runners are
//! noisy, so the gate is deliberately loose: it exists to catch
//! order-of-magnitude slips (an accidental `O(B)` scan back in the
//! hot path), not 5% jitter.

use serde::Value;
use std::process::ExitCode;

/// Throughput metrics the gate enforces, in report order.
const GATED_METRICS: &[&str] = &["events_per_sec", "compiled_events_per_sec"];

fn load_metrics(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = serde_json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    json.get("metrics")
        .cloned()
        .ok_or_else(|| format!("{path} has no metrics object"))
}

fn metric(metrics: &Value, name: &str) -> Option<f64> {
    metrics.get(name).and_then(Value::as_f64)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.70f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance needs a numeric argument");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    let [baseline, fresh] = files.as_slice() else {
        eprintln!("usage: perf_check <baseline.json> <fresh.json> [--tolerance 0.70]");
        return ExitCode::FAILURE;
    };

    let (base, new) = match (load_metrics(baseline), load_metrics(fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("perf_check: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let mut gated = 0usize;
    for &name in GATED_METRICS {
        let Some(base_eps) = metric(&base, name) else {
            println!("perf_check: baseline has no metrics.{name} — skipping (pre-tick baseline?)");
            continue;
        };
        let Some(fresh_eps) = metric(&new, name) else {
            eprintln!("perf_check: fresh snapshot dropped metrics.{name} — failing");
            failed = true;
            continue;
        };
        gated += 1;
        let floor = base_eps * tolerance;
        let pct = 100.0 * fresh_eps / base_eps;
        println!(
            "{name}: baseline {base_eps:.0} ev/s, fresh {fresh_eps:.0} ev/s, \
             floor {floor:.0} ev/s (tolerance {tolerance:.2})"
        );
        if fresh_eps < floor {
            eprintln!(
                "perf_check: REGRESSION — {name} is {pct:.1}% of baseline (floor {:.0}%)",
                100.0 * tolerance
            );
            failed = true;
        } else {
            println!("perf_check: {name} OK ({pct:.1}% of baseline)");
        }
    }
    if gated == 0 && !failed {
        eprintln!("perf_check: no gated metric present in the baseline — nothing was checked");
        return ExitCode::FAILURE;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
