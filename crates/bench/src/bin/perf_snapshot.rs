//! Writes `BENCH_<experiment>.json` perf snapshots into `results/`
//! (or the directory given as the first argument).
//!
//! Two snapshots:
//! * `BENCH_e1_theorem1.json` — wall time + result metrics of a
//!   reduced Theorem 1 sweep (the flagship experiment);
//! * `BENCH_engine_throughput.json` — a pure engine sweep (First Fit
//!   over random workloads) with per-worker load-balance reports from
//!   `dbp_par::par_map_report`.

use dbp_bench::perf::measure;
use dbp_core::{run_packing, FirstFit};
use dbp_numeric::rat;
use dbp_workloads::RandomWorkload;
use serde::Value;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dir = args.get(1).map(String::as_str).unwrap_or("results");
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).expect("create output directory");

    // Snapshot 1: the Theorem 1 sweep at a CI-sized configuration.
    let (mus, n, seeds_per_mu) = (vec![1u32, 2, 4], 36usize, 8u64);
    let ((rows, _table), snap) = measure("e1_theorem1", || {
        dbp_bench::e1_theorem1::run(&mus, n, seeds_per_mu)
    });
    let instances: usize = rows.iter().map(|r| r.instances).sum();
    let snap = snap
        .with_metric("mus", Value::Int(mus.len() as i128))
        .with_metric("items_per_instance", Value::Int(n as i128))
        .with_metric("seeds_per_mu", Value::Int(seeds_per_mu as i128))
        .with_metric("instances_measured", Value::Int(instances as i128));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 2: raw engine throughput with worker load balance.
    let (instances, items_each) = (64u64, 200usize);
    let seeds: Vec<u64> = (0..instances).collect();
    let ((usages, workers), snap) = measure("engine_throughput", || {
        dbp_par::par_map_report(&seeds, |&seed| {
            let inst = RandomWorkload::with_mu(items_each, rat(4, 1), seed).generate();
            let out = run_packing(&inst, &mut FirstFit::new()).unwrap();
            out.total_usage().to_f64()
        })
    });
    let total_events = instances as i128 * items_each as i128 * 2; // arrive + depart
    let mean_usage = usages.iter().sum::<f64>() / usages.len() as f64;
    let events_per_sec = total_events as f64 / (snap.wall_ms() / 1e3);
    let snap = snap
        .with_metric("instances", Value::Int(instances as i128))
        .with_metric("items_per_instance", Value::Int(items_each as i128))
        .with_metric("engine_events", Value::Int(total_events))
        .with_metric("events_per_sec", Value::Float(events_per_sec))
        .with_metric("mean_total_usage", Value::Float(mean_usage))
        .with_workers(&workers);
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());
}
