//! Writes `BENCH_<experiment>.json` perf snapshots into `results/`
//! (or the directory given as the first argument).
//!
//! Eight snapshots:
//! * `BENCH_e1_theorem1.json` — wall time + result metrics of a
//!   reduced Theorem 1 sweep (the flagship experiment);
//! * `BENCH_engine_throughput.json` — the pure engine sweep, now
//!   through the **tick-compiled integer path**: instances are
//!   generated and compiled outside the timer (they are workload
//!   setup, not engine work), then replayed through `TickEngine`
//!   with per-worker load-balance reports from
//!   `dbp_par::par_map_report`. Every throughput arm repeats its
//!   pass until a timed window spans ≥ 200 ms and takes the best of
//!   interleaved rounds, the same protocol as the overhead
//!   snapshots. The snapshot also records the single-threaded
//!   compiled and Rational-engine replay rates so the integer-path
//!   speedup is visible in one file;
//! * `BENCH_tick_compile.json` — compile-then-run economics: per
//!   workload shape, the compile cost, the tick replay rate, the
//!   exact Rational replay rate on the *same* instances, and the
//!   speedup. Outcomes are asserted bit-identical while measuring;
//! * `BENCH_stream.json` — streaming-session overhead: the snapshot-2
//!   batch replayed through one-event-at-a-time `Session`s (tick and
//!   exact) against the batch tick rate measured in the same run,
//!   with `stream_vs_batch_ratio` as the gated headline;
//! * `BENCH_opt_solver.json` — the exact repacking adversary: the
//!   same random event profiles solved through the incremental
//!   warm-started branch-and-bound sweep (`opt_profile`, fresh
//!   canonical memo per pass) and through the seed per-interval
//!   pipeline (re-filter the active set per window, `Rational` DFS
//!   with a per-pass multiset memo, `L2`/FFD bracket above 28
//!   items), in interleaved best-of rounds. `perf_check` gates
//!   `intervals_per_sec` against the baseline and the same-run
//!   `speedup_vs_seed ≥ 10`;
//! * `BENCH_obs_overhead.json` — observability overhead: the same
//!   exact-session replay bare, observed (a ring-buffered
//!   `TelemetrySink` on the engine's observer hooks), with stream
//!   telemetry (exact `vol`/`span` accounting), and with the full
//!   stack, measured as interleaved best-of rounds. `perf_check`
//!   gates `observed_vs_unobserved_ratio ≥ 0.85` and
//!   `full_stack_vs_unobserved_ratio ≥ 0.70`, same-run;
//! * `BENCH_profile.json` — the in-engine profiler, two questions in
//!   one file. *Where does the time go*: the staircase series
//!   replayed with a [`Profiler`] attached on both fit paths — the
//!   exact engine's `Θ(n·B)` linear `FirstFit` scan and the
//!   `Backend::Auto` tick path — recording per-phase self-time
//!   shares and the per-arrival probe histograms (bins scanned, tree
//!   descent depth, gcd steps). *What does asking cost*: interleaved
//!   best-of rounds of the same replay bare, with a detached (inert)
//!   probe on the session's `&mut dyn` hook, and with a live
//!   profiler. `perf_check` gates the same-run ratios
//!   `detached_vs_unobserved_ratio ≥ 0.95` and
//!   `attached_vs_unobserved_ratio ≥ 0.70`;
//! * `BENCH_fit_scaling.json` — the concurrency scaling series: a
//!   staircase workload holding `B ∈ {100, 1000, 10000}` bins open
//!   at once, replayed through the exact engine's linear-scan
//!   `FirstFit` and the `Backend::Auto` route every untraced run
//!   takes (`FirstFitFast`, tick-compiled, adaptive linear→`FitTree`
//!   scan), recording both throughputs and the speedup. This is the
//!   `Θ(n·B)` vs `O(n log B)` separation. The file also carries the
//!   gap-scan micro-arm: the chunked 8-lane First Fit sweep against
//!   its scalar reference on a full-depth `B = 100` scan, with
//!   `chunked_vs_scalar_scan_ratio ≥ 1.0` gated same-run by
//!   `perf_check`.
//!
//! Pass `--skip-scaling` to omit the (slower) scaling series and
//! trim the profile share series to `B = 100`, e.g. in quick local
//! runs.

use dbp_analysis::solver::{first_fit_decreasing, lower_bound_l2};
use dbp_analysis::{opt_profile, reference_min_bins, ExactBinPacking, OptConfig};
use dbp_bench::perf::measure;
use dbp_core::scan;
use dbp_core::session::{Backend, Event, Session, TickGrid};
use dbp_core::{
    event_schedule, CompiledInstance, FirstFit, FirstFitFast, Instance, NoopProbe,
    PackingAlgorithm, PhaseProbe, ProbeCounter, Runner, TickPolicy,
};
use dbp_numeric::rat;
use dbp_obs::{Profiler, TelemetrySink};
use dbp_simcore::EventClass;
use dbp_workloads::RandomWorkload;
use serde::Value;
use std::path::Path;
use std::time::Instant;

/// A staircase of overlapping items: item `i` lives on `[i, i+window)`
/// with 4 of 5 items sized above 1/2 (forcing singleton bins) and the
/// rest small (slotting into earlier bins). Steady-state concurrency
/// tracks `window`.
fn staircase(n: i128, window: i128) -> Instance {
    let mut b = Instance::builder();
    for i in 0..n {
        let size = if i % 5 == 0 {
            rat(11 + (i * 13) % 23, 100)
        } else {
            rat(51 + (i * 7) % 49, 100)
        };
        b = b.item(size, rat(i, 1), rat(i + window, 1));
    }
    b.build().expect("staircase is well-formed")
}

/// Replays `inst` through `algo` on an explicit backend, returning
/// events/second and the peak open-bin count.
fn backend_throughput(
    inst: &Instance,
    backend: Backend,
    algo: &mut dyn PackingAlgorithm,
) -> (f64, usize) {
    let start = Instant::now();
    let out = Runner::new(inst)
        .backend(backend)
        .run(algo)
        .expect("replay succeeds");
    let secs = start.elapsed().as_secs_f64();
    ((2 * inst.len()) as f64 / secs, out.max_open_bins())
}

/// Minimum span of one timed throughput window. A single pass over
/// the 64×200 batch is 2–25 ms depending on the engine — short
/// enough for one scheduler preemption to swing the reading 2× —
/// so every arm repeats its pass until the window covers at least
/// this span, and the calibrated repeat count is recorded in the
/// snapshot.
const HEAD_WINDOW_SECS: f64 = 0.2;

/// Interleaved best-of rounds for the headline throughput arms —
/// same one-sided-contention reasoning as [`OBS_ROUNDS`], fewer
/// rounds because the windows are ≥ 200 ms each.
const HEAD_ROUNDS: usize = 5;

/// Repeats needed for a timed window to span [`HEAD_WINDOW_SECS`],
/// from one calibration pass's duration.
fn reps_for(pass_secs: f64) -> usize {
    (HEAD_WINDOW_SECS / pass_secs.max(1e-9)).ceil().max(1.0) as usize
}

/// Single-threaded tick replay rate over a batch of compiled
/// instances, `reps` passes per timed window, in events/second.
fn tick_replay_rate(compiled: &[CompiledInstance], events: i128, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        for c in compiled {
            c.run(TickPolicy::FirstFit).expect("tick replay succeeds");
        }
    }
    (events * reps as i128) as f64 / start.elapsed().as_secs_f64()
}

/// Single-threaded Rational-engine replay rate over the same batch,
/// `reps` passes per timed window, in events/second.
fn rational_replay_rate(insts: &[Instance], events: i128, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        for inst in insts {
            Runner::new(inst)
                .run(&mut FirstFitFast::new())
                .expect("replay succeeds");
        }
    }
    (events * reps as i128) as f64 / start.elapsed().as_secs_f64()
}

/// The canonical wire stream of an instance, rendered as session
/// events (the batch engine's own order).
fn events_of(inst: &Instance) -> Vec<Event> {
    event_schedule(inst)
        .iter()
        .map(|entry| match entry.class {
            EventClass::Arrival => Event::Arrive {
                id: entry.payload,
                size: inst.item(entry.payload).size,
                time: entry.time,
            },
            EventClass::Departure => Event::Depart {
                id: entry.payload,
                time: entry.time,
            },
            EventClass::Control => unreachable!("instances schedule no control events"),
        })
        .collect()
}

/// Single-threaded streaming-session rate over pre-rendered event
/// streams, `reps` passes per timed window, in events/second.
/// `grids[i]`, when present, puts session `i` on the integer tick
/// engine; checkpoint journaling is off so the timer sees engine
/// work, not bookkeeping.
fn stream_rate(
    streams: &[Vec<Event>],
    grids: &[Option<TickGrid>],
    events: i128,
    reps: usize,
) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        for (events_i, grid) in streams.iter().zip(grids) {
            let mut builder = Session::builder(FirstFitFast::new()).without_checkpoints();
            if let Some(grid) = grid {
                builder = builder.grid(*grid);
            }
            let mut session = builder.build().expect("session builds");
            session.ingest(events_i).expect("canonical stream is valid");
            session.finish().expect("finish succeeds");
        }
    }
    (events * reps as i128) as f64 / start.elapsed().as_secs_f64()
}

/// Batch passes per timed window of the observability-overhead
/// comparison. Kept at one ~20 ms pass: shorter windows give a
/// contention burst fewer chances to contaminate *every* window of
/// an arm, which matters more than per-window averaging here.
const OBS_REPS: usize = 1;

/// Interleaved best-of rounds per arm. CI boxes are often a single
/// shared core, so any window can be slowed by unrelated load — but
/// contention is one-sided (it only ever *slows* a run), which makes
/// the per-arm maximum over many short interleaved rounds the robust
/// estimator for a ratio gate.
const OBS_ROUNDS: usize = 16;

/// Streaming replay rate of one `OBS_REPS`-pass window over the
/// batch, with optional stream telemetry (`vol`/`span` accounting)
/// and an optional ring-buffered [`TelemetrySink`] watching every
/// engine event. Exact engine on every arm of the comparison —
/// observers force it anyway.
fn observed_stream_rate(streams: &[Vec<Event>], events: i128, telemetry: bool, sink: bool) -> f64 {
    let start = Instant::now();
    for _ in 0..OBS_REPS {
        for events_i in streams {
            let mut ring = TelemetrySink::new().ring(256);
            let mut builder = Session::builder(FirstFitFast::new()).without_checkpoints();
            if telemetry {
                builder = builder.telemetry();
            }
            if sink {
                builder = builder.observer(&mut ring);
            }
            let mut session = builder.build().expect("session builds");
            session.ingest(events_i).expect("canonical stream is valid");
            session.finish().expect("finish succeeds");
        }
    }
    (events * OBS_REPS as i128) as f64 / start.elapsed().as_secs_f64()
}

/// Interleaved best-of rounds per profiler cost arm — same
/// single-core-CI reasoning as [`OBS_ROUNDS`].
const PROF_ROUNDS: usize = 16;

/// Interleaved best-of rounds per fit-scaling arm. Fewer than the
/// cost arms: the `B = 10000` exact linear replay is seconds, not
/// milliseconds, and the speedup it anchors is orders of magnitude —
/// round-to-round jitter cannot flip its direction.
const FIT_ROUNDS: usize = 3;

/// Chunked-vs-scalar gap-scan micro-benchmark, the same-run floor
/// behind `chunked_vs_scalar_scan_ratio`. A `B = 100` residual-gap
/// array whose only feasible slot is the last forces every First Fit
/// query to walk the full array — the worst case the 8-lane chunked
/// sweep exists for — so the ratio isolates the sweep kernels from
/// engine bookkeeping. Interleaved best-of [`FIT_ROUNDS`]; the query
/// count puts each window in the tens of milliseconds.
fn scan_micro_rates() -> (f64, f64) {
    const BINS: usize = 100;
    const QUERIES: usize = 2_000_000;
    let mut gaps = vec![3u64; BINS];
    gaps[BINS - 1] = 80;
    let size = 50u64;
    let mut chunked_best = 0f64;
    let mut scalar_best = 0f64;
    for _ in 0..FIT_ROUNDS {
        let start = Instant::now();
        for _ in 0..QUERIES {
            std::hint::black_box(scan::first_fit(std::hint::black_box(&gaps), size));
        }
        chunked_best = chunked_best.max(QUERIES as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..QUERIES {
            std::hint::black_box(scan::first_fit_scalar(std::hint::black_box(&gaps), size));
        }
        scalar_best = scalar_best.max(QUERIES as f64 / start.elapsed().as_secs_f64());
    }
    (chunked_best, scalar_best)
}

/// The *seed* adversary pipeline, reconstructed for the same-run
/// comparison behind `speedup_vs_seed`: re-filter the active item set
/// for every event window (the `O(n²)` term the incremental sweep
/// removed), solve windows of ≤ 28 items exactly through the
/// `Rational` reference search with a per-pass sorted-multiset memo
/// (the seed solver's memo key), and fall back to the `L2`/FFD
/// bracket above — the seed's `max_exact_items = 28` default.
fn seed_profile_intervals(inst: &Instance) -> usize {
    use std::collections::HashMap;
    let times = inst.event_times();
    let mut memo: HashMap<Vec<dbp_numeric::Rational>, usize> = HashMap::new();
    let mut intervals = 0usize;
    for w in times.windows(2) {
        let mut active: Vec<dbp_numeric::Rational> = inst
            .items()
            .iter()
            .filter(|r| r.active_at(w[0]))
            .map(|r| r.size)
            .collect();
        if active.is_empty() {
            continue;
        }
        active.sort_unstable_by(|a, b| b.cmp(a));
        if active.len() <= 28 {
            if let Some(&v) = memo.get(&active) {
                std::hint::black_box(v);
            } else {
                let v = reference_min_bins(&active);
                memo.insert(active, v);
            }
        } else {
            std::hint::black_box((lower_bound_l2(&active), first_fit_decreasing(&active)));
        }
        intervals += 1;
    }
    intervals
}

/// Interleaved best-of rounds for the adversary-solver comparison.
/// The seed arm's windows are hundreds of milliseconds, so few rounds
/// suffice; contention is one-sided as ever.
const OPT_ROUNDS: usize = 3;

/// One profiled replay of `inst`: runs `algo` on `backend` with a
/// fresh [`Profiler`] attached and renders the attribution — phase
/// self-time shares and the per-arrival probe histograms — as one
/// JSON series entry.
fn profiled_entry(
    inst: &Instance,
    bins: i128,
    arm: &str,
    backend: Backend,
    algo: &mut dyn PackingAlgorithm,
) -> Value {
    let mut prof = Profiler::new();
    let start = Instant::now();
    let out = Runner::new(inst)
        .backend(backend)
        .probe(&mut prof)
        .run(algo)
        .expect("profiled replay succeeds");
    let eps = (2 * inst.len()) as f64 / start.elapsed().as_secs_f64();
    let shares: Vec<(String, Value)> = prof
        .phase_shares()
        .iter()
        .map(|(p, s)| (p.name().to_string(), Value::Float(*s)))
        .collect();
    let fit_scan_share = shares
        .iter()
        .find(|(n, _)| n == "fit_scan")
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or(0.0);
    let probes: Vec<(String, Value)> = ProbeCounter::ALL
        .iter()
        .map(|&c| {
            let h = prof.counter(c);
            (
                c.name().to_string(),
                Value::Object(vec![
                    ("samples".into(), Value::Int(h.count() as i128)),
                    ("mean".into(), Value::Float(h.mean().unwrap_or(0.0))),
                    ("max".into(), Value::Float(h.max().unwrap_or(0.0))),
                ]),
            )
        })
        .collect();
    println!(
        "  profile: B={bins:>6} {arm:<12} {eps:>12.0} ev/s \
         fit_scan={:>5.1}% bins_scanned≈{:>7.1} tree_depth≈{:>5.1}",
        100.0 * fit_scan_share,
        prof.counter(ProbeCounter::BinsScanned)
            .mean()
            .unwrap_or(0.0),
        prof.counter(ProbeCounter::TreeDepth).mean().unwrap_or(0.0),
    );
    Value::Object(vec![
        ("target_bins".into(), Value::Int(bins)),
        ("items".into(), Value::Int(inst.len() as i128)),
        ("arm".into(), Value::Str(arm.into())),
        (
            "max_open_bins".into(),
            Value::Int(out.max_open_bins() as i128),
        ),
        ("events_per_sec".into(), Value::Float(eps)),
        ("phase_shares".into(), Value::Object(shares)),
        ("probes".into(), Value::Object(probes)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let skip_scaling = args.iter().any(|a| a == "--skip-scaling");
    let dir = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("results");
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).expect("create output directory");

    // Snapshot 1: the Theorem 1 sweep at a CI-sized configuration.
    let (mus, n, seeds_per_mu) = (vec![1u32, 2, 4], 36usize, 8u64);
    let ((rows, _table), snap) = measure("e1_theorem1", || {
        dbp_bench::e1_theorem1::run(&mus, n, seeds_per_mu)
    });
    let instances: usize = rows.iter().map(|r| r.instances).sum();
    let snap = snap
        .with_metric("mus", Value::Int(mus.len() as i128))
        .with_metric("items_per_instance", Value::Int(n as i128))
        .with_metric("seeds_per_mu", Value::Int(seeds_per_mu as i128))
        .with_metric("instances_measured", Value::Int(instances as i128));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 2: raw engine throughput through the tick-compiled
    // integer engine. Workload generation and compilation are setup,
    // not engine work — they happen once, outside the timer, and the
    // compiled schedules are reused by every replay.
    let (instances, items_each) = (64u64, 200usize);
    let insts: Vec<Instance> = (0..instances)
        .map(|seed| RandomWorkload::with_mu(items_each, rat(4, 1), seed).generate())
        .collect();
    let compiled: Vec<CompiledInstance> = insts
        .iter()
        .map(|inst| CompiledInstance::compile(inst).expect("random workloads compile"))
        .collect();
    let total_events = instances as i128 * items_each as i128 * 2; // arrive + depart
                                                                   // Three arms — parallel tick replay (the headline), the
                                                                   // single-threaded tick rate, and the exact Rational rate on the
                                                                   // same batch. One pass is only a few milliseconds, so each arm is
                                                                   // first calibrated to a ≥ HEAD_WINDOW_SECS repeat count, then the
                                                                   // arms run as interleaved best-of-HEAD_ROUNDS windows.
    let (payload, snap) = measure("engine_throughput", || {
        let par_pass = |compiled: &[CompiledInstance]| {
            dbp_par::par_map_report(compiled, |c| {
                c.run(TickPolicy::FirstFit)
                    .expect("tick replay succeeds")
                    .total_usage()
                    .to_f64()
            })
        };
        let start = Instant::now();
        let (usages, workers) = par_pass(&compiled);
        let par_reps = reps_for(start.elapsed().as_secs_f64());
        let tick_reps =
            reps_for(total_events as f64 / tick_replay_rate(&compiled, total_events, 1));
        let rational_reps =
            reps_for(total_events as f64 / rational_replay_rate(&insts, total_events, 1));
        let mut par_best = 0f64;
        let mut tick_best = 0f64;
        let mut rational_best = 0f64;
        for _ in 0..HEAD_ROUNDS {
            let start = Instant::now();
            for _ in 0..par_reps {
                par_pass(&compiled);
            }
            let par_eps = (total_events * par_reps as i128) as f64 / start.elapsed().as_secs_f64();
            par_best = par_best.max(par_eps);
            tick_best = tick_best.max(tick_replay_rate(&compiled, total_events, tick_reps));
            rational_best =
                rational_best.max(rational_replay_rate(&insts, total_events, rational_reps));
        }
        (
            usages,
            workers,
            par_best,
            tick_best,
            rational_best,
            [par_reps, tick_reps, rational_reps],
        )
    });
    let (usages, workers, events_per_sec, compiled_eps, rational_eps, reps) = payload;
    let mean_usage = usages.iter().sum::<f64>() / usages.len() as f64;
    println!(
        "  engine: parallel={events_per_sec:>12.0} ev/s tick={compiled_eps:>12.0} ev/s \
         rational={rational_eps:>12.0} ev/s (reps {}/{}/{})",
        reps[0], reps[1], reps[2]
    );
    // `events_per_sec` and `compiled_events_per_sec` are the
    // perf_check-gated metrics; `rational_events_per_sec` is the
    // exact-arithmetic comparison point.
    let snap = snap
        .with_metric("algorithm", Value::Str("TickEngine(FirstFit)".into()))
        .with_metric("instances", Value::Int(instances as i128))
        .with_metric("items_per_instance", Value::Int(items_each as i128))
        .with_metric("engine_events", Value::Int(total_events))
        .with_metric("timed_window_secs", Value::Float(HEAD_WINDOW_SECS))
        .with_metric("best_of_rounds", Value::Int(HEAD_ROUNDS as i128))
        .with_metric("window_repeats", Value::Int(reps[0] as i128))
        .with_metric("events_per_sec", Value::Float(events_per_sec))
        .with_metric("compiled_events_per_sec", Value::Float(compiled_eps))
        .with_metric("rational_events_per_sec", Value::Float(rational_eps))
        .with_metric("mean_total_usage", Value::Float(mean_usage))
        .with_workers(&workers);
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 3: compile-then-run economics — compile cost, tick
    // replay rate, and the exact Rational rate on identical
    // instances, asserting bit-identical outcomes while measuring.
    let (series, snap) = measure("tick_compile", || {
        let mut series = Vec::new();
        let shapes: Vec<(String, Vec<Instance>)> = vec![
            (
                "random_mu4_64x200".into(),
                (0..64u64)
                    .map(|seed| RandomWorkload::with_mu(200, rat(4, 1), seed).generate())
                    .collect(),
            ),
            ("staircase_10000x500".into(), vec![staircase(10_000, 500)]),
        ];
        for (label, insts) in shapes {
            let events: i128 = insts.iter().map(|i| 2 * i.len() as i128).sum();
            let start = Instant::now();
            let compiled: Vec<CompiledInstance> = insts
                .iter()
                .map(|i| CompiledInstance::compile(i).expect("shape compiles"))
                .collect();
            let compile_ms = start.elapsed().as_secs_f64() * 1e3;
            let tick_reps = reps_for(events as f64 / tick_replay_rate(&compiled, events, 1));
            let tick_eps = tick_replay_rate(&compiled, events, tick_reps);
            let rational_reps = reps_for(events as f64 / rational_replay_rate(&insts, events, 1));
            let rational_eps = rational_replay_rate(&insts, events, rational_reps);
            // The whole point of the tick path: same bits, less time.
            for (inst, c) in insts.iter().zip(&compiled) {
                let tick = c.run(TickPolicy::FirstFit).unwrap();
                let exact = Runner::new(inst).run(&mut FirstFit::new()).unwrap();
                assert_eq!(tick, exact, "tick outcome diverged on {label}");
            }
            let speedup = tick_eps / rational_eps;
            println!(
                "  {label:<24} events={events:>6} compile={compile_ms:>7.2} ms \
                 rational={rational_eps:>12.0} ev/s tick={tick_eps:>12.0} ev/s ({speedup:.1}x)"
            );
            series.push(Value::Object(vec![
                ("workload".into(), Value::Str(label)),
                ("instances".into(), Value::Int(insts.len() as i128)),
                ("engine_events".into(), Value::Int(events)),
                ("compile_ms".into(), Value::Float(compile_ms)),
                ("rational_events_per_sec".into(), Value::Float(rational_eps)),
                ("tick_events_per_sec".into(), Value::Float(tick_eps)),
                ("speedup".into(), Value::Float(speedup)),
            ]));
        }
        series
    });
    let snap = snap
        .with_metric("algorithms", Value::Str("FirstFit vs TickEngine".into()))
        .with_metric("series", Value::Array(series));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 4: streaming-session overhead. The same 64×200 batch
    // from snapshot 2 is replayed three ways in one run — the batch
    // tick engine, tick-backed sessions fed one event at a time, and
    // exact sessions — so `stream_vs_batch_ratio` compares numbers
    // from the same machine under the same load. Event streams and
    // grids are rendered outside the timers (wire decoding is the
    // producer's cost, not the session's). The streaming contract in
    // CI: sessions keep at least 70% of the batch tick rate
    // (perf_check gates the ratio and the absolute rate).
    let streams: Vec<Vec<Event>> = insts.iter().map(events_of).collect();
    let grids: Vec<Option<TickGrid>> = insts
        .iter()
        .map(|inst| Some(TickGrid::for_instance(inst).expect("random workloads compile")))
        .collect();
    let no_grids: Vec<Option<TickGrid>> = vec![None; insts.len()];
    let (rates, snap) = measure("stream", || {
        // Calibrate each arm to a ≥ HEAD_WINDOW_SECS window, then
        // interleave best-of rounds so the gated ratio compares
        // windows taken under the same load.
        let batch_reps =
            reps_for(total_events as f64 / tick_replay_rate(&compiled, total_events, 1));
        let stream_reps =
            reps_for(total_events as f64 / stream_rate(&streams, &grids, total_events, 1));
        let exact_reps =
            reps_for(total_events as f64 / stream_rate(&streams, &no_grids, total_events, 1));
        let mut best = [0f64; 3];
        for _ in 0..HEAD_ROUNDS {
            best[0] = best[0].max(tick_replay_rate(&compiled, total_events, batch_reps));
            best[1] = best[1].max(stream_rate(&streams, &grids, total_events, stream_reps));
            best[2] = best[2].max(stream_rate(&streams, &no_grids, total_events, exact_reps));
        }
        best
    });
    let [batch_eps, stream_eps, exact_stream_eps] = rates;
    let ratio = stream_eps / batch_eps;
    println!(
        "  stream: batch tick={batch_eps:>12.0} ev/s session tick={stream_eps:>12.0} ev/s \
         ({:.0}% of batch) exact session={exact_stream_eps:>12.0} ev/s",
        100.0 * ratio
    );
    let snap = snap
        .with_metric("algorithm", Value::Str("Session(FirstFitFast)".into()))
        .with_metric("instances", Value::Int(instances as i128))
        .with_metric("items_per_instance", Value::Int(items_each as i128))
        .with_metric("engine_events", Value::Int(total_events))
        .with_metric("timed_window_secs", Value::Float(HEAD_WINDOW_SECS))
        .with_metric("best_of_rounds", Value::Int(HEAD_ROUNDS as i128))
        .with_metric("batch_tick_events_per_sec", Value::Float(batch_eps))
        .with_metric("stream_events_per_sec", Value::Float(stream_eps))
        .with_metric(
            "stream_exact_events_per_sec",
            Value::Float(exact_stream_eps),
        )
        .with_metric("stream_vs_batch_ratio", Value::Float(ratio));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 5: observability overhead. The exact-session replay
    // from snapshot 4 runs four ways — bare, *observed* (a
    // ring-buffered TelemetrySink on the engine's observer hooks, the
    // sense of `arrive_observed`), telemetry only (the session's
    // exact vol/span accounting), and the full stack (both) — in
    // interleaved best-of rounds, so the gated ratios compare
    // same-machine, same-load numbers and the breakdown shows where
    // any regression lives. The contract (perf_check, same-run): an
    // attached sink keeps ≥ 85% of the unobserved rate, and the full
    // pipeline keeps ≥ 70%.
    let (rates, snap) = measure("obs_overhead", || {
        // [(telemetry, sink)]: unobserved, observed, telemetry, full.
        let arms = [(false, false), (false, true), (true, false), (true, true)];
        let mut best = [0f64; 4];
        for _ in 0..OBS_ROUNDS {
            for (i, &(telemetry, sink)) in arms.iter().enumerate() {
                let rate = observed_stream_rate(&streams, total_events, telemetry, sink);
                best[i] = best[i].max(rate);
            }
        }
        best
    });
    let [unobserved_eps, observed_eps, telemetry_eps, full_eps] = rates;
    let ratio = observed_eps / unobserved_eps;
    let full_ratio = full_eps / unobserved_eps;
    println!(
        "  obs: unobserved={unobserved_eps:>12.0} ev/s observed={observed_eps:>12.0} ev/s \
         ({:.0}% kept) telemetry={telemetry_eps:>12.0} ev/s full={full_eps:>12.0} ev/s \
         ({:.0}% kept)",
        100.0 * ratio,
        100.0 * full_ratio
    );
    let snap = snap
        .with_metric(
            "algorithm",
            Value::Str("Session(FirstFitFast)+TelemetrySink".into()),
        )
        .with_metric("instances", Value::Int(instances as i128))
        .with_metric("items_per_instance", Value::Int(items_each as i128))
        .with_metric("engine_events", Value::Int(total_events * OBS_REPS as i128))
        .with_metric("best_of_rounds", Value::Int(OBS_ROUNDS as i128))
        .with_metric("unobserved_events_per_sec", Value::Float(unobserved_eps))
        .with_metric("observed_events_per_sec", Value::Float(observed_eps))
        .with_metric("telemetry_only_events_per_sec", Value::Float(telemetry_eps))
        .with_metric("full_stack_events_per_sec", Value::Float(full_eps))
        .with_metric("observed_vs_unobserved_ratio", Value::Float(ratio))
        .with_metric("full_stack_vs_unobserved_ratio", Value::Float(full_ratio));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 6: the in-engine profiler. The share series answers
    // "where does the time go" — the staircase replayed with a
    // Profiler attached on both fit paths, per concurrency level.
    // The cost arms answer "what does asking cost" — one staircase
    // replayed bare, with a detached (inert) probe on the session's
    // `&mut dyn` hook, and with a live profiler, as interleaved
    // best-of rounds on the exact engine, where per-event scan work
    // is the profiler's actual audience. perf_check gates the
    // same-run ratios: detached ≥ 0.95, attached ≥ 0.70. The tick
    // path's equivalents ride along ungated for the record — its
    // per-event work is tens of nanoseconds, so a live every-event
    // profiler dominates it by construction.
    let profile_bins: &[i128] = if skip_scaling {
        println!("profile: share series trimmed to B=100 (--skip-scaling)");
        &[100]
    } else {
        &[100, 1000, 10_000]
    };
    let (payload, snap) = measure("profile", || {
        let mut series = Vec::new();
        for &bins in profile_bins {
            let n = (2 * bins).max(5000);
            let inst = staircase(n, bins);
            series.push(profiled_entry(
                &inst,
                bins,
                "linear_exact",
                Backend::Exact,
                &mut FirstFit::new(),
            ));
            series.push(profiled_entry(
                &inst,
                bins,
                "auto_tick",
                Backend::Auto,
                &mut FirstFitFast::new(),
            ));
        }
        // Cost arms, exact engine: [bare, detached, attached].
        let cost_inst = staircase(5000, 256);
        let cost_events = (2 * cost_inst.len()) as f64;
        let mut exact_best = [0f64; 3];
        let mut tick_best = [0f64; 3];
        let compiled_cost = CompiledInstance::compile(&cost_inst).expect("staircase compiles");
        for _ in 0..PROF_ROUNDS {
            for (i, best) in exact_best.iter_mut().enumerate() {
                let mut noop = NoopProbe;
                let mut prof = Profiler::new();
                let start = Instant::now();
                let mut runner = Runner::new(&cost_inst).backend(Backend::Exact);
                match i {
                    1 => runner = runner.probe(&mut noop),
                    2 => runner = runner.probe(&mut prof),
                    _ => {}
                }
                runner.run(&mut FirstFit::new()).expect("replay succeeds");
                *best = best.max(cost_events / start.elapsed().as_secs_f64());
            }
            // Tick equivalents on the pre-compiled schedule, through
            // the same `&mut dyn` hook the session uses.
            for (i, best) in tick_best.iter_mut().enumerate() {
                let mut noop = NoopProbe;
                let mut prof = Profiler::new();
                let start = Instant::now();
                match i {
                    1 => {
                        compiled_cost
                            .run_probed::<dyn PhaseProbe>(TickPolicy::FirstFit, &mut noop)
                            .expect("tick replay succeeds");
                    }
                    2 => {
                        compiled_cost
                            .run_probed::<dyn PhaseProbe>(TickPolicy::FirstFit, &mut prof)
                            .expect("tick replay succeeds");
                    }
                    _ => {
                        compiled_cost
                            .run(TickPolicy::FirstFit)
                            .expect("tick replay succeeds");
                    }
                }
                *best = best.max(cost_events / start.elapsed().as_secs_f64());
            }
        }
        (series, exact_best, tick_best)
    });
    let (series, exact_best, tick_best) = payload;
    let [unobserved_eps, detached_eps, attached_eps] = exact_best;
    let [tick_bare_eps, tick_detached_eps, tick_attached_eps] = tick_best;
    let detached_ratio = detached_eps / unobserved_eps;
    let attached_ratio = attached_eps / unobserved_eps;
    println!(
        "  profile cost: bare={unobserved_eps:>12.0} ev/s detached={detached_eps:>12.0} ev/s \
         ({:.0}% kept) attached={attached_eps:>12.0} ev/s ({:.0}% kept)",
        100.0 * detached_ratio,
        100.0 * attached_ratio
    );
    let snap = snap
        .with_metric(
            "algorithm",
            Value::Str("Runner(FirstFit, exact)+Profiler".into()),
        )
        .with_metric("cost_items", Value::Int(5000))
        .with_metric("cost_window", Value::Int(256))
        .with_metric("best_of_rounds", Value::Int(PROF_ROUNDS as i128))
        .with_metric("series", Value::Array(series))
        .with_metric("unobserved_events_per_sec", Value::Float(unobserved_eps))
        .with_metric("detached_events_per_sec", Value::Float(detached_eps))
        .with_metric("attached_events_per_sec", Value::Float(attached_eps))
        .with_metric("detached_vs_unobserved_ratio", Value::Float(detached_ratio))
        .with_metric("attached_vs_unobserved_ratio", Value::Float(attached_ratio))
        .with_metric(
            "tick_unobserved_events_per_sec",
            Value::Float(tick_bare_eps),
        )
        .with_metric(
            "tick_detached_events_per_sec",
            Value::Float(tick_detached_eps),
        )
        .with_metric(
            "tick_attached_events_per_sec",
            Value::Float(tick_attached_eps),
        )
        .with_metric(
            "tick_detached_vs_unobserved_ratio",
            Value::Float(tick_detached_eps / tick_bare_eps),
        )
        .with_metric(
            "tick_attached_vs_unobserved_ratio",
            Value::Float(tick_attached_eps / tick_bare_eps),
        );
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    if skip_scaling {
        println!("skipping BENCH_opt_solver.json and BENCH_fit_scaling.json (--skip-scaling)");
        return;
    }

    // Snapshot 7: the exact repacking adversary. The same batch of
    // random event profiles is solved through the incremental
    // warm-started branch-and-bound sweep (fresh solver — hence a
    // cold canonical memo — every pass) and through the seed
    // per-interval Rational pipeline, interleaved best-of rounds.
    // Both arms run the workload they would run in production: the
    // incremental sweep at its 200-item exact default, the seed at
    // its 28-item default, on profiles whose active sets the seed can
    // still finish.
    // 2000-item instances: 4000-event profiles, the scale the
    // incremental sweep exists for — the seed pipeline re-filters
    // the full item list per window (`O(n²)`), so the gap widens
    // with profile length.
    let opt_insts: Vec<Instance> = (0..4u64)
        .map(|seed| RandomWorkload::with_mu(2000, rat(4, 1), seed).generate())
        .collect();
    let opt_config = OptConfig::default();
    let (payload, snap) = measure("opt_solver", || {
        let new_pass = |insts: &[Instance]| -> (usize, f64) {
            let mut intervals = 0usize;
            let mut exact = 0usize;
            for inst in insts {
                let profile = opt_profile(inst, &ExactBinPacking::new(), opt_config);
                exact += profile.segments.iter().filter(|s| s.is_exact()).count();
                intervals += profile.segments.len();
            }
            (intervals, exact as f64 / intervals.max(1) as f64)
        };
        let seed_pass =
            |insts: &[Instance]| -> usize { insts.iter().map(seed_profile_intervals).sum() };
        // Calibrate the (fast) incremental arm to a ≥ 200 ms window;
        // one seed pass already spans the window by itself.
        let start = Instant::now();
        let (intervals, exact_fraction) = new_pass(&opt_insts);
        let new_reps = reps_for(start.elapsed().as_secs_f64());
        let mut new_best = 0f64;
        let mut seed_best = 0f64;
        for _ in 0..OPT_ROUNDS {
            let start = Instant::now();
            for _ in 0..new_reps {
                new_pass(&opt_insts);
            }
            new_best = new_best.max((intervals * new_reps) as f64 / start.elapsed().as_secs_f64());
            let start = Instant::now();
            let seed_intervals = seed_pass(&opt_insts);
            assert_eq!(
                seed_intervals, intervals,
                "both arms must walk the same interval profile"
            );
            seed_best = seed_best.max(seed_intervals as f64 / start.elapsed().as_secs_f64());
        }
        (intervals, exact_fraction, new_best, seed_best, new_reps)
    });
    let (intervals, exact_fraction, new_ips, seed_ips, new_reps) = payload;
    let speedup = new_ips / seed_ips;
    println!(
        "  opt: incremental={new_ips:>10.0} iv/s seed={seed_ips:>10.0} iv/s ({speedup:.1}x) \
         exact={:.1}% (reps {new_reps})",
        100.0 * exact_fraction
    );
    let snap = snap
        .with_metric(
            "solver",
            Value::Str("ExactBinPacking(incremental B&B)".into()),
        )
        .with_metric("instances", Value::Int(opt_insts.len() as i128))
        .with_metric("items_per_instance", Value::Int(2000))
        .with_metric("intervals", Value::Int(intervals as i128))
        .with_metric(
            "max_exact_items",
            Value::Int(opt_config.max_exact_items as i128),
        )
        .with_metric("node_budget", Value::Int(opt_config.node_budget as i128))
        .with_metric("timed_window_secs", Value::Float(HEAD_WINDOW_SECS))
        .with_metric("best_of_rounds", Value::Int(OPT_ROUNDS as i128))
        .with_metric("window_repeats", Value::Int(new_reps as i128))
        .with_metric("intervals_per_sec", Value::Float(new_ips))
        .with_metric("seed_intervals_per_sec", Value::Float(seed_ips))
        .with_metric("speedup_vs_seed", Value::Float(speedup))
        .with_metric("solved_exact_fraction", Value::Float(exact_fraction));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());

    // Snapshot 8: linear vs tree scaling over concurrent-bin count.
    // The linear arm is the exact engine's Θ(n·B) `FirstFit` scan;
    // the auto arm is the route every untraced run takes —
    // `Backend::Auto` compiles to ticks and scans adaptively
    // (linear order under `SCAN_CROSSOVER` open bins, `FitTree`
    // above). Interleaved best-of rounds, same reasoning as the obs
    // arms.
    let (payload, snap) = measure("fit_scaling", || {
        let mut series = Vec::new();
        for &bins in &[100i128, 1000, 10_000] {
            let n = (2 * bins).max(5000);
            let inst = staircase(n, bins);
            let mut linear_best = 0f64;
            let mut auto_best = 0f64;
            let mut max_open = 0usize;
            for _ in 0..FIT_ROUNDS {
                let (auto_eps, open) =
                    backend_throughput(&inst, Backend::Auto, &mut FirstFitFast::new());
                let (linear_eps, _) =
                    backend_throughput(&inst, Backend::Exact, &mut FirstFit::new());
                auto_best = auto_best.max(auto_eps);
                linear_best = linear_best.max(linear_eps);
                max_open = open;
            }
            let speedup = auto_best / linear_best;
            println!(
                "  B={bins:>6} n={n:>6} max_open={max_open:>6} \
                 linear={linear_best:>12.0} ev/s auto={auto_best:>12.0} ev/s ({speedup:.1}x)"
            );
            series.push(Value::Object(vec![
                ("target_bins".into(), Value::Int(bins)),
                ("items".into(), Value::Int(n)),
                ("engine_events".into(), Value::Int(2 * n)),
                ("max_open_bins".into(), Value::Int(max_open as i128)),
                ("linear_events_per_sec".into(), Value::Float(linear_best)),
                ("auto_events_per_sec".into(), Value::Float(auto_best)),
                ("speedup".into(), Value::Float(speedup)),
            ]));
        }
        // The scan micro arm: the chunked sweep must never lose to
        // its scalar reference (perf_check gates the ratio same-run).
        let (chunked_qps, scalar_qps) = scan_micro_rates();
        (series, chunked_qps, scalar_qps)
    });
    let (series, chunked_qps, scalar_qps) = payload;
    let scan_ratio = chunked_qps / scalar_qps;
    println!(
        "  scan micro: chunked={chunked_qps:>12.0} q/s scalar={scalar_qps:>12.0} q/s \
         ({scan_ratio:.2}x)"
    );
    let snap = snap
        .with_metric(
            "algorithms",
            Value::Str("FirstFit(exact) vs FirstFitFast(auto)".into()),
        )
        .with_metric("best_of_rounds", Value::Int(FIT_ROUNDS as i128))
        .with_metric("chunked_scan_queries_per_sec", Value::Float(chunked_qps))
        .with_metric("scalar_scan_queries_per_sec", Value::Float(scalar_qps))
        .with_metric("chunked_vs_scalar_scan_ratio", Value::Float(scan_ratio))
        .with_metric("series", Value::Array(series));
    let path = snap.write_to(dir).expect("write snapshot");
    println!("wrote {} ({:.1} ms)", path.display(), snap.wall_ms());
}
