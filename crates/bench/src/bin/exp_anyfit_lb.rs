//! E4: Any-Fit µ+1 lower bound (gap-ladder).
fn main() {
    let (_, table) = dbp_bench::e4_anyfit::run(&[1, 2, 4, 8], &[2, 4, 8, 12, 14]);
    println!("{table}");
}
