//! E15: adversarial instance search vs random worst case, per µ.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iterations, random_n, random_seeds) = if quick { (60, 16, 8) } else { (300, 24, 24) };
    let mus: &[u32] = if quick {
        &[2, 4, 8]
    } else {
        &[1, 2, 3, 4, 6, 8, 12, 16]
    };
    let (_, table) = dbp_bench::e15_exact_adversary::run(mus, iterations, random_n, random_seeds);
    println!("{table}");
}
