//! E8: a day of cloud gaming under hourly billing.
fn main() {
    let (_, table) = dbp_bench::e8_gaming::run(&[20, 40, 80, 160], 2024);
    println!("{table}");
}
