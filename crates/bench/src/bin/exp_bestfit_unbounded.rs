//! E5: Best Fit vs First Fit separation (scatter gadget).
fn main() {
    let (_, table) = dbp_bench::e5_bestfit::run(&[2, 4, 8, 16], &[2, 4, 8, 12]);
    println!("{table}");
}
