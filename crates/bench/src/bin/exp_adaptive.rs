//! E14: the adaptive lower-bound game.
fn main() {
    let (_, table) = dbp_bench::e14_adaptive::run(&[2, 4, 8, 16], 12);
    println!("{table}");
}
