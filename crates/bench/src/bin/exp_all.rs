//! Runs every experiment (E1–E15) and figure (F1–F6) in sequence,
//! printing each table — the one-command regeneration of
//! EXPERIMENTS.md. Pass `--quick` for smaller sweeps.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, seeds) = if quick { (30, 6) } else { (60, 24) };

    println!(
        "{}",
        dbp_bench::e1_theorem1::run(&[1, 2, 4, 8, 16], n, seeds).1
    );
    println!(
        "{}",
        dbp_bench::e2_nextfit::run(&[4, 8, 16, 64, 256], &[1, 2, 4, 8]).1
    );
    println!(
        "{}",
        dbp_bench::e3_universal::run(&[2, 4, 8], &[2, 4, 8, 12]).1
    );
    println!(
        "{}",
        dbp_bench::e4_anyfit::run(&[1, 2, 4, 8], &[2, 4, 8, 12]).1
    );
    println!(
        "{}",
        dbp_bench::e5_bestfit::run(&[2, 4, 8, 16], &[2, 4, 8, 12]).1
    );
    println!(
        "{}",
        dbp_bench::e6_beta::run(&[2, 3, 4, 8], &[1, 2, 4], n, seeds / 2).1
    );
    println!(
        "{}",
        dbp_bench::e7_hybrid::run(&[1, 2, 4, 8, 16, 32], 12, n, seeds / 3).1
    );
    println!("{}", dbp_bench::e8_gaming::run(&[20, 40, 80], 2024).1);
    println!("{}", dbp_bench::e9_billing::run(2024).1);
    println!(
        "{}",
        dbp_bench::e10_certify::run(&[1, 2, 4, 8, 16], 48, seeds).1
    );
    println!(
        "{}",
        dbp_bench::e11_multidim::run(&[1, 2, 4, 8], 40, seeds / 2).1
    );
    println!(
        "{}",
        dbp_bench::e12_clairvoyance::run(&[1, 2, 4, 8, 16], 12, 40, seeds / 2).1
    );
    println!(
        "{}",
        dbp_bench::e13_standard_dbp::run(&[1, 2, 4, 8], n, seeds / 2).1
    );
    println!("{}", dbp_bench::e14_adaptive::run(&[2, 4, 8, 16], 12).1);
    println!(
        "{}",
        dbp_bench::e15_exact_adversary::run(
            &[2, 4, 8],
            if quick { 60 } else { 200 },
            16,
            seeds / 2
        )
        .1
    );

    println!("{}", dbp_bench::figures::fig1_span());
    println!("{}", dbp_bench::figures::fig2_usage_periods());
    println!("{}", dbp_bench::figures::fig3_selection());
    println!("{}", dbp_bench::figures::fig4_supplier());
    println!("{}", dbp_bench::figures::fig5_case3());
    println!("{}", dbp_bench::figures::fig6_case4());
}
