//! E7: Hybrid First Fit vs First Fit.
fn main() {
    let (_, table) = dbp_bench::e7_hybrid::run(&[1, 2, 4, 8, 16, 32, 64], 12, 60, 8);
    println!("{table}");
}
