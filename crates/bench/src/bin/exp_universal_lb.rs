//! E3: universal µ lower bound (pair family).
fn main() {
    let (_, table) = dbp_bench::e3_universal::run(&[2, 4, 8], &[2, 4, 8, 12, 14]);
    println!("{table}");
}
