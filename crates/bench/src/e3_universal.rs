//! E3 — the universal `µ` lower bound.
//!
//! The pair family `universal_mu_pairs` drives every non-classifying
//! algorithm to ratio → `µ` (each pair exactly fills a bin; the tiny
//! resident then holds the bin open for `µ`). The sweep shows the
//! measured ratio climbing towards `µ` for First/Best/Worst/Next Fit
//! alike — the paper's point that *no* online algorithm can beat `µ`
//! — while size-classifying Hybrid First Fit side-steps this
//! particular family (its guarantee is still `Ω(µ)`, via other
//! instances).

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::event_schedule;
use dbp_core::Runner;
use dbp_numeric::Rational;
use dbp_workloads::adversarial::universal_mu_pairs;

/// One (µ, k) row: per-algorithm measured ratios.
#[derive(Debug, Clone)]
pub struct UniversalRow {
    /// Duration ratio.
    pub mu: u32,
    /// Pair count.
    pub k: u32,
    /// `(algorithm, measured ratio)` pairs.
    pub ratios: Vec<(String, Rational)>,
}

/// Runs the sweep over phase counts `ks` for each µ.
pub fn run(mus: &[u32], ks: &[u32]) -> (Vec<UniversalRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        for &k in ks {
            let (inst, _pred) = universal_mu_pairs(k, mu, k.max(4));
            // One schedule per instance, replayed by the whole lineup.
            let schedule = event_schedule(&inst);
            let mut ratios = Vec::new();
            for mut algo in crate::algorithm_lineup() {
                let out = Runner::new(&inst)
                    .schedule(&schedule)
                    .run(algo.as_mut())
                    .unwrap();
                let rep = measure_ratio(&inst, &out);
                let ratio = rep
                    .exact_ratio()
                    .or(rep.ratio_upper)
                    .unwrap_or(Rational::ZERO);
                ratios.push((out.algorithm().to_string(), ratio));
            }
            rows.push(UniversalRow { mu, k, ratios });
        }
    }

    let algo_names: Vec<String> = rows
        .first()
        .map(|r| r.ratios.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let mut headers: Vec<&str> = vec!["µ", "k"];
    for n in &algo_names {
        headers.push(n);
    }
    let mut table = Table::new(
        "E3: universal µ lower bound — measured ratio per algorithm on the pair family",
        &headers,
    );
    for r in &rows {
        let mut cells = vec![r.mu.to_string(), r.k.to_string()];
        cells.extend(r.ratios.iter().map(|(_, x)| dec(*x)));
        table.row(cells);
    }
    table.note("plain algorithms approach µ as k grows; HybridFirstFit defeats this family");
    (rows, table)
}

/// The measured ratio of one algorithm in a row.
pub fn ratio_of(row: &UniversalRow, algo: &str) -> Option<Rational> {
    row.ratios.iter().find(|(n, _)| n == algo).map(|(_, r)| *r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn plain_algorithms_approach_mu() {
        let mu = 4u32;
        let (rows, _) = run(&[mu], &[4, 8, 12]);
        // Ratio grows with k for every plain algorithm.
        for algo in ["FirstFit", "BestFit", "WorstFit", "NextFit"] {
            let series: Vec<Rational> = rows.iter().map(|r| ratio_of(r, algo).unwrap()).collect();
            for w in series.windows(2) {
                assert!(w[1] > w[0], "{algo} ratio should grow with k");
            }
            let last = *series.last().unwrap();
            assert!(last > rat(5, 2), "{algo} last ratio {last} too small");
            assert!(last < rat(4, 1), "{algo} exceeds µ on its own gadget?");
        }
    }

    #[test]
    fn hybrid_first_fit_is_immune() {
        let (rows, _) = run(&[6], &[10]);
        let hff = ratio_of(&rows[0], "HybridFirstFit[1/2]").unwrap();
        let ff = ratio_of(&rows[0], "FirstFit").unwrap();
        assert!(
            hff * rat(2, 1) < ff,
            "HFF ({hff}) should be far below FF ({ff}) here"
        );
    }
}
