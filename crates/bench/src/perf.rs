//! Perf snapshots: wall-time + metrics capture around experiment
//! runs, written as `BENCH_<experiment>.json`.
//!
//! Every snapshot records the wall time of the wrapped `run()`, the
//! machine's available parallelism, free-form metrics (row counts,
//! cells evaluated, …), and optionally the per-worker load-balance
//! reports from [`dbp_par::par_map_report`]. Snapshots are committed
//! under `results/` so the repository accumulates a perf trajectory —
//! the measuring half of ROADMAP's "fast as the hardware allows".

use dbp_par::WorkerReport;
use serde::Value;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One perf measurement of an experiment run.
#[derive(Debug, Clone)]
pub struct PerfSnapshot {
    experiment: String,
    wall_ms: f64,
    threads: usize,
    metrics: Vec<(String, Value)>,
    workers: Vec<WorkerReport>,
}

impl PerfSnapshot {
    /// The experiment name (`BENCH_<name>.json` on disk).
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// Wall time of the wrapped run, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Attaches a named metric (chainable).
    pub fn with_metric(mut self, name: &str, value: impl Into<Value>) -> PerfSnapshot {
        self.metrics.push((name.to_string(), value.into()));
        self
    }

    /// Attaches per-worker load-balance reports (chainable).
    pub fn with_workers(mut self, workers: &[WorkerReport]) -> PerfSnapshot {
        self.workers = workers.to_vec();
        self
    }

    /// The snapshot as one JSON object.
    pub fn to_json(&self) -> Value {
        let workers = self
            .workers
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("worker".into(), Value::Int(w.worker as i128)),
                    ("items".into(), Value::Int(w.items as i128)),
                    ("busy_ns".into(), Value::Int(w.busy_ns as i128)),
                    ("elapsed_ns".into(), Value::Int(w.elapsed_ns as i128)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("experiment".into(), Value::Str(self.experiment.clone())),
            ("wall_ms".into(), Value::Float(self.wall_ms)),
            ("threads".into(), Value::Int(self.threads as i128)),
            ("metrics".into(), Value::Object(self.metrics.clone())),
            ("workers".into(), Value::Array(workers)),
        ])
    }

    /// Writes `BENCH_<experiment>.json` into `dir`, returning the
    /// path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        let text = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| io::Error::other(e.to_string()))?;
        std::fs::write(&path, text + "\n")?;
        Ok(path)
    }
}

/// Runs `f`, timing it, and returns its result together with a
/// [`PerfSnapshot`] named `experiment`.
pub fn measure<T>(experiment: &str, f: impl FnOnce() -> T) -> (T, PerfSnapshot) {
    let start = Instant::now();
    let out = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let snapshot = PerfSnapshot {
        experiment: experiment.to_string(),
        wall_ms,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        metrics: Vec::new(),
        workers: Vec::new(),
    };
    (out, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_wraps_a_run() {
        let (rows, snap) = measure("toy", || {
            let (rows, _) = crate::e1_theorem1::run(&[2], 12, 2);
            rows
        });
        assert_eq!(rows.len(), 1);
        assert!(snap.wall_ms() >= 0.0);
        assert_eq!(snap.experiment(), "toy");
    }

    #[test]
    fn snapshot_serializes_with_metrics_and_workers() {
        let (items, reports) = dbp_par::par_map_report(&[1u64, 2, 3], |&x| x);
        let (_, snap) = measure("shape", || items.len());
        let snap = snap
            .with_metric("items", Value::Int(3))
            .with_metric("label", Value::Str("x".into()))
            .with_workers(&reports);
        let json = snap.to_json();
        assert_eq!(json.get("experiment").unwrap().as_str(), Some("shape"));
        assert_eq!(
            json.get("metrics").unwrap().get("items"),
            Some(&Value::Int(3))
        );
        let workers = json.get("workers").unwrap().as_array().unwrap();
        assert_eq!(workers.len(), reports.len());
        // Round-trips through JSON text.
        let text = serde_json::to_string(&json).unwrap();
        assert_eq!(serde_json::parse(&text).unwrap(), json);
    }

    #[test]
    fn write_to_emits_bench_file() {
        let dir = std::env::temp_dir().join("dbp-bench-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, snap) = measure("unit_test", || 1 + 1);
        let path = snap.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(serde_json::parse(&text).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}
