//! E8 — the cloud-gaming motivation (§I).
//!
//! A synthetic day of game sessions (diurnal arrivals, heavy-tailed
//! play times, three GPU tiers) is dispatched by each algorithm under
//! hourly billing. The table reports billed server-hours, raw usage,
//! peak fleet and utilization per algorithm across offered loads —
//! the provider's-eye view of why dispatch policy matters.

use crate::table::{dec, Table};
use dbp_cloudsim::{simulate, BillingModel, CostReport};
use dbp_numeric::Rational;
use dbp_workloads::GamingConfig;

/// One (load, algorithm) cell.
#[derive(Debug, Clone)]
pub struct GamingRow {
    /// Peak sessions per hour.
    pub load: u32,
    /// Number of sessions in the day.
    pub sessions: usize,
    /// Per-algorithm reports.
    pub reports: Vec<CostReport>,
}

/// Runs the load sweep.
pub fn run(loads: &[u32], seed: u64) -> (Vec<GamingRow>, Table) {
    let mut rows = Vec::new();
    for &load in loads {
        let cfg = GamingConfig {
            peak_sessions_per_hour: load,
            seed,
            ..Default::default()
        };
        let trace = cfg.generate();
        let mut reports = Vec::new();
        for mut algo in crate::algorithm_lineup() {
            let report = simulate(&trace.instance)
                .billing(BillingModel::hourly())
                .run(algo.as_mut())
                .unwrap();
            reports.push(report);
        }
        rows.push(GamingRow {
            load,
            sessions: trace.instance.len(),
            reports,
        });
    }

    let mut table = Table::new(
        "E8: a day of cloud gaming — billed server-hours by dispatch algorithm",
        &[
            "peak/h",
            "sessions",
            "algorithm",
            "servers",
            "peak fleet",
            "usage (h)",
            "billed (h)",
            "util",
        ],
    );
    for row in &rows {
        for rep in &row.reports {
            table.row(vec![
                row.load.to_string(),
                row.sessions.to_string(),
                rep.algorithm.clone(),
                rep.servers_used.to_string(),
                rep.peak_servers.to_string(),
                dec(rep.usage_time / Rational::from_int(60)),
                dec(rep.billed_time / Rational::from_int(60)),
                rep.utilization.map(dec).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    table.note("times generated in minutes; billing quantum 60 min (classic EC2-style)");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_beats_next_fit_on_gaming_load() {
        let (rows, table) = run(&[40], 7);
        let row = &rows[0];
        assert!(row.sessions > 100);
        let cost = |name: &str| {
            row.reports
                .iter()
                .find(|r| r.algorithm == name)
                .unwrap()
                .billed_time
        };
        let ff = cost("FirstFit");
        let nf = cost("NextFit");
        assert!(ff <= nf, "FF {ff} should not exceed NF {nf}");
        assert!(!table.is_empty());
    }

    #[test]
    fn cost_scales_with_load() {
        let (rows, _) = run(&[20, 80], 3);
        let billed = |row: &GamingRow| row.reports[0].billed_time;
        assert!(billed(&rows[1]) > billed(&rows[0]));
        assert!(rows[1].sessions > rows[0].sessions);
    }

    #[test]
    fn all_reports_account_every_session() {
        let (rows, _) = run(&[30], 11);
        for rep in &rows[0].reports {
            assert_eq!(rep.jobs, rows[0].sessions);
            assert!(rep.billed_time >= rep.usage_time);
        }
    }
}
