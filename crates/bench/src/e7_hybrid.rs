//! E7 — Hybrid First Fit vs First Fit.
//!
//! Two faces of the comparison:
//!
//! * on the universal pair family (E3's gadget), plain First Fit is
//!   driven to ratio → `µ` while size-classified Hybrid First Fit
//!   stays near 1 — the structural advantage that lets the
//!   semi-online HFF of [Li–Tang–Cai] reach a `(8/7)µ + O(1)`
//!   guarantee below FF's `µ+4`;
//! * on plain random workloads the classification costs a little
//!   (split pools waste capacity), which is why FF remains the
//!   practical default the paper analyzes.

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::{FirstFit, HybridFirstFit, Runner};
use dbp_numeric::{rat, Rational};
use dbp_workloads::adversarial::universal_mu_pairs;
use dbp_workloads::RandomWorkload;

/// One µ row with both workload kinds.
#[derive(Debug, Clone)]
pub struct HybridRow {
    /// Duration ratio.
    pub mu: u32,
    /// FF ratio on the adversarial pair family.
    pub ff_adversarial: Rational,
    /// HFF ratio on the adversarial pair family.
    pub hff_adversarial: Rational,
    /// FF mean cost on random workloads (relative to OPT bracket
    /// lower bound).
    pub ff_random: f64,
    /// HFF mean cost on random workloads.
    pub hff_random: f64,
}

/// Runs the µ sweep; `k` is the gadget size, `n`/`seeds` size the
/// random side.
pub fn run(mus: &[u32], k: u32, n: usize, seeds: u64) -> (Vec<HybridRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        let (gadget, _) = universal_mu_pairs(k, mu, k.max(4));
        let ff_out = Runner::new(&gadget).run(&mut FirstFit::new()).unwrap();
        let hff_out = Runner::new(&gadget)
            .run(&mut HybridFirstFit::classic())
            .unwrap();
        let ff_rep = measure_ratio(&gadget, &ff_out);
        let hff_rep = measure_ratio(&gadget, &hff_out);

        let mut ff_acc = 0.0f64;
        let mut hff_acc = 0.0f64;
        let mut count = 0.0f64;
        for seed in 0..seeds {
            let inst = RandomWorkload::with_sharp_mu(n, rat(mu as i128, 1), seed).generate();
            let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
            let hff = Runner::new(&inst)
                .run(&mut HybridFirstFit::classic())
                .unwrap();
            let lb = dbp_analysis::profile_lower_bound(&inst);
            if lb.is_positive() {
                ff_acc += (ff.total_usage() / lb).to_f64();
                hff_acc += (hff.total_usage() / lb).to_f64();
                count += 1.0;
            }
        }

        rows.push(HybridRow {
            mu,
            ff_adversarial: ff_rep.exact_ratio().or(ff_rep.ratio_upper).unwrap(),
            hff_adversarial: hff_rep.exact_ratio().or(hff_rep.ratio_upper).unwrap(),
            ff_random: ff_acc / count.max(1.0),
            hff_random: hff_acc / count.max(1.0),
        });
    }

    let mut table = Table::new(
        "E7: Hybrid First Fit vs First Fit (adversarial and random)",
        &["µ", "FF adv", "HFF adv", "FF random", "HFF random"],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            dec(r.ff_adversarial),
            dec(r.hff_adversarial),
            format!("{:.3}", r.ff_random),
            format!("{:.3}", r.hff_random),
        ]);
    }
    table.note(
        "adv = universal pair family (ratio vs exact OPT); random = cost vs certified lower bound",
    );
    table.note("HFF's classification neutralizes the gadget but costs a little on random inputs");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hff_dominates_on_the_gadget_and_ff_scales_with_mu() {
        let (rows, _) = run(&[2, 8], 10, 30, 4);
        for r in &rows {
            assert!(
                r.hff_adversarial < r.ff_adversarial,
                "µ={}: HFF {} !< FF {}",
                r.mu,
                r.hff_adversarial,
                r.ff_adversarial
            );
        }
        // FF's adversarial ratio grows with µ; HFF's barely moves.
        assert!(rows[1].ff_adversarial > rows[0].ff_adversarial);
        assert!(rows[1].hff_adversarial < rat(2, 1));
    }

    #[test]
    fn random_workloads_do_not_punish_ff() {
        let (rows, _) = run(&[4], 8, 40, 4);
        let r = &rows[0];
        // On random inputs FF is at least as good as HFF on average.
        assert!(
            r.ff_random <= r.hff_random + 0.05,
            "FF {} vs HFF {}",
            r.ff_random,
            r.hff_random
        );
    }
}
