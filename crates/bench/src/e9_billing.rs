//! E9 — pay-as-you-go billing quanta.
//!
//! MinUsageTime is the `quantum → 0` idealization of hourly billing
//! (§I). This sweep bills the same gaming-day dispatches under
//! several quanta and shows (a) the billed/usage overhead factor per
//! quantum, and (b) that the *ranking* of algorithms by cost is
//! essentially preserved — minimizing usage time is the right proxy
//! under realistic billing.

use crate::table::{dec, Table};
use dbp_cloudsim::{simulate, BillingModel};
use dbp_numeric::Rational;
use dbp_workloads::GamingConfig;

/// One (quantum, algorithm) cell.
#[derive(Debug, Clone)]
pub struct BillingRow {
    /// Billing model label.
    pub billing: String,
    /// Algorithm.
    pub algorithm: String,
    /// Raw usage minutes.
    pub usage: Rational,
    /// Billed minutes.
    pub billed: Rational,
    /// Overhead factor billed/usage.
    pub overhead: Rational,
}

/// Runs the quantum sweep on one generated day.
pub fn run(seed: u64) -> (Vec<BillingRow>, Table) {
    let trace = GamingConfig {
        seed,
        ..Default::default()
    }
    .generate();
    let billings = [
        BillingModel::Continuous,
        BillingModel::per_second_min_minute(),
        BillingModel::per_minute(),
        BillingModel::Quantized {
            quantum: Rational::from_int(15),
            minimum: Rational::ZERO,
        },
        BillingModel::hourly(),
    ];
    let mut rows = Vec::new();
    for billing in billings {
        for mut algo in crate::algorithm_lineup() {
            let rep = simulate(&trace.instance)
                .billing(billing)
                .run(algo.as_mut())
                .unwrap();
            rows.push(BillingRow {
                billing: billing.to_string(),
                algorithm: rep.algorithm.clone(),
                usage: rep.usage_time,
                billed: rep.billed_time,
                overhead: rep.billing_overhead().unwrap_or(Rational::ONE),
            });
        }
    }

    let mut table = Table::new(
        "E9: billing quantum sweep on one gaming day",
        &[
            "billing",
            "algorithm",
            "usage (min)",
            "billed (min)",
            "overhead",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.billing.clone(),
            r.algorithm.clone(),
            dec(r.usage),
            dec(r.billed),
            dec(r.overhead),
        ]);
    }
    table.note("overhead = billed/usage; rankings by billed cost track rankings by usage time");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_quantum() {
        let (rows, _) = run(5);
        let overhead = |billing: &str, algo: &str| {
            rows.iter()
                .find(|r| r.billing == billing && r.algorithm == algo)
                .unwrap()
                .overhead
        };
        let cont = overhead("continuous", "FirstFit");
        let minute = overhead("quantized(q=1)", "FirstFit");
        let hour = overhead("quantized(q=60)", "FirstFit");
        assert_eq!(cont, Rational::ONE);
        assert!(minute >= cont);
        assert!(hour >= minute);
    }

    #[test]
    fn usage_ranking_predicts_billed_ranking_under_hourly() {
        let (rows, _) = run(9);
        let hourly: Vec<&BillingRow> = rows
            .iter()
            .filter(|r| r.billing == "quantized(q=60)")
            .collect();
        // Identify best/worst by raw usage.
        let best_usage = hourly.iter().min_by_key(|r| r.usage).unwrap();
        let worst_usage = hourly.iter().max_by_key(|r| r.usage).unwrap();
        assert!(
            best_usage.billed <= worst_usage.billed,
            "usage ranking inverted under hourly billing"
        );
    }
}
