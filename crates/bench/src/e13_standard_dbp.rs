//! E13 — MinUsageTime vs the standard DBP objective.
//!
//! §II recalls that *standard* dynamic bin packing minimizes the
//! **maximum number of concurrently open bins**, whereas this paper
//! minimizes **total usage time**. The two objectives genuinely
//! diverge: Next Fit closes bins aggressively only in the peak sense,
//! while its abandoned-but-still-open bins are catastrophic for usage
//! time. This sweep measures both objectives for every algorithm on
//! identical workloads, with the adversary's peak-profile lower bound
//! alongside.

use crate::table::{dec, Table};
use dbp_analysis::optimal::{opt_profile, OptConfig};
use dbp_analysis::ExactBinPacking;
use dbp_core::event_schedule;
use dbp_core::Runner;
use dbp_numeric::{rat, Rational};
use dbp_workloads::RandomWorkload;

/// Per-algorithm pair of objectives, averaged over seeds.
#[derive(Debug, Clone)]
pub struct StandardDbpRow {
    /// Duration ratio.
    pub mu: u32,
    /// Algorithm.
    pub algorithm: String,
    /// Mean usage-time ratio vs the peak-profile... no: vs usage LB.
    pub mean_usage: f64,
    /// Mean peak-bins ratio vs the adversary's peak.
    pub mean_peak: f64,
}

/// Runs the two-objective sweep.
pub fn run(mus: &[u32], n: usize, seeds: u64) -> (Vec<StandardDbpRow>, Table) {
    let solver = ExactBinPacking::new();
    let mut rows: Vec<StandardDbpRow> = Vec::new();
    for &mu in mus {
        let mut acc: Vec<(String, f64, f64, usize)> = Vec::new();
        for seed in 0..seeds {
            let inst = RandomWorkload::with_sharp_mu(n, rat(mu as i128, 1), seed).generate();
            let profile = opt_profile(&inst, &solver, OptConfig::default());
            let opt_peak = profile.peak_lower().max(1);
            let opt_usage = dbp_analysis::profile_lower_bound(&inst);
            if opt_usage.is_zero() {
                continue;
            }
            // One schedule per seed, replayed by the whole lineup.
            let schedule = event_schedule(&inst);
            for mut algo in crate::algorithm_lineup() {
                let out = Runner::new(&inst)
                    .schedule(&schedule)
                    .run(algo.as_mut())
                    .unwrap();
                let usage_ratio = (out.total_usage() / opt_usage).to_f64();
                let peak_ratio = out.max_open_bins() as f64 / opt_peak as f64;
                match acc
                    .iter_mut()
                    .find(|(name, _, _, _)| *name == out.algorithm())
                {
                    Some((_, u, p, c)) => {
                        *u += usage_ratio;
                        *p += peak_ratio;
                        *c += 1;
                    }
                    None => acc.push((out.algorithm().to_string(), usage_ratio, peak_ratio, 1)),
                }
            }
        }
        for (name, u, p, c) in acc {
            rows.push(StandardDbpRow {
                mu,
                algorithm: name,
                mean_usage: u / c as f64,
                mean_peak: p / c as f64,
            });
        }
    }

    let mut table = Table::new(
        "E13: usage-time vs peak-bins objectives (ratios vs certified lower bounds)",
        &["µ", "algorithm", "usage ratio", "peak ratio"],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            r.algorithm.clone(),
            format!("{:.3}", r.mean_usage),
            format!("{:.3}", r.mean_peak),
        ]);
    }
    table.note("usage = MinUsageTime objective (this paper); peak = standard DBP objective (§II)");
    table.note(&format!("{} random instances per µ, n = {n}", seeds));
    let _ = dec(Rational::ONE); // keep the dec helper linked for cells
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objectives_diverge_for_next_fit() {
        let (rows, _) = run(&[4], 40, 6);
        let get = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap();
        let ff = get("FirstFit");
        let nf = get("NextFit");
        // Next Fit's usage penalty is much larger than its peak
        // penalty relative to First Fit.
        assert!(nf.mean_usage > ff.mean_usage, "NF usage should exceed FF");
        let usage_gap = nf.mean_usage / ff.mean_usage;
        let peak_gap = nf.mean_peak / ff.mean_peak;
        assert!(
            usage_gap > peak_gap * 0.9,
            "usage gap {usage_gap:.3} vs peak gap {peak_gap:.3}"
        );
        // Everyone is ≥ 1 vs the lower bounds.
        for r in &rows {
            assert!(r.mean_usage >= 0.999, "{}", r.algorithm);
            assert!(r.mean_peak >= 0.999, "{}", r.algorithm);
        }
    }
}
