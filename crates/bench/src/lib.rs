#![warn(missing_docs)]

//! # `dbp-bench` — the experiment harness
//!
//! One module per experiment from DESIGN.md §4, each exposing a
//! `run(...) -> Table`-style function that regenerates the
//! corresponding result of the paper; the `src/bin/*` binaries are
//! thin printers around these functions, and the module-level tests
//! assert the *shape* of each result (who wins, by what factor, where
//! the trends point) so the reproduction itself is under test.
//!
//! | ID  | Module | Paper artifact |
//! |-----|--------|----------------|
//! | E1  | [`e1_theorem1`] | Theorem 1: FF ≤ (µ+4)·OPT |
//! | E2  | [`e2_nextfit`] | §VIII Next Fit lower bound |
//! | E3  | [`e3_universal`] | universal µ lower bound |
//! | E4  | [`e4_anyfit`] | Any-Fit µ+1 lower bound |
//! | E5  | [`e5_bestfit`] | Best Fit ≫ First Fit separation |
//! | E6  | [`e6_beta`] | bounded item sizes (≤ 1/β) regime |
//! | E7  | [`e7_hybrid`] | Hybrid First Fit vs First Fit |
//! | E8  | [`e8_gaming`] | cloud-gaming motivation |
//! | E9  | [`e9_billing`] | pay-as-you-go billing quanta |
//! | E10 | [`e10_certify`] | §IV–§VII machinery certification |
//! | E11 | [`e11_multidim`] | multi-dimensional extension (§IX future work) |
//! | E12 | [`e12_clairvoyance`] | value-of-information ablation |
//! | E13 | [`e13_standard_dbp`] | usage-time vs standard-DBP peak objective |
//! | E14 | [`e14_adaptive`] | adaptive lower-bound game |
//! | E15 | [`e15_exact_adversary`] | adversarial search vs random worst case |
//! | F1–F6 | [`figures`] | the paper's illustrative figures |

pub mod e10_certify;
pub mod e11_multidim;
pub mod e12_clairvoyance;
pub mod e13_standard_dbp;
pub mod e14_adaptive;
pub mod e15_exact_adversary;
pub mod e1_theorem1;
pub mod e2_nextfit;
pub mod e3_universal;
pub mod e4_anyfit;
pub mod e5_bestfit;
pub mod e6_beta;
pub mod e7_hybrid;
pub mod e8_gaming;
pub mod e9_billing;
pub mod figures;
pub mod perf;
pub mod table;

pub use table::Table;

use dbp_core::PackingAlgorithm;

/// The standard algorithm line-up for comparison tables.
pub fn algorithm_lineup() -> Vec<Box<dyn PackingAlgorithm>> {
    vec![
        Box::new(dbp_core::FirstFit::new()),
        Box::new(dbp_core::BestFit::new()),
        Box::new(dbp_core::WorstFit::new()),
        Box::new(dbp_core::NextFit::new()),
        Box::new(dbp_core::HybridFirstFit::classic()),
    ]
}
