//! E2 — §VIII: the Next Fit lower-bound construction.
//!
//! Regenerates the paper's closing example: `n` pairs
//! `(1/2 @ duration 1, 1/n @ duration µ)` at time 0. Next Fit opens a
//! bin per pair and pays `n·µ`; the repacking adversary pays
//! `⌈n/2⌉ + µ`. The table reports measured NF cost, measured exact
//! OPT, the measured ratio, the paper's printed formula `nµ/(n+µ)`,
//! and the `2µ` limit the exact accounting approaches (see the
//! reproduction note in `dbp-workloads::adversarial::next_fit_pairs`).

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::{FirstFit, NextFit, Runner};
use dbp_numeric::Rational;
use dbp_workloads::adversarial::{next_fit_pairs, next_fit_paper_formula};

/// One (n, µ) cell.
#[derive(Debug, Clone)]
pub struct NextFitRow {
    /// Pair count.
    pub n: u32,
    /// Duration ratio.
    pub mu: u32,
    /// Measured Next Fit cost.
    pub nf_cost: Rational,
    /// Measured First Fit cost on the same instance.
    pub ff_cost: Rational,
    /// Exact adversary cost.
    pub opt: Rational,
    /// Measured NF ratio.
    pub ratio: Rational,
    /// The paper's printed formula `nµ/(n+µ)`.
    pub paper_formula: Rational,
}

/// Runs the (n × µ) sweep.
pub fn run(ns: &[u32], mus: &[u32]) -> (Vec<NextFitRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        for &n in ns {
            let (inst, pred) = next_fit_pairs(n, mu);
            let nf = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
            let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
            let rep = measure_ratio(&inst, &nf);
            let opt = rep.opt_lower;
            assert_eq!(nf.total_usage(), pred.algorithm_cost, "NF prediction");
            rows.push(NextFitRow {
                n,
                mu,
                nf_cost: nf.total_usage(),
                ff_cost: ff.total_usage(),
                opt,
                ratio: rep.exact_ratio().unwrap_or(Rational::ZERO),
                paper_formula: next_fit_paper_formula(n, mu),
            });
        }
    }

    let mut table = Table::new(
        "E2 / §VIII: Next Fit on the pair gadget (cost and ratio vs OPT)",
        &[
            "µ",
            "n",
            "NF cost",
            "FF cost",
            "OPT",
            "NF/OPT",
            "paper nµ/(n+µ)",
            "2µ",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            r.n.to_string(),
            r.nf_cost.to_string(),
            r.ff_cost.to_string(),
            r.opt.to_string(),
            dec(r.ratio),
            dec(r.paper_formula),
            (2 * r.mu).to_string(),
        ]);
    }
    table.note("NF/OPT grows with n towards 2µ — at least the paper's claimed µ lower bound,");
    table.note("and consistent with Next Fit's 2µ+1 upper bound [Kamali–López-Ortiz].");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn ratio_grows_with_n_and_exceeds_mu() {
        let (rows, _) = run(&[4, 8, 16, 32], &[4]);
        // Monotone in n.
        for w in rows.windows(2) {
            assert!(w[1].ratio > w[0].ratio, "ratio should grow with n");
        }
        let last = rows.last().unwrap();
        // Beats the paper's claimed µ lower bound and stays below 2µ.
        assert!(last.ratio > rat(4, 1), "ratio {} ≤ µ", last.ratio);
        assert!(last.ratio < rat(8, 1));
        // Paper formula is a (conservative) lower estimate.
        for r in &rows {
            assert!(r.paper_formula <= r.ratio);
        }
    }

    #[test]
    fn first_fit_is_much_cheaper_on_the_gadget() {
        let (rows, _) = run(&[16], &[8]);
        let r = &rows[0];
        // FF packs pairs two-halves-per-bin-ish: far below NF.
        assert!(
            r.ff_cost * rat(2, 1) < r.nf_cost,
            "FF {} vs NF {}",
            r.ff_cost,
            r.nf_cost
        );
    }
}
