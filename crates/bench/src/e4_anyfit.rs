//! E4 — the Any-Fit `µ+1` lower bound.
//!
//! The gap-ladder (`any_fit_ladder`) forces every Any-Fit algorithm
//! to keep `n` bins open for `µ + 1 − δ` time while the adversary
//! pays `n + µ − δ`: measured ratios climb with `n` towards `µ + 1`,
//! strictly beyond the universal `µ` bound of E3 — Any-Fit's refusal
//! to open fresh bins costs it an additive 1.

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::{event_schedule, BestFit, FirstFit, LastFit, PackingAlgorithm, Runner, WorstFit};

use dbp_numeric::{rat, Rational};
use dbp_workloads::adversarial::any_fit_ladder;

/// One (µ, n) row.
#[derive(Debug, Clone)]
pub struct LadderRow {
    /// Duration ratio.
    pub mu: u32,
    /// Ladder width (bins forced).
    pub n: u32,
    /// `(algorithm, ratio)` for each Any-Fit algorithm.
    pub ratios: Vec<(String, Rational)>,
    /// The `µ+1` limit.
    pub limit: Rational,
}

/// Runs the ladder sweep.
pub fn run(mus: &[u32], ns: &[u32]) -> (Vec<LadderRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        for &n in ns {
            let (inst, _) = any_fit_ladder(n, mu);
            // One schedule per ladder cell, replayed across the whole
            // Any-Fit lineup — no per-algorithm heap rebuild.
            let schedule = event_schedule(&inst);
            let mut ratios = Vec::new();
            let algos: Vec<Box<dyn PackingAlgorithm>> = vec![
                Box::new(FirstFit::new()),
                Box::new(BestFit::new()),
                Box::new(WorstFit::new()),
                Box::new(LastFit::new()),
            ];
            for mut algo in algos {
                let out = Runner::new(&inst)
                    .schedule(&schedule)
                    .run(algo.as_mut())
                    .unwrap();
                let rep = measure_ratio(&inst, &out);
                let ratio = rep
                    .exact_ratio()
                    .or(rep.ratio_upper)
                    .unwrap_or(Rational::ZERO);
                ratios.push((out.algorithm().to_string(), ratio));
            }
            rows.push(LadderRow {
                mu,
                n,
                ratios,
                limit: rat(mu as i128 + 1, 1),
            });
        }
    }

    let algo_names: Vec<String> = rows
        .first()
        .map(|r| r.ratios.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let mut headers: Vec<&str> = vec!["µ", "n"];
    for h in &algo_names {
        headers.push(h);
    }
    headers.push("µ+1");
    let mut table = Table::new(
        "E4: Any-Fit lower bound — gap-ladder ratios approach µ+1",
        &headers,
    );
    for r in &rows {
        let mut cells = vec![r.mu.to_string(), r.n.to_string()];
        cells.extend(r.ratios.iter().map(|(_, x)| dec(*x)));
        cells.push(r.limit.to_string());
        table.row(cells);
    }
    table.note("every Any-Fit algorithm pays n(µ+1−δ) against OPT = n+µ−δ");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_any_fit_algorithms_pay_the_same_and_approach_mu_plus_1() {
        let (rows, _) = run(&[2], &[4, 8, 12]);
        for row in &rows {
            // Placements are forced: every Any-Fit algorithm lands the
            // same ratio.
            let first = row.ratios[0].1;
            for (name, r) in &row.ratios {
                assert_eq!(*r, first, "{name} deviates");
            }
            assert!(first < row.limit);
            // Beyond the universal µ bound once n is large enough.
            if row.n >= 8 {
                assert!(
                    first > rat(2, 1),
                    "n={} ratio {} should exceed µ=2",
                    row.n,
                    first
                );
            }
        }
        // Monotone growth towards µ+1.
        let series: Vec<Rational> = rows.iter().map(|r| r.ratios[0].1).collect();
        for w in series.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
