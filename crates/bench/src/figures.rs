//! F1–F6 — the paper's illustrative figures, regenerated as ASCII
//! timelines from concrete instances.
//!
//! The figures in the paper are explanatory diagrams, not data plots;
//! each function below builds an instance exhibiting the pictured
//! structure and renders it with `dbp-viz`.

use dbp_core::prelude::*;
use dbp_core::PackingOutcome;
use dbp_numeric::rat;

const WIDTH: usize = 72;

fn ff(inst: &Instance) -> PackingOutcome {
    Runner::new(inst)
        .run(&mut FirstFit::new())
        .expect("valid instance")
}

/// Figure 1 — the span of an item list: three items, one temporal
/// gap; the span row shows the union of their activity.
pub fn fig1_span() -> String {
    let inst = Instance::builder()
        .item(rat(1, 2), rat(0, 1), rat(3, 1)) // r1
        .item(rat(1, 3), rat(1, 1), rat(4, 1)) // r2 overlaps r1
        .item(rat(1, 4), rat(6, 1), rat(9, 1)) // r3 after a gap
        .build()
        .unwrap();
    format!(
        "Figure 1: span of an item list (span = {} < packing period)\n\n{}",
        inst.span(),
        dbp_viz::timeline(&inst, WIDTH)
    )
}

/// Figure 2 — usage periods `U_k` with the `V_k`/`W_k` split and
/// `E_k` markers: four bins opened in sequence with overlapping
/// lifetimes (the paper's example shape).
pub fn fig2_usage_periods() -> String {
    let inst = Instance::builder()
        .item(rat(3, 4), rat(0, 1), rat(6, 1)) // b1, long anchor
        .item(rat(3, 4), rat(1, 1), rat(4, 1)) // b2 inside b1's life
        .item(rat(3, 4), rat(3, 1), rat(9, 1)) // b3 straddles E
        .item(rat(3, 4), rat(7, 1), rat(11, 1)) // b4 opens near the end
        .build()
        .unwrap();
    let out = ff(&inst);
    format!(
        "Figure 2: bin usage periods U_k split into V_k (overlapped) and W_k (exclusive)\n\n{}",
        dbp_viz::usage(&inst, &out, WIDTH)
    )
}

/// Figure 3 — small-item selection and period split inside one bin's
/// `V_k`: two selected smalls more than `d_max` apart (bridged by
/// large residents, which never participate in selection) split
/// `x_1` into an l-part of length `d_max = 2` and a genuine h-part,
/// during which the bin level is ≥ 1/2 (Proposition 6).
pub fn fig3_selection() -> String {
    let inst = selection_instance();
    let mut script = dbp_core::Scripted::new(vec![0, 0, 0, 0, 1, 1, 1, 1, 1]);
    let out = Runner::new(&inst)
        .run(&mut script)
        .expect("scripted packing is feasible");
    format!(
        "Figure 3: item selection and l/h period split over V_k\n\n{}",
        dbp_viz::subperiods(&inst, &out, WIDTH)
    )
}

/// Figure 4 — supplier bins and supplier periods, including a
/// consolidated pair: the DESIGN.md §3 worked example, realized with
/// a scripted packing (µ = 2; victim l-lengths 0.2 / 1.9 / 2.0, the
/// first two of which pair and consolidate).
pub fn fig4_supplier() -> String {
    let inst = Instance::builder()
        // Anchor chain keeps bin A (label 0) open on [0, 7.7).
        .item(rat(1, 2), rat(0, 1), rat(2, 1))
        .item(rat(1, 2), rat(19, 10), rat(39, 10))
        .item(rat(1, 2), rat(19, 5), rat(29, 5))
        .item(rat(1, 2), rat(57, 10), rat(77, 10))
        // Victim smalls in bin B (label 1), pairing gap pattern.
        .item(rat(1, 20), rat(1, 1), rat(3, 1))
        .item(rat(1, 20), rat(6, 5), rat(16, 5))
        .item(rat(1, 20), rat(31, 10), rat(51, 10))
        // Duration-1 straggler in bin C (label 2): sets d_min = 1.
        .item(rat(1, 4), rat(10, 1), rat(11, 1))
        .build()
        .unwrap();
    let mut script = dbp_core::Scripted::new(vec![0, 0, 0, 0, 1, 1, 1, 2]);
    let out = Runner::new(&inst)
        .run(&mut script)
        .expect("scripted packing is feasible");
    format!(
        "Figure 4: supplier bins and supplier periods (single + consolidated)\n\n{}",
        dbp_viz::subperiods(&inst, &out, WIDTH)
    )
}

/// Figure 5 — Case 3 of the intersection analysis: a single
/// l-subperiod in bin `b_g` (length 1 = d_min) followed by a single
/// l-subperiod in a later bin `b_k` (length 2 = d_max), both supplied
/// by the same long-lived chain; the §VI algebra keeps their supplier
/// windows disjoint.
pub fn fig5_case3() -> String {
    let inst = cross_bin_instance();
    let mut script = dbp_core::Scripted::new(vec![0, 0, 0, 0, 1, 2]);
    let out = Runner::new(&inst)
        .run(&mut script)
        .expect("scripted packing is feasible");
    format!(
        "Figure 5: Case 3 — l-subperiods from different bins sharing a supplier\n\n{}",
        dbp_viz::subperiods(&inst, &out, WIDTH)
    )
}

/// Figure 6 — Case 4: as Figure 5 but the follower is a
/// *consolidated* run (µ = 2; follower l-lengths 0.2 and 1.9 pair
/// since 1.9 > 2·0.2); its hull supplier window still avoids the
/// earlier single's window on the shared supplier.
pub fn fig6_case4() -> String {
    let inst = Instance::builder()
        // Supplier chain S (label 0), open [0, 7.7).
        .item(rat(1, 2), rat(0, 1), rat(2, 1))
        .item(rat(1, 2), rat(19, 10), rat(39, 10))
        .item(rat(1, 2), rat(19, 5), rat(29, 5))
        .item(rat(1, 2), rat(57, 10), rat(77, 10))
        // b_g (label 1): a single l-subperiod [1, 2).
        .item(rat(1, 20), rat(1, 1), rat(2, 1))
        // b_k (label 2): consolidated pair at t = 3, 3.2, plus the
        // terminating selectee at 5.1.
        .item(rat(1, 20), rat(3, 1), rat(5, 1))
        .item(rat(1, 20), rat(16, 5), rat(26, 5))
        .item(rat(1, 20), rat(51, 10), rat(71, 10))
        .build()
        .unwrap();
    let mut script = dbp_core::Scripted::new(vec![0, 0, 0, 0, 1, 2, 2, 2]);
    let out = Runner::new(&inst)
        .run(&mut script)
        .expect("scripted packing is feasible");
    format!(
        "Figure 6: Case 4 — consolidated follower in a different bin\n\n{}",
        dbp_viz::subperiods(&inst, &out, WIDTH)
    )
}

/// Shared instance for Figure 3 (µ = 2, durations 1..2): anchor
/// chain A keeps `V_B` long; victim bin B holds a chain of *large*
/// 1/2-residents plus two smalls at t = 1.2 and t = 5 — more than
/// `d_max` apart, forcing the l/h split of `x_1`.
fn selection_instance() -> Instance {
    Instance::builder()
        // Anchor chain A (label 0), open [0, 7.7).
        .item(rat(1, 2), rat(0, 1), rat(2, 1))
        .item(rat(1, 2), rat(19, 10), rat(39, 10))
        .item(rat(1, 2), rat(19, 5), rat(29, 5))
        .item(rat(1, 2), rat(57, 10), rat(77, 10))
        // Victim bin B (label 1): large residents bridge [1, 6).
        .item(rat(1, 2), rat(1, 1), rat(3, 1)) // L1
        .item(rat(1, 2), rat(5, 2), rat(9, 2)) // L2
        .item(rat(1, 2), rat(4, 1), rat(6, 1)) // L3
        // The two selected smalls.
        .item(rat(3, 10), rat(6, 5), rat(11, 5)) // s1 @ 1.2, dur 1
        .item(rat(3, 10), rat(5, 1), rat(6, 1)) // s2 @ 5, dur 1
        .build()
        .unwrap()
}

/// Shared instance for Figure 5 (µ = 2): two victim bins fed by the
/// same supplier chain, one short single then one long single.
fn cross_bin_instance() -> Instance {
    Instance::builder()
        // Supplier chain S (label 0), open [0, 7.7).
        .item(rat(1, 2), rat(0, 1), rat(2, 1))
        .item(rat(1, 2), rat(19, 10), rat(39, 10))
        .item(rat(1, 2), rat(19, 5), rat(29, 5))
        .item(rat(1, 2), rat(57, 10), rat(77, 10))
        // b_g (label 1): single l-subperiod [1, 2).
        .item(rat(1, 20), rat(1, 1), rat(2, 1))
        // b_k (label 2): single l-subperiod [3, 5).
        .item(rat(1, 20), rat(3, 1), rat(5, 1))
        .build()
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_render_with_expected_structure() {
        let f1 = fig1_span();
        assert!(f1.contains("span"));
        assert!(f1.contains('█'));

        let f2 = fig2_usage_periods();
        assert!(f2.contains("E_k"));
        assert!(f2.contains('█'));

        let f3 = fig3_selection();
        assert!(f3.contains('▼'), "selection arrows missing:\n{f3}");
        assert!(f3.contains('l'), "l-subperiods missing");
        assert!(f3.contains('h'), "h-subperiod missing:\n{f3}");

        let f4 = fig4_supplier();
        assert!(f4.contains('◆'), "supplier periods missing:\n{f4}");
        assert!(
            f4.contains("u(consolidated)"),
            "consolidated supplier period missing:\n{f4}"
        );

        let f5 = fig5_case3();
        assert!(f5.contains('◆'));

        let f6 = fig6_case4();
        assert!(f6.contains('◆'));
        assert!(
            f6.contains("u(consolidated)"),
            "consolidated follower missing:\n{f6}"
        );
    }

    #[test]
    fn figure_instances_certify() {
        for inst in [selection_instance(), cross_bin_instance()] {
            let report = dbp_analysis::certify_first_fit(&inst);
            assert!(report.all_passed(), "{report}");
        }
    }

    #[test]
    fn figures_are_deterministic() {
        assert_eq!(fig3_selection(), fig3_selection());
        assert_eq!(fig6_case4(), fig6_case4());
    }
}
