//! E6 — the bounded-item-size regime (§I recap).
//!
//! The paper's earlier work showed that when every item size is at
//! most `1/β` (`β > 1`), First Fit's ratio improves to a
//! `(β/(β−1))·µ + O(1)` form — intuitively, small items let First
//! Fit keep bins well-filled. This sweep caps random-workload sizes
//! at `1/β` and reports the worst measured ratio per `(β, µ)` next to
//! both the general `µ+4` bound and the β-curve slope `β/(β−1)·µ`.

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::FirstFit;
use dbp_core::Runner;
use dbp_numeric::{rat, Rational};
use dbp_par::par_map;
use dbp_workloads::RandomWorkload;

/// One (β, µ) row.
#[derive(Debug, Clone)]
pub struct BetaRow {
    /// Size cap denominator (`sizes ≤ 1/β`).
    pub beta: u32,
    /// Duration ratio.
    pub mu: u32,
    /// Instances with exact adversary.
    pub instances: usize,
    /// Worst measured FF ratio.
    pub max_ratio: Rational,
    /// The β-bound slope term `(β/(β−1))·µ` for orientation.
    pub beta_slope: Rational,
    /// The general bound `µ+4`.
    pub general_bound: Rational,
}

/// Runs the (β × µ) sweep.
pub fn run(betas: &[u32], mus: &[u32], n: usize, seeds: u64) -> (Vec<BetaRow>, Table) {
    let mut rows = Vec::new();
    for &beta in betas {
        for &mu in mus {
            let mu_r = rat(mu as i128, 1);
            let seed_list: Vec<u64> = (0..seeds).collect();
            let ratios = par_map(&seed_list, |&seed| {
                let inst = RandomWorkload::with_sharp_mu(n, mu_r, seed)
                    .capped_sizes(beta)
                    .generate();
                let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
                measure_ratio(&inst, &out).exact_ratio()
            });
            let mut max_ratio = Rational::ZERO;
            let mut counted = 0;
            for r in ratios.into_iter().flatten() {
                counted += 1;
                if r > max_ratio {
                    max_ratio = r;
                }
            }
            rows.push(BetaRow {
                beta,
                mu,
                instances: counted,
                max_ratio,
                beta_slope: rat(beta as i128, beta as i128 - 1) * mu_r,
                general_bound: mu_r + rat(4, 1),
            });
        }
    }

    let mut table = Table::new(
        "E6: First Fit under size caps (sizes ≤ 1/β)",
        &["β", "µ", "instances", "max FF/OPT", "(β/(β−1))µ", "µ+4"],
    );
    for r in &rows {
        table.row(vec![
            r.beta.to_string(),
            r.mu.to_string(),
            r.instances.to_string(),
            dec(r.max_ratio),
            dec(r.beta_slope),
            r.general_bound.to_string(),
        ]);
    }
    table.note("larger β (smaller items) → better packing → lower measured ratios");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_items_pack_better() {
        let (rows, _) = run(&[2, 8], &[4], 40, 6);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.instances > 0);
            assert!(r.max_ratio <= r.general_bound, "bound violated");
            assert!(r.max_ratio >= Rational::ONE);
        }
        // β=8 (tiny items) should pack no worse than β=2 overall.
        assert!(
            rows[1].max_ratio <= rows[0].max_ratio + rat(1, 2),
            "tiny items should not be much worse: {} vs {}",
            rows[1].max_ratio,
            rows[0].max_ratio
        );
    }
}
