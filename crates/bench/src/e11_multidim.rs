//! E11 — multi-dimensional extension (the paper's §IX future work).
//!
//! CPU+memory workloads dispatched by vector First Fit vs the vector
//! repacking adversary. Reports the measured ratio per (µ,
//! correlation) cell and the d = 1 sanity column (which must agree
//! with the scalar E1 behavior — enforced bit-for-bit in the
//! `dbp-multidim` test suite).

use crate::table::{dec, Table};
use dbp_multidim::{
    md_opt_total, run_md_packing, Correlation, MdFirstFit, MdNextFit, MdRandomWorkload,
};
use dbp_numeric::{rat, Rational};
use dbp_par::par_map;

/// One (µ, correlation) row.
#[derive(Debug, Clone)]
pub struct MultidimRow {
    /// Duration ratio target.
    pub mu: u32,
    /// Correlation label.
    pub correlation: &'static str,
    /// Instances with a usable adversary bracket.
    pub instances: usize,
    /// Worst measured FF ratio (vs adversary lower bound — an upper
    /// estimate of the true ratio).
    pub max_ff_ratio: Rational,
    /// Mean NF/FF cost quotient (how much Next Fit overpays).
    pub mean_nf_over_ff: f64,
}

/// Runs the sweep.
pub fn run(mus: &[u32], n: usize, seeds: u64) -> (Vec<MultidimRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        for (correlation, label) in [
            (Correlation::Complementary, "complementary"),
            (Correlation::Independent, "independent"),
            (Correlation::Identical, "identical"),
        ] {
            let seed_list: Vec<u64> = (0..seeds).collect();
            let cells = par_map(&seed_list, |&seed| {
                let mut wl = MdRandomWorkload::cpu_mem(n, rat(mu as i128, 1), seed);
                wl.correlation = correlation;
                let inst = wl.generate();
                let ff = run_md_packing(&inst, &mut MdFirstFit::new()).unwrap();
                let nf = run_md_packing(&inst, &mut MdNextFit::new()).unwrap();
                let opt = md_opt_total(&inst, 14);
                let ratio = (!opt.lower.is_zero()).then(|| ff.total_usage() / opt.lower);
                let quotient = if ff.total_usage().is_zero() {
                    1.0
                } else {
                    (nf.total_usage() / ff.total_usage()).to_f64()
                };
                (ratio, quotient)
            });
            let mut max_ratio = Rational::ZERO;
            let mut quot_sum = 0.0f64;
            let mut counted = 0usize;
            for (ratio, quotient) in cells {
                if let Some(r) = ratio {
                    counted += 1;
                    if r > max_ratio {
                        max_ratio = r;
                    }
                }
                quot_sum += quotient;
            }
            rows.push(MultidimRow {
                mu,
                correlation: label,
                instances: counted,
                max_ff_ratio: max_ratio,
                mean_nf_over_ff: quot_sum / seeds.max(1) as f64,
            });
        }
    }

    let mut table = Table::new(
        "E11: multi-dimensional (CPU+memory) MinUsageTime DBP — §IX future work",
        &["µ", "correlation", "instances", "max FF/OPT*", "mean NF/FF"],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            r.correlation.to_string(),
            r.instances.to_string(),
            dec(r.max_ff_ratio),
            format!("{:.3}", r.mean_nf_over_ff),
        ]);
    }
    table.note(
        "FF/OPT* uses the adversary's certified lower bound (an upper estimate of the ratio)",
    );
    table.note("d = 1 equivalence with the scalar engine is enforced bit-for-bit in tests");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multidim_shape() {
        let (rows, table) = run(&[2, 4], 30, 4);
        assert_eq!(rows.len(), 6);
        assert!(!table.is_empty());
        for r in &rows {
            assert!(r.instances > 0, "no adversary bracket at µ={}", r.mu);
            assert!(r.max_ff_ratio >= Rational::ONE);
            // Next Fit does not meaningfully beat First Fit on
            // average; the margin tolerates per-RNG-stream noise at
            // this small seed count.
            assert!(r.mean_nf_over_ff >= 0.95, "{}", r.mean_nf_over_ff);
            // FF stays within the generous lifted bound (µ+4)·d.
            let generous = rat((r.mu as i128 + 4) * 2, 1);
            assert!(r.max_ff_ratio <= generous);
        }
    }
}
