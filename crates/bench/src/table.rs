//! Minimal aligned-text tables for experiment output.

use std::fmt;

/// A printable table with a title, headers and string cells.
///
/// ```
/// use dbp_bench::Table;
/// let mut t = Table::new("demo", &["x", "x²"]);
/// t.row(vec!["2".into(), "4".into()]);
/// t.row(vec!["10".into(), "100".into()]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("100"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Looks up a column index by header name.
    pub fn col(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a rational as a fixed-point decimal with 3 digits (for
/// table cells; exact values live in the structured results).
pub fn dec(x: dbp_numeric::Rational) -> String {
    format!("{:.3}", x.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("== t =="));
        assert!(s.contains("note: a note"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn lookup_helpers() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(vec!["7".into(), "8".into()]);
        assert_eq!(t.col("y"), Some(1));
        assert_eq!(t.col("z"), None);
        assert_eq!(t.cell(0, 1), "8");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn dec_formats() {
        assert_eq!(dec(rat(1, 2)), "0.500");
        assert_eq!(dec(rat(22, 7)), "3.143");
    }
}
