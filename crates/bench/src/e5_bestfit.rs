//! E5 — Best Fit vs First Fit separation.
//!
//! On the scatter gadget (`best_fit_scatter`) Best Fit's
//! fullest-bin rule strands every probe in a fresh bin that then
//! stays open for `µ`, while First Fit consolidates all probes into
//! the earliest bin — and is in fact exactly optimal. The measured
//! BF/OPT ratio grows like `µ/2` while FF/OPT pins to 1, reproducing
//! the paper's claim that Best Fit (unlike First Fit) has no
//! `O(µ)+O(1)`-style guarantee. (The paper's stronger
//! unbounded-at-fixed-µ statement uses the external construction of
//! \[15\]/\[16\]; see the reproduction note on `best_fit_scatter`.)

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::{BestFit, FirstFit, Runner};
use dbp_numeric::Rational;
use dbp_workloads::adversarial::best_fit_scatter;

/// One (µ, k) row.
#[derive(Debug, Clone)]
pub struct ScatterRow {
    /// Duration ratio.
    pub mu: u32,
    /// Rounds (bins Best Fit is forced to scatter over).
    pub k: u32,
    /// Best Fit cost.
    pub bf_cost: Rational,
    /// First Fit cost.
    pub ff_cost: Rational,
    /// Exact adversary.
    pub opt: Rational,
    /// Best Fit ratio.
    pub bf_ratio: Rational,
    /// First Fit ratio.
    pub ff_ratio: Rational,
}

/// Runs the sweep.
pub fn run(mus: &[u32], ks: &[u32]) -> (Vec<ScatterRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        for &k in ks {
            let (inst, pred) = best_fit_scatter(k, mu);
            let bf = Runner::new(&inst).run(&mut BestFit::new()).unwrap();
            let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
            let rep_bf = measure_ratio(&inst, &bf);
            let rep_ff = measure_ratio(&inst, &ff);
            assert_eq!(bf.total_usage(), pred.algorithm_cost, "BF prediction");
            rows.push(ScatterRow {
                mu,
                k,
                bf_cost: bf.total_usage(),
                ff_cost: ff.total_usage(),
                opt: rep_bf.opt_lower,
                bf_ratio: rep_bf.exact_ratio().or(rep_bf.ratio_upper).unwrap(),
                ff_ratio: rep_ff.exact_ratio().or(rep_ff.ratio_upper).unwrap(),
            });
        }
    }

    let mut table = Table::new(
        "E5: Best Fit scatters, First Fit consolidates (scatter gadget)",
        &[
            "µ", "k", "BF cost", "FF cost", "OPT", "BF/OPT", "FF/OPT", "µ/2",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            r.k.to_string(),
            r.bf_cost.to_string(),
            r.ff_cost.to_string(),
            r.opt.to_string(),
            dec(r.bf_ratio),
            dec(r.ff_ratio),
            dec(Rational::from_int(r.mu as i128) * Rational::HALF),
        ]);
    }
    table.note("BF/OPT → µ/2 as k grows; FF is exactly optimal on this family");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    #[test]
    fn bf_ratio_grows_with_mu_while_ff_stays_optimal() {
        let (rows, _) = run(&[4, 8], &[10]);
        for r in &rows {
            assert_eq!(
                r.ff_ratio,
                rat(1, 1),
                "FF should be optimal, got {}",
                r.ff_ratio
            );
            assert!(r.bf_ratio > rat(3, 2), "BF ratio {} too small", r.bf_ratio);
        }
        assert!(
            rows[1].bf_ratio > rows[0].bf_ratio,
            "BF ratio should grow with µ"
        );
    }

    #[test]
    fn bf_ratio_approaches_half_mu_in_k() {
        let mu = 10u32;
        let (rows, _) = run(&[mu], &[4, 8, 12]);
        let series: Vec<Rational> = rows.iter().map(|r| r.bf_ratio).collect();
        for w in series.windows(2) {
            assert!(w[1] > w[0], "BF ratio should grow with k");
        }
        let last = *series.last().unwrap();
        assert!(last > rat(3, 1), "ratio {last} should approach µ/2 = 5");
        assert!(last < rat(5, 1));
    }
}
