//! E1 — Theorem 1: First Fit is `(µ+4)`-competitive.
//!
//! Sweeps `µ` across randomized instance families, measures First
//! Fit's achieved ratio against the **exact** repacking adversary,
//! and reports the worst and mean ratios next to the `µ+4` bound,
//! plus the margin of the instance-wise certificate
//! `FF ≤ (µ+3)·vol + span`. The paper predicts every measured ratio
//! stays below `µ+4` (and typically far below — the bound is
//! worst-case).

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::{FirstFitFast, Runner};
use dbp_numeric::{rat, Rational};
use dbp_par::par_map;
use dbp_simcore::SummaryStats;
use dbp_workloads::RandomWorkload;

/// One µ-row of the experiment.
#[derive(Debug, Clone)]
pub struct MuRow {
    /// Target duration ratio.
    pub mu: Rational,
    /// Instances measured (those with exact adversary).
    pub instances: usize,
    /// Worst measured `FF/OPT`.
    pub max_ratio: Rational,
    /// Mean measured ratio.
    pub mean_ratio: f64,
    /// The `µ+4` bound.
    pub bound: Rational,
    /// Smallest observed slack in `FF ≤ (µ+3)·vol + span`, as the
    /// quotient `FF / ((µ+3)·vol + span)` — must stay ≤ 1.
    pub worst_cert_quotient: Rational,
}

/// Runs the sweep: `seeds_per_mu` random instances of `n` items for
/// each µ in `mus`.
pub fn run(mus: &[u32], n: usize, seeds_per_mu: u64) -> (Vec<MuRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        let mu_r = rat(mu as i128, 1);
        let seeds: Vec<u64> = (0..seeds_per_mu).collect();
        let cells = par_map(&seeds, |&seed| {
            // Mix sharp and smooth duration laws across seeds.
            let mut wl = if seed % 2 == 0 {
                RandomWorkload::with_sharp_mu(n, mu_r, seed)
            } else {
                RandomWorkload::with_mu(n, mu_r, seed)
            };
            // Scale the arrival horizon with µ to keep the peak
            // concurrency inside the exact adversary's reach.
            wl.arrivals = dbp_workloads::random::ArrivalDist::Uniform {
                horizon: (rat(n as i128, 16) * mu_r).max(rat(n as i128, 8)),
            };
            let inst = wl.generate();
            // Tick-compiled First Fit: bit-identical to the Rational
            // engine, integer arithmetic on the hot path.
            let out = Runner::new(&inst).run(&mut FirstFitFast::new()).unwrap();
            let rep = measure_ratio(&inst, &out);
            let actual_mu = inst.mu().unwrap_or(Rational::ONE);
            let cert_bound = (actual_mu + Rational::from_int(3)) * inst.vol() + inst.span();
            let cert_q = if cert_bound.is_zero() {
                Rational::ZERO
            } else {
                out.total_usage() / cert_bound
            };
            (rep.exact_ratio(), cert_q)
        });

        let mut max_ratio = Rational::ZERO;
        let mut mean = SummaryStats::new();
        let mut worst_cert = Rational::ZERO;
        let mut counted = 0usize;
        for (ratio, cert_q) in cells {
            if let Some(r) = ratio {
                counted += 1;
                mean.push(r.to_f64());
                if r > max_ratio {
                    max_ratio = r;
                }
            }
            if cert_q > worst_cert {
                worst_cert = cert_q;
            }
        }
        rows.push(MuRow {
            mu: mu_r,
            instances: counted,
            max_ratio,
            mean_ratio: mean.mean().unwrap_or(0.0),
            bound: mu_r + Rational::from_int(4),
            worst_cert_quotient: worst_cert,
        });
    }

    let mut table = Table::new(
        "E1 / Theorem 1: measured First Fit ratio vs the (µ+4) bound",
        &[
            "µ",
            "instances",
            "max FF/OPT",
            "mean FF/OPT",
            "µ+4",
            "cert quotient",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            r.instances.to_string(),
            dec(r.max_ratio),
            format!("{:.3}", r.mean_ratio),
            r.bound.to_string(),
            dec(r.worst_cert_quotient),
        ]);
    }
    table.note("cert quotient = max over instances of FF/((µ+3)·vol+span); Theorem 1 requires ≤ 1");
    table.note("ratios use the exact repacking adversary OPT_total = ∫OPT(R,t)dt");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_shape_holds() {
        let (rows, table) = run(&[1, 2, 4], 36, 6);
        assert_eq!(rows.len(), 3);
        assert_eq!(table.len(), 3);
        for r in &rows {
            assert!(r.instances > 0, "no exact adversary at µ = {}", r.mu);
            assert!(
                r.max_ratio <= r.bound,
                "Theorem 1 violated at µ = {}: {} > {}",
                r.mu,
                r.max_ratio,
                r.bound
            );
            assert!(
                r.worst_cert_quotient <= Rational::ONE,
                "certificate violated at µ = {}",
                r.mu
            );
            assert!(r.max_ratio >= Rational::ONE, "ratio below 1 is impossible");
        }
    }
}
