//! E12 — the value of knowing departures (ablation).
//!
//! MinUsageTime DBP's hardness comes from unknown departure times
//! (the universal µ lower bound exploits exactly that). This ablation
//! removes the constraint: [`dbp_core::DepartureAlignedFit`] sees the
//! full instance and groups items by departure epoch. The sweep
//! compares, per µ:
//!
//! * First Fit (online — the paper's subject),
//! * DepartureAlignedFit (clairvoyant, non-migratory),
//! * the repacking adversary (clairvoyant *and* migratory).
//!
//! On the adversarial pair family, clairvoyance collapses the ratio
//! from ≈ µ to ≈ 1 — quantifying the paper's core premise that the
//! µ-dependence is the *price of not knowing durations*.

use crate::table::{dec, Table};
use dbp_analysis::measure_ratio;
use dbp_core::{DepartureAlignedFit, FirstFit, Runner};
use dbp_numeric::{rat, Rational};
use dbp_workloads::adversarial::universal_mu_pairs;
use dbp_workloads::RandomWorkload;

/// One µ row.
#[derive(Debug, Clone)]
pub struct ClairvoyanceRow {
    /// Duration ratio.
    pub mu: u32,
    /// FF ratio on the pair gadget.
    pub ff_gadget: Rational,
    /// Clairvoyant ratio on the pair gadget.
    pub cv_gadget: Rational,
    /// Mean FF ratio on random workloads (exact adversary).
    pub ff_random: f64,
    /// Mean clairvoyant ratio on random workloads.
    pub cv_random: f64,
}

/// Runs the sweep.
pub fn run(mus: &[u32], k: u32, n: usize, seeds: u64) -> (Vec<ClairvoyanceRow>, Table) {
    let mut rows = Vec::new();
    for &mu in mus {
        let (gadget, _) = universal_mu_pairs(k, mu, k.max(4));
        let ff_out = Runner::new(&gadget).run(&mut FirstFit::new()).unwrap();
        let mut cv = DepartureAlignedFit::new(&gadget);
        let cv_out = Runner::new(&gadget).run(&mut cv).unwrap();
        let ff_gadget = measure_ratio(&gadget, &ff_out).exact_ratio().unwrap();
        let cv_gadget = measure_ratio(&gadget, &cv_out).exact_ratio().unwrap();

        let mut ff_acc = 0.0f64;
        let mut cv_acc = 0.0f64;
        let mut count = 0usize;
        for seed in 0..seeds {
            let inst = RandomWorkload::with_sharp_mu(n, rat(mu as i128, 1), seed).generate();
            let ff = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
            let mut cv = DepartureAlignedFit::new(&inst);
            let cvo = Runner::new(&inst).run(&mut cv).unwrap();
            let ff_rep = measure_ratio(&inst, &ff);
            let cv_rep = measure_ratio(&inst, &cvo);
            if let (Some(a), Some(b)) = (ff_rep.exact_ratio(), cv_rep.exact_ratio()) {
                ff_acc += a.to_f64();
                cv_acc += b.to_f64();
                count += 1;
            }
        }

        rows.push(ClairvoyanceRow {
            mu,
            ff_gadget,
            cv_gadget,
            ff_random: ff_acc / count.max(1) as f64,
            cv_random: cv_acc / count.max(1) as f64,
        });
    }

    let mut table = Table::new(
        "E12: the value of knowing departures (clairvoyance ablation)",
        &["µ", "FF gadget", "CV gadget", "FF random", "CV random"],
    );
    for r in &rows {
        table.row(vec![
            r.mu.to_string(),
            dec(r.ff_gadget),
            dec(r.cv_gadget),
            format!("{:.3}", r.ff_random),
            format!("{:.3}", r.cv_random),
        ]);
    }
    table.note("CV = DepartureAlignedFit (sees departures, no migration); ratios vs exact OPT");
    table.note("the µ-dependence of online algorithms is the price of unknown durations");
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clairvoyance_collapses_the_gadget_ratio() {
        let (rows, _) = run(&[4, 8], 10, 24, 4);
        for r in &rows {
            assert!(
                r.cv_gadget * rat(2, 1) < r.ff_gadget,
                "µ={}: CV {} should be far below FF {}",
                r.mu,
                r.cv_gadget,
                r.ff_gadget
            );
            assert!(r.cv_gadget >= Rational::ONE);
        }
        // FF's gadget ratio grows with µ; CV's does not.
        assert!(rows[1].ff_gadget > rows[0].ff_gadget);
        assert!(rows[1].cv_gadget <= rows[0].cv_gadget + rat(1, 10));
    }
}
