//! E10 — certification of the §IV–§VII machinery.
//!
//! Batch-runs the executable propositions/lemmas over randomized
//! instance families and reports pass counts per check. This is the
//! reproduction's self-audit: every row must read `fail = 0`.

use crate::table::Table;
use dbp_analysis::certify_first_fit;
use dbp_numeric::rat;
use dbp_par::par_map;
use dbp_workloads::RandomWorkload;
use std::collections::BTreeMap;

/// Aggregated result for one certificate.
#[derive(Debug, Clone, Default)]
pub struct CheckTally {
    /// Instances where the check passed.
    pub pass: usize,
    /// Instances where it failed.
    pub fail: usize,
    /// Instances where it was skipped (e.g. exact OPT out of reach).
    pub skip: usize,
}

/// Runs `seeds` instances per µ in `mus`, tallying every check.
pub fn run(mus: &[u32], n: usize, seeds: u64) -> (BTreeMap<&'static str, CheckTally>, Table) {
    let mut cells: Vec<(u32, u64)> = Vec::new();
    for &mu in mus {
        for seed in 0..seeds {
            cells.push((mu, seed));
        }
    }
    let reports = par_map(&cells, |&(mu, seed)| {
        let wl = if seed % 2 == 0 {
            RandomWorkload::with_sharp_mu(n, rat(mu as i128, 1), seed)
        } else {
            RandomWorkload::with_mu(n, rat(mu as i128, 1), seed)
        };
        certify_first_fit(&wl.generate())
    });

    let mut tallies: BTreeMap<&'static str, CheckTally> = BTreeMap::new();
    for report in &reports {
        for check in &report.checks {
            let t = tallies.entry(check.name).or_default();
            match check.passed {
                Some(true) => t.pass += 1,
                Some(false) => t.fail += 1,
                None => t.skip += 1,
            }
        }
    }

    let mut table = Table::new(
        "E10: §IV–§VII machinery certification over randomized instances",
        &["check", "pass", "fail", "skip"],
    );
    for (name, t) in &tallies {
        table.row(vec![
            name.to_string(),
            t.pass.to_string(),
            t.fail.to_string(),
            t.skip.to_string(),
        ]);
    }
    table.note(&format!(
        "{} instances ({} µ values × {} seeds, n = {})",
        cells.len(),
        mus.len(),
        seeds,
        n
    ));
    (tallies, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_fails() {
        let (tallies, table) = run(&[1, 4, 8], 24, 8);
        assert!(!tallies.is_empty());
        for (name, t) in &tallies {
            assert_eq!(t.fail, 0, "check {name} failed {} times", t.fail);
            assert!(t.pass > 0, "check {name} never ran");
        }
        assert!(table.len() >= 10, "expected ≥ 10 distinct checks");
    }
}
