//! Attaching the profiler must be invisible to the packing.
//!
//! A [`Profiler`] hangs off the engines' `PhaseProbe` hooks, which
//! carry no packing semantics — so a profiled run must produce the
//! same outcome, bit for bit, as an unprofiled one, on **both**
//! engines. These properties replay random instances — dense with
//! equal-time departure/arrival boundaries, exact fills, and mid-run
//! bin closures — through profiled and bare runs of each Any-Fit
//! policy on each backend and require identical outcomes.

use dbp_core::prelude::*;
use dbp_core::{PackingAlgorithm, PackingOutcome, SessionError};
use dbp_numeric::rat;
use dbp_obs::Profiler;
use proptest::prelude::*;

/// Strategy: a well-formed instance with up to 40 items.
///
/// Quarter-grid arrivals and durations force many simultaneous
/// events (departure-before-arrival ties at equal timestamps); the
/// size law mixes tiny and near-unit items so both the "fits
/// somewhere" and "forces a new bin" branches fire constantly.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=60, 1i128..=20).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den); // in (0, 1]
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..40)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Runs `make()` bare and under a fresh profiler on `backend`,
/// requiring identical outcomes — and that the profiler saw every
/// event of the run it watched.
fn assert_profile_invisible(
    inst: &Instance,
    backend: Backend,
    make: &dyn Fn() -> Box<dyn PackingAlgorithm>,
) -> Result<(), TestCaseError> {
    let bare: Result<PackingOutcome, SessionError> =
        Runner::new(inst).backend(backend).run(make().as_mut());
    let mut prof = Profiler::new();
    let profiled = Runner::new(inst)
        .backend(backend)
        .probe(&mut prof)
        .run(make().as_mut());
    match (bare, profiled) {
        (Ok(b), Ok(p)) => {
            prop_assert_eq!(&b, &p, "profiled run diverged on {:?}", backend);
            prop_assert_eq!(prof.events(), 2 * inst.len() as u64);
            let total: f64 = prof.phase_shares().iter().map(|(_, s)| s).sum();
            if !inst.is_empty() {
                prop_assert!((total - 1.0).abs() < 1e-9, "shares sum to {}", total);
            }
        }
        // Strict-tick failures (or any error) must not depend on the
        // probe either.
        (b, p) => prop_assert_eq!(b, p),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn profiled_first_fit_is_bit_identical(inst in instance_strategy()) {
        for backend in [Backend::Auto, Backend::Exact, Backend::Tick] {
            assert_profile_invisible(&inst, backend, &|| Box::new(FirstFit::new()))?;
            assert_profile_invisible(&inst, backend, &|| Box::new(FirstFitFast::new()))?;
        }
    }

    #[test]
    fn profiled_best_fit_is_bit_identical(inst in instance_strategy()) {
        for backend in [Backend::Auto, Backend::Exact, Backend::Tick] {
            assert_profile_invisible(&inst, backend, &|| Box::new(BestFit::new()))?;
            assert_profile_invisible(&inst, backend, &|| Box::new(BestFitFast::new()))?;
        }
    }

    #[test]
    fn profiled_worst_fit_is_bit_identical(inst in instance_strategy()) {
        for backend in [Backend::Auto, Backend::Exact, Backend::Tick] {
            assert_profile_invisible(&inst, backend, &|| Box::new(WorstFit::new()))?;
            assert_profile_invisible(&inst, backend, &|| Box::new(WorstFitFast::new()))?;
        }
    }

    /// Event-sampled profilers skip clock reads, never events: the
    /// outcome and the event tally must match the every-event run.
    #[test]
    fn sampling_rate_changes_nothing_but_span_counts(
        inst in instance_strategy(),
        every in 1u64..=7,
    ) {
        let bare = Runner::new(&inst).run(&mut FirstFitFast::new()).unwrap();
        let mut prof = Profiler::new().with_sampling(every);
        let profiled = Runner::new(&inst)
            .probe(&mut prof)
            .run(&mut FirstFitFast::new())
            .unwrap();
        prop_assert_eq!(bare, profiled);
        prop_assert_eq!(prof.events(), 2 * inst.len() as u64);
        prop_assert_eq!(prof.sampled_events(), prof.events().div_ceil(every));
    }
}

/// The crossover-scale anchor: a staircase wide enough to drive the
/// tick engine's adaptive scan over `SCAN_CROSSOVER` while profiled,
/// checked against the bare run on both engines.
#[test]
fn profiled_staircase_crosses_the_scan_threshold() {
    let n: i128 = 5 * dbp_core::SCAN_CROSSOVER as i128;
    let window: i128 = 3 * dbp_core::SCAN_CROSSOVER as i128;
    let mut b = Instance::builder();
    for i in 0..n {
        let size = if i % 5 == 0 {
            rat(11 + (i * 13) % 23, 100)
        } else {
            rat(51 + (i * 7) % 49, 100)
        };
        b = b.item(size, rat(i, 1), rat(i + window, 1));
    }
    let inst = b.build().unwrap();
    let bare = Runner::new(&inst).run(&mut FirstFitFast::new()).unwrap();
    let mut prof = Profiler::new();
    let profiled = Runner::new(&inst)
        .probe(&mut prof)
        .run(&mut FirstFitFast::new())
        .unwrap();
    assert_eq!(bare, profiled);
    assert!(
        bare.max_open_bins() > dbp_core::SCAN_CROSSOVER,
        "staircase must exceed the crossover, got {}",
        bare.max_open_bins()
    );
    // Post-crossover arrivals report tree descents, pre-crossover
    // ones linear scans: both counters saw work.
    use dbp_core::ProbeCounter;
    assert!(prof.counter(ProbeCounter::BinsScanned).count() > 0);
    assert!(prof.counter(ProbeCounter::TreeDepth).count() > 0);
}
