//! Chrome trace-event export: open a recorded run in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping: each bin becomes a track (`tid` = bin id) on one process;
//! its usage period `[opened, closed)` is a `B`/`E` duration pair,
//! and placements/departures are instant events on the bin's track.
//! One simulated time unit is exported as one second (`ts` is in
//! microseconds), which keeps the numbers readable for the
//! small-rational instances the paper works with.

use crate::trace::TraceEvent;
use dbp_numeric::Rational;
use serde::Value;

fn micros(t: Rational) -> Value {
    Value::Float(t.to_f64() * 1e6)
}

fn event(name: String, ph: &str, ts: Rational, tid: u32, args: Vec<(String, Value)>) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(name)),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("ts".to_string(), micros(ts)),
        ("pid".to_string(), Value::Int(1)),
        ("tid".to_string(), Value::Int(tid as i128)),
    ];
    if ph == "i" {
        // Thread-scoped instant, so Perfetto draws it on the track.
        fields.push(("s".to_string(), Value::Str("t".to_string())));
    }
    if !args.is_empty() {
        fields.push(("args".to_string(), Value::Object(args)));
    }
    Value::Object(fields)
}

/// Converts a trace into a Chrome trace-event JSON document.
///
/// The result serializes with `serde_json::to_string` into a file
/// that Perfetto opens directly.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut out: Vec<Value> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::BinOpened { t, bin } => {
                out.push(event(format!("{bin} open"), "B", *t, bin.0, vec![]));
            }
            TraceEvent::BinClosed {
                t,
                bin,
                level_integral,
                peak_level,
                items,
                ..
            } => {
                out.push(event(
                    format!("{bin} open"),
                    "E",
                    *t,
                    bin.0,
                    vec![
                        (
                            "level_integral".to_string(),
                            Value::Float(level_integral.to_f64()),
                        ),
                        ("peak_level".to_string(), Value::Float(peak_level.to_f64())),
                        ("items".to_string(), Value::Int(*items as i128)),
                    ],
                ));
            }
            TraceEvent::Placement {
                t,
                item,
                bin,
                opened_new,
                scanned,
                ..
            } => {
                out.push(event(
                    format!("place {item}"),
                    "i",
                    *t,
                    bin.0,
                    vec![
                        ("opened_new".to_string(), Value::Bool(*opened_new)),
                        ("scanned".to_string(), Value::Int(*scanned as i128)),
                    ],
                ));
            }
            TraceEvent::Departure { t, item, bin, size } => {
                out.push(event(
                    format!("depart {item}"),
                    "i",
                    *t,
                    bin.0,
                    vec![("size".to_string(), Value::Float(size.to_f64()))],
                ));
            }
            // Arrivals duplicate placement info and RunFinished has no
            // timestamp; neither maps to a track event.
            TraceEvent::Arrival { .. } | TraceEvent::RunFinished { .. } => {}
        }
    }
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(out)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// [`chrome_trace`] plus extra pre-built trace events — the
/// profiler's phase spans (`Profiler::chrome_events`), which live on
/// their own process id so Perfetto shows bin tracks (simulated time)
/// and profiler spans (wall time) side by side without colliding.
pub fn chrome_trace_with_spans(events: &[TraceEvent], extra: Vec<Value>) -> Value {
    let mut doc = chrome_trace(events);
    if let Value::Object(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key.as_str() == "traceEvents" {
                if let Value::Array(list) = value {
                    list.extend(extra);
                }
                break;
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use dbp_core::{FirstFit, Instance, Runner};
    use dbp_numeric::rat;

    #[test]
    fn export_is_balanced_and_parseable() {
        let jobs = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(3, 4), rat(0, 1), rat(3, 1))
            .build()
            .unwrap();
        let mut rec = TraceRecorder::new();
        let out = Runner::new(&jobs)
            .observer(&mut rec)
            .run(&mut FirstFit::new())
            .unwrap();
        let doc = chrome_trace(rec.events());
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(p))
                .count()
        };
        // One B and one E per bin, one instant per placement/departure.
        assert_eq!(ph("B"), out.bins_opened());
        assert_eq!(ph("E"), out.bins_opened());
        assert_eq!(ph("i"), 4);
        // The document survives a JSON round trip.
        let text = serde_json::to_string(&doc).unwrap();
        assert_eq!(serde_json::parse(&text).unwrap(), doc);
    }
}
