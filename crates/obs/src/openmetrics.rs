//! OpenMetrics text exposition and a std-only scrape endpoint.
//!
//! [`MetricsRegistry::to_openmetrics`] renders a registry in the
//! [OpenMetrics text format] (the Prometheus exposition format), and
//! [`MetricsServer`] serves it over HTTP from a plain
//! `std::net::TcpListener` — no HTTP framework, no new dependencies.
//! All metric names are prefixed `dbp_` and sanitized to the
//! OpenMetrics charset.
//!
//! Section mapping:
//!
//! * counters → `counter` families, suffixed `_total`;
//! * gauges and exact totals → `gauge` families (totals are rendered
//!   as their `f64` value; the exact `{num, den}` form lives in the
//!   JSON snapshot);
//! * time-weighted signals → two gauges, `<name>_current` and
//!   `<name>_integral`;
//! * histograms → a `histogram` family with cumulative
//!   `_bucket{le="..."}` counts (log₂ bounds), a `+Inf` bucket, and
//!   `_sum`/`_count`.
//!
//! The page ends with the mandatory `# EOF` terminator.
//!
//! [OpenMetrics text format]: https://prometheus.io/docs/specs/om/open_metrics_spec/

use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The HTTP `Content-Type` of an OpenMetrics text page.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Maps a registry name into the OpenMetrics charset
/// (`[a-zA-Z0-9_:]`, non-digit first) under the `dbp_` prefix.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("dbp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders an `f64` the way the exposition format expects: `+Inf`,
/// `-Inf`, `NaN`, or shortest-exact decimal.
fn number(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// Renders the registry as an OpenMetrics text page (see the
    /// [module docs](self) for the section mapping). The output is
    /// deterministic: families appear in registry name order.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n}_total {value}");
        }
        for (name, value) in self.gauges() {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", number(value));
        }
        for (name, value) in self.totals() {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", number(value.to_f64()));
        }
        for (name, w) in self.weighted() {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n}_current gauge");
            let _ = writeln!(out, "{n}_current {}", number(w.current().to_f64()));
            let _ = writeln!(out, "# TYPE {n}_integral gauge");
            let _ = writeln!(out, "{n}_integral {}", number(w.integral().to_f64()));
        }
        for (name, h) in self.histograms() {
            let n = metric_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (le, count) in h.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", number(le));
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{n}_sum {}", number(h.sum()));
            let _ = writeln!(out, "{n}_count {}", h.count());
        }
        out.push_str("# EOF\n");
        out
    }
}

/// A minimal scrape endpoint: serves the current contents of a shared
/// [`MetricsRegistry`] as an OpenMetrics page on every HTTP request.
///
/// Built on a non-blocking `std::net::TcpListener` polled by one
/// background thread. `GET /metrics` serves the page, `GET /healthz`
/// a liveness probe (`ok` plus uptime and tenant count, read from the
/// registry's `server_tenants` gauge), `HEAD` either path's headers
/// alone, and every other path is `404 Not Found` — so a
/// misconfigured scrape job fails loudly instead of silently
/// ingesting the page under the wrong path. Update the registry
/// through [`registry`](Self::registry); stop and join with
/// [`stop`](Self::stop).
///
/// ```
/// use dbp_obs::{MetricsRegistry, MetricsServer};
///
/// let server = MetricsServer::start("127.0.0.1:0").unwrap();
/// server.registry().lock().unwrap().inc("scrapes_ready");
/// let addr = server.local_addr();
/// // … point a scraper at http://{addr}/metrics …
/// server.stop();
/// # let _ = addr;
/// ```
pub struct MetricsServer {
    registry: Arc<Mutex<MetricsRegistry>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free
    /// port) and starts serving an initially empty registry.
    pub fn start(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        Self::start_with(Arc::new(Mutex::new(MetricsRegistry::new())), addr)
    }

    /// [`start`](Self::start) with a caller-shared registry.
    pub fn start_with(
        registry: Arc<Mutex<MetricsRegistry>>,
        addr: impl ToSocketAddrs,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let handle = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("dbp-metrics".into())
                .spawn(move || serve(listener, registry, stop, started))?
        };
        Ok(MetricsServer {
            registry,
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served registry; lock it to update what scrapes see.
    pub fn registry(&self) -> &Arc<Mutex<MetricsRegistry>> {
        &self.registry
    }

    /// Signals the serving thread to exit and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept loop: poll the non-blocking listener, answer each request
/// with the current metrics page, exit when `stop` flips.
fn serve(
    listener: TcpListener,
    registry: Arc<Mutex<MetricsRegistry>>,
    stop: Arc<AtomicBool>,
    started: Instant,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Per-request errors (closed sockets, torn writes)
                // only lose that one scrape.
                let _ = answer(stream, &registry, started);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one HTTP request (just far enough to consume the header
/// block), routes on the request line, and writes an HTTP/1.1
/// response: the metrics page for `GET /metrics`, a liveness probe
/// for `GET /healthz`, headers only for `HEAD`, `404 Not Found` for
/// every other path.
fn answer(
    mut stream: std::net::TcpStream,
    registry: &Arc<Mutex<MetricsRegistry>>,
    started: Instant,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let mut header = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        header.extend_from_slice(&buf[..n]);
        if header.windows(4).any(|w| w == b"\r\n\r\n") || header.len() > 16 * 1024 {
            break;
        }
    }
    let request_line = String::from_utf8_lossy(&header);
    let mut parts = request_line.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("GET");
    let target = parts.next().unwrap_or("/metrics");
    // Route on the path alone; scrapers may append query parameters.
    let path = target.split(['?', '#']).next().unwrap_or(target);
    let head_only = method.eq_ignore_ascii_case("HEAD");
    let response = if path == "/metrics" {
        let body = registry
            .lock()
            .map(|r| r.to_openmetrics())
            .unwrap_or_else(|e| e.into_inner().to_openmetrics());
        let mut r = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {OPENMETRICS_CONTENT_TYPE}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        if !head_only {
            r.push_str(&body);
        }
        r
    } else if path == "/healthz" {
        // Liveness probe: `ok`, process uptime, and how many tenants
        // the served registry currently reports (0 when the registry
        // carries no `server_tenants` gauge — e.g. a stream-CLI
        // exporter, which has no tenant concept).
        let tenants = registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .gauge("server_tenants")
            .unwrap_or(0.0) as u64;
        let body = format!(
            "ok\nuptime_seconds {:.3}\ntenants {tenants}\n",
            started.elapsed().as_secs_f64()
        );
        let mut r = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        if !head_only {
            r.push_str(&body);
        }
        r
    } else {
        let body = "not found; metrics are at /metrics\n";
        let mut r = format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        if !head_only {
            r.push_str(body);
        }
        r
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.inc_by("events", 42);
        r.set_gauge("ratio_upper_estimate", 1.25);
        r.add_total("vol", rat(7, 2));
        r.track("open_bins", rat(0, 1), rat(2, 1));
        r.track("open_bins", rat(3, 1), rat(1, 1));
        r.observe("scan length", 3.0);
        r.observe("scan length", 9.0);
        r
    }

    #[test]
    fn exposition_renders_every_section_and_terminates() {
        let text = sample_registry().to_openmetrics();
        assert!(text.contains("# TYPE dbp_events counter\ndbp_events_total 42\n"));
        assert!(
            text.contains("# TYPE dbp_ratio_upper_estimate gauge\ndbp_ratio_upper_estimate 1.25\n")
        );
        assert!(text.contains("dbp_vol 3.5\n"));
        assert!(text.contains("dbp_open_bins_current 1\n"));
        assert!(text.contains("dbp_open_bins_integral 6\n"));
        // Name sanitization: the space becomes an underscore.
        assert!(text.contains("# TYPE dbp_scan_length histogram"));
        // Cumulative buckets: 3.0 ≤ 4, 9.0 ≤ 16.
        assert!(text.contains("dbp_scan_length_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("dbp_scan_length_bucket{le=\"16\"} 2\n"));
        assert!(text.contains("dbp_scan_length_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dbp_scan_length_sum 12\n"));
        assert!(text.contains("dbp_scan_length_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn scrape_endpoint_serves_the_live_registry() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        server.registry().lock().unwrap().merge(&sample_registry());
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains(OPENMETRICS_CONTENT_TYPE));
        assert!(response.contains("dbp_events_total 42"));
        assert!(response.trim_end().ends_with("# EOF"));
        // Updates between scrapes are visible.
        server.registry().lock().unwrap().inc("events");
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("dbp_events_total 43"));
        server.stop();
    }

    fn request(addr: std::net::SocketAddr, line: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("{line}\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn unknown_paths_get_404_and_head_gets_headers_only() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        server.registry().lock().unwrap().merge(&sample_registry());

        let missing = request(addr, "GET /metricz HTTP/1.1");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(!missing.contains("dbp_events_total"));
        let root = request(addr, "GET / HTTP/1.1");
        assert!(root.starts_with("HTTP/1.1 404 Not Found\r\n"));

        // HEAD: status line and headers, no body after the blank line.
        let head = request(addr, "HEAD /metrics HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains(OPENMETRICS_CONTENT_TYPE));
        let body = head.split("\r\n\r\n").nth(1).unwrap_or("");
        assert!(body.is_empty());
        // The advertised length still matches what GET would send.
        let page_len = server
            .registry()
            .lock()
            .unwrap()
            .to_openmetrics()
            .len()
            .to_string();
        assert!(head.contains(&format!("Content-Length: {page_len}")));

        // Query strings do not defeat the route.
        let with_query = request(addr, "GET /metrics?format=openmetrics HTTP/1.1");
        assert!(with_query.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(with_query.contains("dbp_events_total 42"));
        server.stop();
    }

    #[test]
    fn healthz_reports_uptime_and_tenant_count() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        // No `server_tenants` gauge yet: healthy, zero tenants.
        let health = request(addr, "GET /healthz HTTP/1.1");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        let body = health.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("uptime_seconds "), "{body}");
        assert!(body.contains("tenants 0\n"), "{body}");

        // The gauge the daemon publishes flows straight through.
        server
            .registry()
            .lock()
            .unwrap()
            .set_gauge("server_tenants", 3.0);
        let health = request(addr, "GET /healthz HTTP/1.1");
        assert!(health.contains("tenants 3\n"), "{health}");

        // HEAD answers with headers only, like `/metrics`.
        let head = request(addr, "HEAD /healthz HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.split("\r\n\r\n").nth(1).unwrap_or("").is_empty());

        // Near-miss paths keep failing loudly.
        let near = request(addr, "GET /health HTTP/1.1");
        assert!(near.starts_with("HTTP/1.1 404 Not Found\r\n"));
        server.stop();
    }
}
