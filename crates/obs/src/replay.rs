//! Replay verification: re-derive the run's aggregates from the raw
//! event log and check them against the engine's outcome bit-for-bit.
//!
//! This is the trust anchor of the tracing layer: if a trace was
//! recorded, written to JSONL, parsed back, and still reproduces
//! `total_usage` and `max_open_bins` as **identical rationals**, the
//! whole pipeline — observer hooks, serialization, parsing — is
//! loss-free.

use crate::trace::TraceEvent;
use dbp_core::{BinId, PackingOutcome};
use dbp_numeric::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A trace that cannot be replayed, or disagrees with the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The event stream is internally inconsistent (e.g. a close
    /// without a matching open).
    Corrupt(String),
    /// A re-derived aggregate differs from the reported one.
    Mismatch {
        /// Which aggregate disagreed.
        field: &'static str,
        /// Value derived from the event log.
        derived: String,
        /// Value reported by the outcome (or `RunFinished` event).
        reported: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            ReplayError::Mismatch {
                field,
                derived,
                reported,
            } => write!(
                f,
                "replay mismatch on {field}: derived {derived}, reported {reported}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Aggregates re-derived from an event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// `Σ_k |U_k|` summed from bin open/close pairs.
    pub total_usage: Rational,
    /// Peak concurrency of open bins.
    pub max_open_bins: usize,
    /// Bins ever opened.
    pub bins_opened: usize,
    /// Arrivals seen.
    pub arrivals: usize,
    /// Departures seen.
    pub departures: usize,
}

/// Re-derives the run's aggregates from `events` alone.
///
/// Checks internal consistency along the way (open/close pairing,
/// agreement of `BinClosed.opened_at` with the observed opening time,
/// every bin closed by the end) and, when the stream carries a
/// `RunFinished` record, cross-checks the derived aggregates against
/// it.
pub fn replay(events: &[TraceEvent]) -> Result<ReplaySummary, ReplayError> {
    let mut opened_at: BTreeMap<BinId, Rational> = BTreeMap::new();
    let mut total_usage = Rational::ZERO;
    let mut max_open = 0usize;
    let mut bins_opened = 0usize;
    let mut arrivals = 0usize;
    let mut departures = 0usize;

    for ev in events {
        match ev {
            TraceEvent::Arrival { .. } => arrivals += 1,
            TraceEvent::Departure { .. } => departures += 1,
            TraceEvent::Placement { .. } => {}
            TraceEvent::BinOpened { t, bin } => {
                if opened_at.insert(*bin, *t).is_some() {
                    return Err(ReplayError::Corrupt(format!("bin {bin} opened twice")));
                }
                bins_opened += 1;
                max_open = max_open.max(opened_at.len());
            }
            TraceEvent::BinClosed {
                t,
                bin,
                opened_at: recorded_open,
                ..
            } => {
                let open_t = opened_at.remove(bin).ok_or_else(|| {
                    ReplayError::Corrupt(format!("bin {bin} closed but never opened"))
                })?;
                if open_t != *recorded_open {
                    return Err(ReplayError::Corrupt(format!(
                        "bin {bin}: opened at {open_t} but close record says {recorded_open}"
                    )));
                }
                if *t < open_t {
                    return Err(ReplayError::Corrupt(format!(
                        "bin {bin}: closes at {t} before opening at {open_t}"
                    )));
                }
                total_usage += *t - open_t;
            }
            TraceEvent::RunFinished { .. } => {}
        }
    }
    if let Some((bin, _)) = opened_at.iter().next() {
        return Err(ReplayError::Corrupt(format!("bin {bin} never closed")));
    }

    let summary = ReplaySummary {
        total_usage,
        max_open_bins: max_open,
        bins_opened,
        arrivals,
        departures,
    };

    // Cross-check the trailing RunFinished record, if present.
    if let Some(TraceEvent::RunFinished {
        total_usage: reported_usage,
        max_open_bins: reported_max,
        bins_opened: reported_bins,
        ..
    }) = events
        .iter()
        .find(|e| matches!(e, TraceEvent::RunFinished { .. }))
    {
        check_rat("total_usage", summary.total_usage, *reported_usage)?;
        check_usize("max_open_bins", summary.max_open_bins, *reported_max)?;
        check_usize("bins_opened", summary.bins_opened, *reported_bins)?;
    }
    Ok(summary)
}

/// Replays `events` and checks the derived aggregates against
/// `outcome` **bit-for-bit** (exact `Rational` equality, not an
/// epsilon comparison).
pub fn verify(
    events: &[TraceEvent],
    outcome: &PackingOutcome,
) -> Result<ReplaySummary, ReplayError> {
    let summary = replay(events)?;
    check_rat("total_usage", summary.total_usage, outcome.total_usage())?;
    check_usize(
        "max_open_bins",
        summary.max_open_bins,
        outcome.max_open_bins(),
    )?;
    check_usize("bins_opened", summary.bins_opened, outcome.bins_opened())?;
    Ok(summary)
}

fn check_rat(
    field: &'static str,
    derived: Rational,
    reported: Rational,
) -> Result<(), ReplayError> {
    if derived != reported {
        return Err(ReplayError::Mismatch {
            field,
            derived: derived.to_string(),
            reported: reported.to_string(),
        });
    }
    Ok(())
}

fn check_usize(field: &'static str, derived: usize, reported: usize) -> Result<(), ReplayError> {
    if derived != reported {
        return Err(ReplayError::Mismatch {
            field,
            derived: derived.to_string(),
            reported: reported.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{events_to_jsonl, parse_jsonl, TraceRecorder};
    use dbp_core::{BestFit, FirstFit, Instance, PackingAlgorithm, Runner};
    use dbp_numeric::rat;

    fn sample() -> Instance {
        Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(3, 4), rat(0, 1), rat(3, 1))
            .item(rat(1, 4), rat(1, 1), rat(2, 1))
            .item(rat(1, 3), rat(5, 2), rat(7, 2))
            .build()
            .unwrap()
    }

    fn run(algo: &mut dyn PackingAlgorithm) -> (Vec<TraceEvent>, dbp_core::PackingOutcome) {
        let mut rec = TraceRecorder::new();
        let out = Runner::new(&sample()).observer(&mut rec).run(algo).unwrap();
        (rec.into_events(), out)
    }

    #[test]
    fn verify_round_trip_through_jsonl() {
        for algo in [
            &mut FirstFit::new() as &mut dyn PackingAlgorithm,
            &mut BestFit::new(),
        ] {
            let (events, out) = run(algo);
            // Direct verification.
            let s = verify(&events, &out).unwrap();
            assert_eq!(s.arrivals, 4);
            assert_eq!(s.departures, 4);
            // And through the serialized form: still bit-identical.
            let parsed = parse_jsonl(&events_to_jsonl(&events)).unwrap();
            let s2 = verify(&parsed, &out).unwrap();
            assert_eq!(s, s2);
        }
    }

    #[test]
    fn tampered_usage_is_caught() {
        let (mut events, out) = run(&mut FirstFit::new());
        // Shift one bin's close time: usage changes, replay must notice
        // the disagreement with the outcome (drop RunFinished so the
        // internal cross-check doesn't fire first).
        events.retain(|e| !matches!(e, TraceEvent::RunFinished { .. }));
        for ev in &mut events {
            if let TraceEvent::BinClosed { t, .. } = ev {
                *t += rat(1, 7);
                break;
            }
        }
        let err = verify(&events, &out).unwrap_err();
        assert!(
            matches!(
                err,
                ReplayError::Mismatch {
                    field: "total_usage",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let open = TraceEvent::BinOpened {
            t: rat(0, 1),
            bin: dbp_core::BinId(0),
        };
        // Never closed.
        assert!(matches!(
            replay(std::slice::from_ref(&open)),
            Err(ReplayError::Corrupt(_))
        ));
        // Closed twice / closed without open.
        let close = TraceEvent::BinClosed {
            t: rat(1, 1),
            bin: dbp_core::BinId(1),
            opened_at: rat(0, 1),
            level_integral: rat(1, 2),
            peak_level: rat(1, 2),
            items: 1,
        };
        assert!(matches!(replay(&[close]), Err(ReplayError::Corrupt(_))));
        // Close time disagreeing with the recorded opening.
        let bad_close = TraceEvent::BinClosed {
            t: rat(2, 1),
            bin: dbp_core::BinId(0),
            opened_at: rat(1, 2),
            level_integral: rat(1, 2),
            peak_level: rat(1, 2),
            items: 1,
        };
        assert!(matches!(
            replay(&[open, bad_close]),
            Err(ReplayError::Corrupt(_))
        ));
    }
}
