#![warn(missing_docs)]

//! # `dbp-obs` — observability for the packing engine
//!
//! The paper's objective `Σ_k |U_k|` is an integral over time of bin
//! state, and this crate makes that time dimension visible. It
//! attaches to [`dbp_core`]'s engine through the passive
//! [`EngineObserver`](dbp_core::EngineObserver) hooks and provides:
//!
//! * [`TraceRecorder`] — records every engine event (arrivals,
//!   validated placements with scan/reject detail, bin
//!   openings/closings, departures, run completion) with **exact
//!   rational timestamps**, and serializes them as JSONL.
//! * [`StepSeries`] — replays a trace into exact step time-series:
//!   open-bin count, per-bin level, and instantaneous utilization,
//!   integrated on [`dbp_simcore::TimeWeighted`].
//! * [`MetricsRegistry`] / [`EngineMetrics`] — counters, gauges,
//!   time-weighted signals, and wall-clock histograms (events/sec,
//!   placement scan length, bins opened/reused), snapshotting to
//!   deterministic JSON.
//! * [`Profiler`] — the in-engine self-profiler: attaches through
//!   `Runner::probe`/`SessionBuilder::probe` (both engines, outcomes
//!   bit-identical), attributes wall time to the engine's hot-path
//!   phases, histograms per-arrival scan/descent/gcd work, and
//!   exports phase-share tables, folded flamegraph stacks, and
//!   Chrome spans.
//! * [`chrome_trace`] — exports a trace in Chrome trace-event format,
//!   so a run opens directly in Perfetto
//!   ([`chrome_trace_with_spans`] merges profiler spans in).
//! * [`replay()`]/[`verify`] — re-derive `total_usage` and
//!   `max_open_bins` from the raw event log and check them against
//!   the [`PackingOutcome`](dbp_core::PackingOutcome) **bit-for-bit**,
//!   proving the record/serialize/parse pipeline loss-free.
//!
//! ```
//! use dbp_core::prelude::*;
//! use dbp_numeric::rat;
//! use dbp_obs::{StepSeries, TraceRecorder};
//!
//! let jobs = Instance::builder()
//!     .item(rat(1, 2), rat(0, 1), rat(2, 1))
//!     .item(rat(3, 4), rat(0, 1), rat(3, 1))
//!     .build()
//!     .unwrap();
//!
//! let mut recorder = TraceRecorder::new();
//! let outcome = run_packing_observed(&jobs, &mut FirstFit::new(), &mut recorder).unwrap();
//!
//! // The trace replays to the exact same aggregates…
//! let summary = dbp_obs::verify(recorder.events(), &outcome).unwrap();
//! assert_eq!(summary.total_usage, outcome.total_usage());
//!
//! // …and carries the full time dimension.
//! let series = StepSeries::from_events(recorder.events());
//! assert_eq!(series.summary().unwrap().max_open_bins, outcome.max_open_bins());
//! ```

pub mod chrome;
pub mod metrics;
pub mod openmetrics;
pub mod prof;
pub mod replay;
pub mod series;
pub mod sink;
pub mod trace;
pub mod watchdog;

pub use chrome::{chrome_trace, chrome_trace_with_spans};
pub use metrics::{set_ratio_gauge, telemetry_registry, EngineMetrics, Histogram, MetricsRegistry};
pub use openmetrics::{MetricsServer, OPENMETRICS_CONTENT_TYPE};
pub use prof::Profiler;
pub use replay::{replay, verify, ReplayError, ReplaySummary};
pub use series::{SeriesPoint, SeriesSummary, StepSeries};
pub use sink::TelemetrySink;
pub use trace::{events_to_jsonl, parse_jsonl, TraceEvent, TraceRecorder};
pub use watchdog::{Watchdog, WatchdogAlert};
