//! Step time-series derived from an event trace.
//!
//! A [`StepSeries`] replays a [`TraceEvent`] stream into exact step
//! functions of time — open-bin count, total packed level, per-bin
//! levels — integrated with [`dbp_simcore::TimeWeighted`]. Because
//! every quantity is a [`Rational`], the series' aggregate identities
//! hold exactly: `∫ open(t) dt` equals the run's `total_usage`, and
//! `∫ level(t) dt / ∫ open(t) dt` equals the outcome's utilization.

use crate::trace::TraceEvent;
use dbp_core::BinId;
use dbp_numeric::Rational;
use dbp_simcore::TimeWeighted;
use std::collections::BTreeMap;

/// One sample of the step series, taken after an event was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Event time.
    pub t: Rational,
    /// Open bins after the event.
    pub open_bins: usize,
    /// Total packed level (sum of open-bin levels) after the event.
    pub total_level: Rational,
}

/// Aggregate view of a series, for summary tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSummary {
    /// Length of the observed window (first event to last event).
    pub span: Rational,
    /// `∫ open(t) dt` — equals the run's `total_usage`.
    pub usage_integral: Rational,
    /// Time-averaged open-bin count (`None` on a zero-length window).
    pub avg_open_bins: Option<Rational>,
    /// Peak open-bin count.
    pub max_open_bins: usize,
    /// `∫ level(t) dt` — the packed time–space demand.
    pub level_integral: Rational,
    /// Aggregate utilization `∫ level / ∫ open` (`None` when no bin
    /// was ever open).
    pub utilization: Option<Rational>,
    /// Peak total level across all open bins.
    pub peak_total_level: Rational,
}

/// Exact step functions of time reconstructed from a trace.
#[derive(Debug, Clone)]
pub struct StepSeries {
    points: Vec<SeriesPoint>,
    open_bins: Option<TimeWeighted>,
    total_level: Option<TimeWeighted>,
    max_open: usize,
    per_bin: BTreeMap<BinId, Vec<(Rational, Rational)>>,
}

impl StepSeries {
    /// Replays `events` into step series. Events must be in engine
    /// order (as recorded or as parsed back from JSONL).
    pub fn from_events(events: &[TraceEvent]) -> StepSeries {
        let mut levels: BTreeMap<BinId, Rational> = BTreeMap::new();
        let mut per_bin: BTreeMap<BinId, Vec<(Rational, Rational)>> = BTreeMap::new();
        let mut points: Vec<SeriesPoint> = Vec::new();
        let mut open_w: Option<TimeWeighted> = None;
        let mut level_w: Option<TimeWeighted> = None;
        let mut max_open = 0usize;
        let mut last_t: Option<Rational> = None;

        for ev in events {
            let Some(t) = ev.time() else { continue };
            last_t = Some(t);
            match ev {
                TraceEvent::Placement { bin, size, .. } => {
                    let level = levels.entry(*bin).or_insert(Rational::ZERO);
                    *level += *size;
                    per_bin.entry(*bin).or_default().push((t, *level));
                }
                TraceEvent::Departure { bin, size, .. } => {
                    if let Some(level) = levels.get_mut(bin) {
                        *level -= *size;
                        per_bin.entry(*bin).or_default().push((t, *level));
                    }
                }
                TraceEvent::BinClosed { bin, .. } => {
                    levels.remove(bin);
                }
                TraceEvent::Arrival { .. } | TraceEvent::BinOpened { bin: _, .. } => {
                    // Arrival changes nothing; the bin's level entry is
                    // created by its first Placement (which precedes
                    // BinOpened in the stream).
                }
                TraceEvent::RunFinished { .. } => unreachable!("filtered by time()"),
            }
            let open = levels.len();
            let total: Rational = levels.values().copied().sum();
            max_open = max_open.max(open);
            let open_r = Rational::from_int(open as i128);
            match (&mut open_w, &mut level_w) {
                (Some(ow), Some(lw)) => {
                    ow.set(t, open_r);
                    lw.set(t, total);
                }
                _ => {
                    open_w = Some(TimeWeighted::starting_at(t, open_r));
                    level_w = Some(TimeWeighted::starting_at(t, total));
                }
            }
            points.push(SeriesPoint {
                t,
                open_bins: open,
                total_level: total,
            });
        }

        if let (Some(ow), Some(lw), Some(t_end)) = (&mut open_w, &mut level_w, last_t) {
            ow.finish(t_end);
            lw.finish(t_end);
        }

        StepSeries {
            points,
            open_bins: open_w,
            total_level: level_w,
            max_open,
            per_bin,
        }
    }

    /// The per-event samples, in time order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// `(time, level)` breakpoints of one bin's level step function
    /// (`None` if the bin never appears in the trace).
    pub fn bin_levels(&self, bin: BinId) -> Option<&[(Rational, Rational)]> {
        self.per_bin.get(&bin).map(Vec::as_slice)
    }

    /// Every bin seen in the trace, in id order.
    pub fn bins(&self) -> impl Iterator<Item = BinId> + '_ {
        self.per_bin.keys().copied()
    }

    /// Aggregates the series (`None` for an empty trace).
    pub fn summary(&self) -> Option<SeriesSummary> {
        let open = self.open_bins.as_ref()?;
        let level = self.total_level.as_ref()?;
        let usage = open.integral();
        Some(SeriesSummary {
            span: open.elapsed(),
            usage_integral: usage,
            avg_open_bins: open.time_average(),
            max_open_bins: self.max_open,
            level_integral: level.integral(),
            utilization: (!usage.is_zero()).then(|| level.integral() / usage),
            peak_total_level: level.max(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use dbp_core::{FirstFit, Instance, Runner};
    use dbp_numeric::rat;

    fn traced(specs: &[(i128, i128, i128, i128)]) -> (StepSeries, dbp_core::PackingOutcome) {
        let instance = Instance::new(
            specs
                .iter()
                .map(|&(n, d, a, dep)| (rat(n, d), rat(a, 1), rat(dep, 1)))
                .collect(),
        )
        .unwrap();
        let mut rec = TraceRecorder::new();
        let out = Runner::new(&instance)
            .observer(&mut rec)
            .run(&mut FirstFit::new())
            .unwrap();
        (StepSeries::from_events(rec.events()), out)
    }

    #[test]
    fn series_integrals_match_outcome() {
        let (series, out) = traced(&[(1, 2, 0, 2), (3, 4, 0, 3), (1, 4, 1, 2), (1, 2, 5, 9)]);
        let s = series.summary().unwrap();
        assert_eq!(s.usage_integral, out.total_usage());
        assert_eq!(s.max_open_bins, out.max_open_bins());
        assert_eq!(s.utilization, out.utilization());
        let packed: Rational = out.bins().iter().map(|b| b.level_integral).sum();
        assert_eq!(s.level_integral, packed);
    }

    #[test]
    fn per_bin_levels_step_correctly() {
        let (series, _) = traced(&[(1, 2, 0, 2), (1, 4, 1, 3)]);
        // Bin 0: level 1/2 at t=0, 3/4 at t=1, 1/4 at t=2, 0 at t=3.
        let steps = series.bin_levels(BinId(0)).unwrap();
        assert_eq!(
            steps,
            &[
                (rat(0, 1), rat(1, 2)),
                (rat(1, 1), rat(3, 4)),
                (rat(2, 1), rat(1, 4)),
                (rat(3, 1), rat(0, 1)),
            ]
        );
        assert_eq!(series.bins().collect::<Vec<_>>(), vec![BinId(0)]);
        assert!(series.bin_levels(BinId(9)).is_none());
    }

    #[test]
    fn empty_trace_has_no_summary() {
        let series = StepSeries::from_events(&[]);
        assert!(series.summary().is_none());
        assert!(series.points().is_empty());
    }
}
