//! Event tracing: the [`TraceRecorder`] observer and its JSONL
//! serialization.
//!
//! Every event carries exact [`Rational`] timestamps — serialized as
//! `{num, den}` integer pairs — so a written trace replays
//! **bit-for-bit** (see [`mod@crate::replay`]); floats never appear on
//! this path.

use dbp_core::algo::ArrivalView;
use dbp_core::{BinId, BinRecord, BinSnapshot, EngineObserver, ItemId, PackingOutcome};
use dbp_numeric::Rational;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One engine event, as recorded in a JSONL trace.
///
/// The variants mirror [`EngineObserver`]'s callbacks one-to-one,
/// with the snapshot-derived scan information materialized into the
/// [`Placement`](Self::Placement) variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An item arrived (before the algorithm was consulted).
    Arrival {
        /// Event time.
        t: Rational,
        /// Arriving item.
        item: ItemId,
        /// Item size.
        size: Rational,
        /// Number of bins open at arrival.
        open_bins: usize,
    },
    /// A validated placement decision.
    Placement {
        /// Event time.
        t: Rational,
        /// Placed item.
        item: ItemId,
        /// Item size (capacity consumed in the chosen bin).
        size: Rational,
        /// Chosen bin.
        bin: BinId,
        /// `true` iff the decision opened a fresh bin.
        opened_new: bool,
        /// Bins inspected in opening order before the decision
        /// resolved: the chosen bin's scan position + 1, or all open
        /// bins when a new one was opened.
        scanned: usize,
        /// The scanned bins that could not hold the item
        /// (`level + size > 1`).
        rejected: Vec<BinId>,
    },
    /// A fresh bin was opened.
    BinOpened {
        /// Event time.
        t: Rational,
        /// The new bin.
        bin: BinId,
    },
    /// An item departed.
    Departure {
        /// Event time.
        t: Rational,
        /// Departing item.
        item: ItemId,
        /// The bin it left.
        bin: BinId,
        /// Item size (freed capacity).
        size: Rational,
    },
    /// A bin emptied and closed.
    BinClosed {
        /// Event time (end of the bin's usage period).
        t: Rational,
        /// The closed bin.
        bin: BinId,
        /// Start of the bin's usage period.
        opened_at: Rational,
        /// `∫ level dt` over the usage period.
        level_integral: Rational,
        /// Peak level reached.
        peak_level: Rational,
        /// Items ever placed in the bin.
        items: usize,
    },
    /// The run completed.
    RunFinished {
        /// Algorithm name.
        algorithm: String,
        /// Objective `Σ_k |U_k|`.
        total_usage: Rational,
        /// Peak simultaneously open bins.
        max_open_bins: usize,
        /// Bins ever opened.
        bins_opened: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp (`None` for [`RunFinished`](Self::RunFinished),
    /// which is not a point in simulated time).
    pub fn time(&self) -> Option<Rational> {
        match self {
            TraceEvent::Arrival { t, .. }
            | TraceEvent::Placement { t, .. }
            | TraceEvent::BinOpened { t, .. }
            | TraceEvent::Departure { t, .. }
            | TraceEvent::BinClosed { t, .. } => Some(*t),
            TraceEvent::RunFinished { .. } => None,
        }
    }

    /// Short lowercase tag for summaries (`"arrival"`, `"placement"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Placement { .. } => "placement",
            TraceEvent::BinOpened { .. } => "bin_opened",
            TraceEvent::Departure { .. } => "departure",
            TraceEvent::BinClosed { .. } => "bin_closed",
            TraceEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// The [`Arrival`](Self::Arrival) event of an
    /// [`EngineObserver::on_arrival`] callback.
    pub fn from_arrival(arrival: &ArrivalView, bins: &BinSnapshot<'_>) -> TraceEvent {
        TraceEvent::Arrival {
            t: arrival.time,
            item: arrival.item,
            size: arrival.size,
            open_bins: bins.len(),
        }
    }

    /// The [`Placement`](Self::Placement) event of an
    /// [`EngineObserver::on_placement`] callback, with the scan
    /// statistics materialized from the pre-placement snapshot.
    pub fn from_placement(
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) -> TraceEvent {
        Self::from_placement_reusing(arrival, bins, chosen, opened_new, Vec::new())
    }

    /// [`from_placement`](Self::from_placement) writing the rejected
    /// set into a recycled buffer (cleared here) — lets a bounded
    /// sink hand evicted events' allocations back to the scanner
    /// instead of allocating per placement.
    pub(crate) fn from_placement_reusing(
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
        mut rejected: Vec<BinId>,
    ) -> TraceEvent {
        rejected.clear();
        let scanned = scan_stats_into(bins, arrival.size, chosen, opened_new, &mut rejected);
        TraceEvent::Placement {
            t: arrival.time,
            item: arrival.item,
            size: arrival.size,
            bin: chosen,
            opened_new,
            scanned,
            rejected,
        }
    }

    /// The [`BinOpened`](Self::BinOpened) event of an
    /// [`EngineObserver::on_bin_opened`] callback.
    pub fn from_bin_opened(bin: BinId, time: Rational) -> TraceEvent {
        TraceEvent::BinOpened { t: time, bin }
    }

    /// The [`Departure`](Self::Departure) event of an
    /// [`EngineObserver::on_departure`] callback.
    pub fn from_departure(item: ItemId, bin: BinId, size: Rational, time: Rational) -> TraceEvent {
        TraceEvent::Departure {
            t: time,
            item,
            bin,
            size,
        }
    }

    /// The [`BinClosed`](Self::BinClosed) event of an
    /// [`EngineObserver::on_bin_closed`] callback.
    pub fn from_bin_closed(record: &BinRecord) -> TraceEvent {
        TraceEvent::BinClosed {
            t: record.usage.hi(),
            bin: record.id,
            opened_at: record.usage.lo(),
            level_integral: record.level_integral,
            peak_level: record.peak_level,
            items: record.items.len(),
        }
    }

    /// The [`RunFinished`](Self::RunFinished) event of an
    /// [`EngineObserver::on_run_finished`] callback.
    pub fn from_run_finished(outcome: &PackingOutcome) -> TraceEvent {
        TraceEvent::RunFinished {
            algorithm: outcome.algorithm().to_string(),
            total_usage: outcome.total_usage(),
            max_open_bins: outcome.max_open_bins(),
            bins_opened: outcome.bins_opened(),
        }
    }
}

/// Computes the scan statistics for a placement from the
/// pre-placement snapshot: how many bins an opening-order scan
/// inspects before resolving, and which of those cannot hold the
/// item. Algorithm-agnostic — derived from engine state, not from the
/// algorithm's private bookkeeping.
fn scan_stats_into(
    bins: &BinSnapshot<'_>,
    size: Rational,
    chosen: BinId,
    opened_new: bool,
    rejected: &mut Vec<BinId>,
) -> usize {
    // One forward pass: stop at the chosen bin (it fits — the engine
    // validated the placement before observing it), collecting the
    // non-fitting bins seen on the way. `level + size ≤ 1` is checked
    // as `level ≤ 1 − size`: the budget is subtracted once per scan,
    // leaving only a gcd-free `Ord` comparison per bin.
    let open = bins.open_bins();
    let budget = Rational::ONE - size;
    for (i, b) in open.iter().enumerate() {
        if !opened_new && b.id == chosen {
            return i + 1;
        }
        if b.level > budget {
            if rejected.is_empty() {
                // One exact allocation instead of doubling growth —
                // every remaining scanned bin could be a reject, and
                // a fresh-bin decision rejects most of the line.
                rejected.reserve(open.len() - i);
            }
            rejected.push(b.id);
        }
    }
    open.len()
}

/// An [`EngineObserver`] that records every event as a
/// [`TraceEvent`], ready to be written out as JSONL.
///
/// ```
/// use dbp_core::prelude::*;
/// use dbp_numeric::rat;
/// use dbp_obs::TraceRecorder;
///
/// let jobs = Instance::builder()
///     .item(rat(1, 2), rat(0, 1), rat(2, 1))
///     .item(rat(1, 2), rat(1, 1), rat(3, 1))
///     .build()
///     .unwrap();
/// let mut rec = TraceRecorder::new();
/// let outcome = run_packing_observed(&jobs, &mut FirstFit::new(), &mut rec).unwrap();
/// assert_eq!(dbp_obs::verify(rec.events(), &outcome).is_ok(), true);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// The recorded events, in engine order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Serializes the trace as JSONL (one compact JSON event per
    /// line).
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// Writes the JSONL trace to `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }
}

impl EngineObserver for TraceRecorder {
    fn on_arrival(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) {
        self.events.push(TraceEvent::from_arrival(arrival, bins));
    }

    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        self.events.push(TraceEvent::from_placement(
            arrival, bins, chosen, opened_new,
        ));
    }

    fn on_bin_opened(&mut self, bin: BinId, time: Rational) {
        self.events.push(TraceEvent::from_bin_opened(bin, time));
    }

    fn on_departure(
        &mut self,
        item: ItemId,
        bin: BinId,
        size: Rational,
        time: Rational,
        _bins: &BinSnapshot<'_>,
    ) {
        self.events
            .push(TraceEvent::from_departure(item, bin, size, time));
    }

    fn on_bin_closed(&mut self, record: &BinRecord) {
        self.events.push(TraceEvent::from_bin_closed(record));
    }

    fn on_run_finished(&mut self, outcome: &PackingOutcome) {
        self.events.push(TraceEvent::from_run_finished(outcome));
    }
}

/// Serializes a slice of events as JSONL.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("trace events always serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into events. Blank lines are skipped;
/// the error names the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{FirstFit, Instance, Runner};
    use dbp_numeric::rat;

    fn sample() -> Instance {
        Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(3, 4), rat(0, 1), rat(3, 1))
            .item(rat(1, 4), rat(1, 1), rat(2, 1))
            .build()
            .unwrap()
    }

    fn record() -> (Vec<TraceEvent>, dbp_core::PackingOutcome) {
        let mut rec = TraceRecorder::new();
        let out = Runner::new(&sample())
            .observer(&mut rec)
            .run(&mut FirstFit::new())
            .unwrap();
        (rec.into_events(), out)
    }

    #[test]
    fn event_stream_shape() {
        let (events, out) = record();
        let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
        assert_eq!(count("arrival"), 3);
        assert_eq!(count("placement"), 3);
        assert_eq!(count("departure"), 3);
        assert_eq!(count("bin_opened"), out.bins_opened());
        assert_eq!(count("bin_closed"), out.bins_opened());
        assert_eq!(count("run_finished"), 1);
        // Timestamps are non-decreasing across timed events.
        let times: Vec<_> = events.iter().filter_map(TraceEvent::time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn first_fit_scan_is_recorded() {
        // Item 1 (3/4) does not fit bin 0 (level 1/2): FF scans bin 0,
        // rejects it, opens bin 1.
        let (events, _) = record();
        let placements: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Placement {
                    item,
                    bin,
                    opened_new,
                    scanned,
                    rejected,
                    ..
                } => Some((item.0, bin.0, *opened_new, *scanned, rejected.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(placements[0], (0, 0, true, 0, vec![]));
        assert_eq!(placements[1], (1, 1, true, 1, vec![BinId(0)]));
        // Item 2 (1/4) fits bin 0 at scan position 1.
        assert_eq!(placements[2], (2, 0, false, 1, vec![]));
    }

    #[test]
    fn jsonl_round_trips_bit_exactly() {
        let (events, _) = record();
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
        // And exotic rationals survive too.
        let ev = TraceEvent::BinOpened {
            t: rat(1_000_000_007, 998_244_353),
            bin: BinId(41),
        };
        let back = parse_jsonl(&events_to_jsonl(std::slice::from_ref(&ev))).unwrap();
        assert_eq!(back, vec![ev]);
    }

    #[test]
    fn parse_reports_bad_lines() {
        let err = parse_jsonl("{\"BinOpened\":{}}\nnot json\n").unwrap_err();
        assert!(err.contains("line 1") || err.contains("line 2"), "{err}");
    }

    #[test]
    fn parse_errors_name_the_exact_line_past_blanks() {
        // Valid line, blank line, then garbage: the error must point
        // at physical line 3, not the second parsed event.
        let good = serde_json::to_string(&TraceEvent::BinOpened {
            t: rat(1, 1),
            bin: BinId(0),
        })
        .unwrap();
        let text = format!("{good}\n\n{{\"Departure\": 7}}\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 3: "), "{err}");
        // Truncated JSON is also a line-numbered error, not a panic.
        let err = parse_jsonl("{\"BinOpened\":{\"t\":").unwrap_err();
        assert!(err.starts_with("line 1: "), "{err}");
    }

    #[test]
    fn extreme_rational_timestamps_round_trip_and_verify() {
        // Timestamps with huge numerators and non-unit denominators
        // (coprime, near the i128-safe range for exact integration)
        // must survive write → parse → replay-verify bit-exactly.
        let big = 1_000_000_000_000_000_003i128; // prime
        let inst = Instance::builder()
            .item(rat(999_999_999_999_999_999, big), rat(big, 7), rat(big, 5))
            .item(rat(1, big), rat(big, 7), rat(big, 6))
            .build()
            .unwrap();
        let mut rec = TraceRecorder::new();
        let out = Runner::new(&inst)
            .observer(&mut rec)
            .run(&mut FirstFit::new())
            .unwrap();
        let events = rec.into_events();
        let parsed = parse_jsonl(&events_to_jsonl(&events)).unwrap();
        assert_eq!(parsed, events);
        // The parsed trace replays against the outcome bit-for-bit.
        crate::verify(&parsed, &out).unwrap();
        // And the exotic timestamps really did make the round trip.
        let t0 = parsed
            .iter()
            .find_map(|e| match e {
                TraceEvent::Arrival { t, .. } => Some(*t),
                _ => None,
            })
            .unwrap();
        assert_eq!(t0, rat(big, 7));
    }
}
