//! The lower-bound watchdog: a live competitive-ratio SLO check.
//!
//! Propositions 1–2 of the paper bound the optimum from below:
//! `OPT ≥ max(vol(R), span(R))`, both computable *online* from the
//! event stream (see `SessionBuilder::telemetry`). So
//! `usage / max(vol, span)` is a certified **upper estimate** of the
//! achieved competitive ratio at any instant — if it is small, the
//! packing is provably close to optimal, no matter what the adversary
//! still has queued. Theorem 1 guarantees First Fit stays within
//! `µ + 4` (µ = max/min item duration ratio), which is the watchdog's
//! default alarm threshold, with µ estimated from completed items.
//!
//! [`Watchdog::check`] is edge-triggered: it fires once when the
//! estimate first exceeds the threshold, re-arms when it drops back
//! under, and stays quiet in between — so a long excursion produces
//! one alert, not one per event.

use dbp_core::session::SessionMetrics;
use dbp_numeric::Rational;
use serde::Serialize;
use std::fmt;

/// The paper's additive constant in the Theorem 1 envelope `µ + 4`.
const THEOREM1_SLACK: Rational = Rational::from_int(4);

/// A structured alarm: the ratio estimate crossed the threshold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WatchdogAlert {
    /// Session clock when the alert fired.
    pub at: Option<Rational>,
    /// The offending `usage / max(vol, span)` estimate.
    pub ratio: Rational,
    /// The threshold it exceeded.
    pub threshold: Rational,
    /// `vol(R)` at the alert.
    pub vol: Rational,
    /// `span(R)` at the alert.
    pub span: Rational,
    /// Usage time accrued at the alert.
    pub usage: Rational,
}

impl fmt::Display for WatchdogAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ratio estimate {} exceeds threshold {} (usage {}, vol {}, span {})",
            self.ratio.to_f64(),
            self.threshold.to_f64(),
            self.usage.to_f64(),
            self.vol.to_f64(),
            self.span.to_f64(),
        )
    }
}

/// How the watchdog picks its alarm threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Threshold {
    /// The paper's envelope `µ̂ + 4`, µ̂ estimated from completed
    /// items ([`SessionMetrics::mu_estimate`]). Silent until the
    /// first departure makes µ̂ well-defined.
    Theorem1,
    /// A fixed caller-chosen bound.
    Fixed(Rational),
}

/// Watches a stream's [`SessionMetrics`] and raises a structured
/// [`WatchdogAlert`] when the live competitive-ratio upper estimate
/// exceeds the threshold (see the [module docs](self)).
///
/// Requires metrics from a session built with telemetry enabled;
/// without `vol`/`span` the watchdog has no lower bound and stays
/// silent.
#[derive(Debug, Clone)]
pub struct Watchdog {
    threshold: Threshold,
    /// `true` while the estimate is above threshold (suppresses
    /// repeat alerts until it re-arms).
    tripped: bool,
    last: Option<WatchdogAlert>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Watchdog {
    /// A watchdog on the paper's `µ̂ + 4` envelope.
    pub fn new() -> Watchdog {
        Watchdog {
            threshold: Threshold::Theorem1,
            tripped: false,
            last: None,
        }
    }

    /// A watchdog with a fixed threshold.
    pub fn with_threshold(threshold: Rational) -> Watchdog {
        Watchdog {
            threshold: Threshold::Fixed(threshold),
            tripped: false,
            last: None,
        }
    }

    /// The threshold the next check will compare against, if it is
    /// determined yet (`None` while `µ̂ + 4` awaits a first completed
    /// item).
    pub fn threshold_for(&self, m: &SessionMetrics) -> Option<Rational> {
        match self.threshold {
            Threshold::Fixed(t) => Some(t),
            Threshold::Theorem1 => m.mu_estimate().map(|mu| mu + THEOREM1_SLACK),
        }
    }

    /// The most recent alert, if any fired so far.
    pub fn last_alert(&self) -> Option<&WatchdogAlert> {
        self.last.as_ref()
    }

    /// Evaluates the metrics; returns the alert on the **rising
    /// edge** (estimate crosses above threshold), `None` otherwise.
    /// Dropping back under the threshold re-arms the watchdog.
    pub fn check(&mut self, m: &SessionMetrics) -> Option<&WatchdogAlert> {
        let (Some(ratio), Some(threshold)) = (m.ratio_upper_estimate(), self.threshold_for(m))
        else {
            return None;
        };
        if ratio <= threshold {
            self.tripped = false;
            return None;
        }
        if self.tripped {
            return None;
        }
        self.tripped = true;
        self.last = Some(WatchdogAlert {
            at: m.now,
            ratio,
            threshold,
            vol: m.vol.unwrap_or(Rational::ZERO),
            span: m.span.unwrap_or(Rational::ZERO),
            usage: m.usage_time,
        });
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::rat;

    fn metrics(usage: Rational, vol: Rational, span: Rational) -> SessionMetrics {
        SessionMetrics {
            now: Some(rat(1, 1)),
            events: 2,
            arrivals: 1,
            departures: 1,
            open_bins: 1,
            active_items: 0,
            bins_opened: 1,
            peak_open_bins: 1,
            load: Rational::ZERO,
            usage_time: usage,
            vol: Some(vol),
            span: Some(span),
            min_lifetime: Some(rat(1, 2)),
            max_lifetime: Some(rat(3, 2)),
        }
    }

    #[test]
    fn fires_once_on_the_rising_edge_and_rearms() {
        let mut dog = Watchdog::with_threshold(rat(2, 1));
        // Ratio 9/4 > 2: fires.
        let alert = dog
            .check(&metrics(rat(9, 1), rat(4, 1), rat(3, 1)))
            .cloned();
        let alert = alert.unwrap();
        assert_eq!(alert.ratio, rat(9, 4));
        assert_eq!(alert.threshold, rat(2, 1));
        assert_eq!(alert.vol, rat(4, 1));
        // Still above: suppressed.
        assert!(dog
            .check(&metrics(rat(10, 1), rat(4, 1), rat(3, 1)))
            .is_none());
        // Back under: re-arms silently…
        assert!(dog
            .check(&metrics(rat(7, 1), rat(4, 1), rat(3, 1)))
            .is_none());
        // …and fires again on the next excursion.
        assert!(dog
            .check(&metrics(rat(9, 1), rat(4, 1), rat(3, 1)))
            .is_some());
        assert_eq!(dog.last_alert().unwrap().usage, rat(9, 1));
    }

    #[test]
    fn theorem1_threshold_is_mu_hat_plus_four() {
        let mut dog = Watchdog::new();
        let m = metrics(rat(9, 1), rat(1, 1), rat(1, 1));
        // µ̂ = (3/2)/(1/2) = 3 → threshold 7; ratio 9 > 7.
        assert_eq!(dog.threshold_for(&m), Some(rat(7, 1)));
        let alert = dog.check(&m).unwrap();
        assert_eq!(alert.threshold, rat(7, 1));
        // Serializes as a structured event.
        let json = serde_json::to_string(alert).unwrap();
        assert!(json.contains("\"threshold\""), "{json}");
    }

    #[test]
    fn silent_without_telemetry_or_completed_items() {
        let mut dog = Watchdog::new();
        let mut m = metrics(rat(9, 1), rat(1, 1), rat(1, 1));
        m.vol = None;
        m.span = None;
        assert!(dog.check(&m).is_none());
        // Telemetry on but no departures yet: µ̂ undefined, the
        // Theorem 1 watchdog waits.
        let mut m = metrics(rat(9, 1), rat(1, 1), rat(1, 1));
        m.min_lifetime = None;
        m.max_lifetime = None;
        assert!(dog.check(&m).is_none());
        // A fixed-threshold watchdog needs no µ̂.
        let mut fixed = Watchdog::with_threshold(rat(2, 1));
        assert!(fixed.check(&m).is_some());
    }
}
