//! The in-engine profiler: a [`PhaseProbe`] that turns the engines'
//! phase brackets into attributed self-time, folded flamegraph
//! stacks, and per-arrival work-count histograms.
//!
//! [`Profiler`] attaches through `SessionBuilder::probe` /
//! `Runner::probe` and works on **both** engines — unlike observers
//! it never forces the exact Rational engine, so a profiled
//! `Backend::Auto` run takes exactly the code path an unprofiled one
//! would, and outcomes stay bit-identical (the `prop_profiler`
//! property suite asserts this).
//!
//! What it collects:
//!
//! * **Phase self-time** — monotonic-clock spans around each
//!   [`Phase`], with child time subtracted, so the shares reported by
//!   [`phase_shares`](Profiler::phase_shares) sum to 1 and answer
//!   "where do the cycles go" directly. Span timing is paid only on
//!   *sampled* events ([`with_sampling`](Profiler::with_sampling));
//!   the default samples every event.
//! * **Folded stacks** — every sampled span also accumulates into an
//!   inferno-compatible `stack weight` line
//!   ([`folded`](Profiler::folded)), weighted by self-time
//!   nanoseconds: `inferno-flamegraph < profile.folded` renders the
//!   run as a flamegraph.
//! * **Probe counts** — the per-arrival algorithmic work counters
//!   ([`ProbeCounter`]: bins scanned, tree descent depth) land in
//!   log₂ [`Histogram`]s on every event, sampled or not.
//! * **Gcd steps** — when `dbp_numeric::gcd_stats` accounting is on
//!   (the constructor enables it), each event is charged the
//!   Euclidean remainder steps the exact arithmetic spent since the
//!   previous event: two relaxed atomic loads per event. The tally is
//!   process-wide, so concurrent exact runs bleed into each other's
//!   deltas — profile one run at a time when this counter matters.
//! * **Chrome spans** — a bounded list of completed spans
//!   ([`chrome_events`](Profiler::chrome_events)) that
//!   [`chrome_trace_with_spans`](crate::chrome::chrome_trace_with_spans)
//!   merges into the trace export, on their own process track.
//!
//! Everything exports through [`report`](Profiler::report) (terminal
//! table), [`folded`](Profiler::folded) (flamegraph text),
//! [`to_registry`](Profiler::to_registry) (the OpenMetrics/JSON
//! surface), and [`chrome_events`](Profiler::chrome_events).

use crate::metrics::{Histogram, MetricsRegistry};
use dbp_core::probe::{EventKind, Phase, PhaseProbe, ProbeCounter};
use dbp_numeric::gcd_stats;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Completed chrome spans kept per profiler; beyond this the trace
/// stays representative of the run's head rather than unbounded.
const MAX_CHROME_SPANS: usize = 10_000;

/// Accumulated self-time and span count of one phase.
#[derive(Debug, Clone, Copy, Default)]
struct SpanAcc {
    self_ns: u64,
    spans: u64,
}

/// One completed span retained for the Chrome trace export.
#[derive(Debug, Clone, Copy)]
struct ChromeSpan {
    phase: Phase,
    /// Nanoseconds since the profiler was created.
    start_ns: u64,
    /// Total (inclusive) duration.
    dur_ns: u64,
    /// Nesting depth at entry (0 = outermost), used as the track id.
    depth: u32,
}

/// An open phase frame: entry instant plus the time already
/// attributed to completed children (subtracted to get self-time).
#[derive(Debug, Clone, Copy)]
struct Frame {
    phase: Phase,
    entered: Instant,
    child_ns: u64,
}

/// A sampling self-profiler over the engines' [`PhaseProbe`] hooks.
///
/// ```
/// use dbp_core::prelude::*;
/// use dbp_numeric::rat;
/// use dbp_obs::Profiler;
///
/// let jobs = Instance::builder()
///     .item(rat(1, 2), rat(0, 1), rat(2, 1))
///     .item(rat(3, 4), rat(0, 1), rat(3, 1))
///     .build()
///     .unwrap();
/// let mut prof = Profiler::new();
/// Runner::new(&jobs)
///     .probe(&mut prof)
///     .run(&mut FirstFit::new())
///     .unwrap();
/// let shares: f64 = prof.phase_shares().iter().map(|(_, s)| s).sum();
/// assert!((shares - 1.0).abs() < 1e-9);
/// println!("{}", prof.report());
/// ```
#[derive(Debug)]
pub struct Profiler {
    /// Root frame of every folded stack (defaults to `"engine"`).
    root: String,
    /// Time every `sample_every`-th event (1 = every event).
    sample_every: u64,
    /// Events until the next sampled one.
    countdown: u64,
    /// Whether the current event's phases are being timed.
    sampling: bool,
    origin: Instant,
    events: u64,
    arrivals: u64,
    departures: u64,
    sampled_events: u64,
    spans: [SpanAcc; Phase::COUNT],
    stack: Vec<Frame>,
    /// `stack path → self-time ns`, keyed `root;phase[;phase…]`.
    folded: BTreeMap<String, u64>,
    counters: [Histogram; ProbeCounter::COUNT],
    chrome: Vec<ChromeSpan>,
    /// `gcd_stats` steps already attributed to earlier events.
    gcd_steps_seen: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A profiler that times every event, rooted at `"engine"`.
    /// Enables process-wide [`gcd_stats`] accounting so exact-engine
    /// events can be charged their Euclidean work.
    pub fn new() -> Profiler {
        gcd_stats::enable();
        let (_, steps) = gcd_stats::snapshot();
        Profiler {
            root: "engine".to_string(),
            sample_every: 1,
            countdown: 1,
            sampling: false,
            origin: Instant::now(),
            events: 0,
            arrivals: 0,
            departures: 0,
            sampled_events: 0,
            spans: [SpanAcc::default(); Phase::COUNT],
            stack: Vec::with_capacity(8),
            folded: BTreeMap::new(),
            counters: std::array::from_fn(|_| Histogram::default()),
            chrome: Vec::new(),
            gcd_steps_seen: steps,
        }
    }

    /// Times only every `n`-th event (`n ≥ 1`); probe counts are
    /// still recorded on every event. Lowers clock-read overhead on
    /// long runs at the cost of span-count resolution — shares stay
    /// unbiased because events are sampled round-robin.
    pub fn with_sampling(mut self, n: u64) -> Profiler {
        self.sample_every = n.max(1);
        self.countdown = 1; // sample the first event, then every n-th
        self
    }

    /// Renames the folded-stack root frame (default `"engine"`), so
    /// flamegraphs from different configurations merge side by side.
    pub fn with_root(mut self, root: &str) -> Profiler {
        self.root = root.to_string();
        self
    }

    /// Engine events seen (arrivals + departures).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events whose phases were clock-timed.
    pub fn sampled_events(&self) -> u64 {
        self.sampled_events
    }

    /// `(self_ns, span_count)` accumulated for `phase`.
    pub fn span(&self, phase: Phase) -> (u64, u64) {
        let acc = self.spans[phase.index()];
        (acc.self_ns, acc.spans)
    }

    /// Total attributed self-time across all phases, in nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.spans.iter().map(|a| a.self_ns).sum()
    }

    /// Each phase's share of the total attributed self-time, in
    /// [`Phase::ALL`] order. Shares sum to 1 once any span completed
    /// (all-zero before the first sampled event).
    pub fn phase_shares(&self) -> Vec<(Phase, f64)> {
        let total = self.total_self_ns();
        Phase::ALL
            .iter()
            .map(|&p| {
                let ns = self.spans[p.index()].self_ns;
                let share = if total == 0 {
                    0.0
                } else {
                    ns as f64 / total as f64
                };
                (p, share)
            })
            .collect()
    }

    /// The histogram of per-event work counts for `counter` (empty
    /// until the relevant engine path reported samples).
    pub fn counter(&self, counter: ProbeCounter) -> &Histogram {
        &self.counters[counter.index()]
    }

    /// The folded-stack flamegraph text: one `stack self_ns` line per
    /// distinct phase path, inferno/`flamegraph.pl` compatible.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, ns) in &self.folded {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }

    /// A fixed-width terminal table of phase shares, span counts, and
    /// per-event work counters.
    pub fn report(&self) -> String {
        let total = self.total_self_ns();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} events ({} arrivals, {} departures), {} sampled, {:.3} ms attributed",
            self.events,
            self.arrivals,
            self.departures,
            self.sampled_events,
            total as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>12} {:>10}",
            "phase", "share", "self_ns", "spans"
        );
        for (phase, share) in self.phase_shares() {
            let acc = self.spans[phase.index()];
            let _ = writeln!(
                out,
                "{:<18} {:>7.2}% {:>12} {:>10}",
                phase.name(),
                share * 100.0,
                acc.self_ns,
                acc.spans,
            );
        }
        for &c in ProbeCounter::ALL.iter() {
            let h = self.counter(c);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<18} mean {:.2} max {:.0} over {} events",
                c.name(),
                h.mean().unwrap_or(0.0),
                h.max().unwrap_or(0.0),
                h.count(),
            );
        }
        out
    }

    /// Renders the profiler into a fresh [`MetricsRegistry`]:
    /// counters `profile_<phase>_self_ns` / `profile_<phase>_spans`
    /// and `profile_events` / `profile_sampled_events`, gauges
    /// `profile_<phase>_share`, and histograms `probe_<counter>`.
    /// Registry sections are merge-safe, so per-shard profiles fold.
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.inc_by("profile_events", self.events);
        r.inc_by("profile_sampled_events", self.sampled_events);
        for (phase, share) in self.phase_shares() {
            let acc = self.spans[phase.index()];
            r.inc_by(&format!("profile_{}_self_ns", phase.name()), acc.self_ns);
            r.inc_by(&format!("profile_{}_spans", phase.name()), acc.spans);
            r.set_gauge(&format!("profile_{}_share", phase.name()), share);
        }
        for &c in ProbeCounter::ALL.iter() {
            let h = self.counter(c);
            if h.count() == 0 {
                continue;
            }
            r.merge_histogram(&format!("probe_{}", c.name()), h);
        }
        r
    }

    /// The retained spans as Chrome trace-event values (`ph: "X"` on
    /// process 2, one track per nesting depth), ready for
    /// [`chrome_trace_with_spans`](crate::chrome::chrome_trace_with_spans).
    /// Retention is capped at 10k spans; [`events`](Self::events)
    /// versus the exported count tells a reader when the cap bit.
    pub fn chrome_events(&self) -> Vec<Value> {
        self.chrome
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(s.phase.name().to_string())),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("ts".to_string(), Value::Float(s.start_ns as f64 / 1e3)),
                    ("dur".to_string(), Value::Float(s.dur_ns as f64 / 1e3)),
                    ("pid".to_string(), Value::Int(2)),
                    ("tid".to_string(), Value::Int(s.depth as i128)),
                ])
            })
            .collect()
    }
}

impl PhaseProbe for Profiler {
    fn is_active(&self) -> bool {
        true
    }

    fn event(&mut self, kind: EventKind) {
        debug_assert!(self.stack.is_empty(), "phase stack leaked across events");
        self.events += 1;
        match kind {
            EventKind::Arrival => self.arrivals += 1,
            EventKind::Departure => self.departures += 1,
        }
        // Charge the Euclidean work since the previous event to this
        // one: on the tick engine the delta is structurally zero, on
        // the exact engine it is the Rational normalization cost.
        let (_, steps) = gcd_stats::snapshot();
        let delta = steps.saturating_sub(self.gcd_steps_seen);
        self.gcd_steps_seen = steps;
        self.counters[ProbeCounter::GcdSteps.index()].observe(delta as f64);
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.sample_every;
            self.sampling = true;
            self.sampled_events += 1;
        } else {
            self.sampling = false;
        }
    }

    fn enter(&mut self, phase: Phase) {
        if !self.sampling {
            return;
        }
        self.stack.push(Frame {
            phase,
            entered: Instant::now(),
            child_ns: 0,
        });
    }

    fn exit(&mut self, phase: Phase) {
        if !self.sampling {
            return;
        }
        let frame = self.stack.pop().expect("exit without matching enter");
        debug_assert_eq!(frame.phase, phase, "phase brackets interleaved");
        let dur_ns = frame.entered.elapsed().as_nanos() as u64;
        let self_ns = dur_ns.saturating_sub(frame.child_ns);
        let acc = &mut self.spans[phase.index()];
        acc.self_ns += self_ns;
        acc.spans += 1;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += dur_ns;
        }
        let mut key = self.root.clone();
        for f in &self.stack {
            key.push(';');
            key.push_str(f.phase.name());
        }
        key.push(';');
        key.push_str(phase.name());
        *self.folded.entry(key).or_insert(0) += self_ns;
        if self.chrome.len() < MAX_CHROME_SPANS {
            self.chrome.push(ChromeSpan {
                phase,
                start_ns: frame.entered.duration_since(self.origin).as_nanos() as u64,
                dur_ns,
                depth: self.stack.len() as u32,
            });
        }
    }

    fn count(&mut self, counter: ProbeCounter, n: u64) {
        self.counters[counter.index()].observe(n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::session::{Backend, Runner, Session};
    use dbp_core::{FirstFit, FirstFitFast, Instance, TickGrid};
    use dbp_numeric::rat;

    fn scenario() -> Instance {
        Instance::builder()
            .item(rat(7, 10), rat(0, 1), rat(10, 1))
            .item(rat(2, 5), rat(0, 1), rat(6, 1))
            .item(rat(9, 10), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(1, 1), rat(10, 1))
            .item(rat(3, 10), rat(2, 1), rat(10, 1))
            .item(rat(3, 5), rat(6, 1), rat(10, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn phase_shares_sum_to_one_and_stacks_balance() {
        let inst = scenario();
        let mut prof = Profiler::new();
        Runner::new(&inst)
            .backend(Backend::Exact)
            .probe(&mut prof)
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(prof.events(), 2 * inst.len() as u64);
        assert_eq!(prof.sampled_events(), prof.events());
        let total: f64 = prof.phase_shares().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        // Every arrival timed a fit scan; every departure a drain.
        assert_eq!(prof.span(Phase::FitScan).1, inst.len() as u64);
        assert_eq!(prof.span(Phase::DepartureDrain).1, inst.len() as u64);
        // Folded stacks carry exactly the attributed self time.
        let folded_total: u64 = prof
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(folded_total, prof.total_self_ns());
        // Nested phases fold under their parent.
        assert!(prof.folded().lines().any(|l| l.starts_with("engine;")));
    }

    #[test]
    fn probe_counters_land_in_histograms_on_both_engines() {
        let inst = scenario();
        let mut exact = Profiler::new();
        Runner::new(&inst)
            .backend(Backend::Exact)
            .probe(&mut exact)
            .run(&mut FirstFit::new())
            .unwrap();
        // Linear FF reports bins-scanned on every arrival.
        assert_eq!(
            exact.counter(ProbeCounter::BinsScanned).count(),
            inst.len() as u64
        );
        // The exact engine did Rational work.
        assert!(exact.counter(ProbeCounter::GcdSteps).sum() > 0.0);

        let mut tick = Profiler::new();
        Runner::new(&inst)
            .backend(Backend::Tick)
            .probe(&mut tick)
            .run(&mut FirstFitFast::new())
            .unwrap();
        // The compiled engine reports scan work per arrival too
        // (linear below the crossover), and charges gcd deltas per
        // event all the same (the tally is process-wide, so a
        // concurrent exact run may bleed in — only the count is
        // deterministic here).
        assert_eq!(
            tick.counter(ProbeCounter::BinsScanned).count(),
            inst.len() as u64
        );
        assert_eq!(tick.counter(ProbeCounter::GcdSteps).count(), tick.events());
        assert_eq!(tick.events(), 2 * inst.len() as u64);
    }

    #[test]
    fn sampling_times_a_subset_but_counts_everything() {
        let inst = scenario();
        let mut prof = Profiler::new().with_sampling(3);
        Runner::new(&inst)
            .backend(Backend::Exact)
            .probe(&mut prof)
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(prof.events(), 12);
        assert_eq!(prof.sampled_events(), 4); // events 1, 4, 7, 10
        assert_eq!(
            prof.counter(ProbeCounter::BinsScanned).count(),
            inst.len() as u64
        );
    }

    #[test]
    fn profiled_session_outcome_is_bit_identical() {
        let inst = scenario();
        let plain = Runner::new(&inst).run(&mut FirstFitFast::new()).unwrap();
        let mut prof = Profiler::new();
        let profiled = Runner::new(&inst)
            .probe(&mut prof)
            .run(&mut FirstFitFast::new())
            .unwrap();
        assert_eq!(profiled, plain);
        // Streaming sessions accept the probe on the tick path too.
        let grid = TickGrid::for_instance(&inst).unwrap();
        let mut prof2 = Profiler::new();
        let mut s = Session::builder(FirstFitFast::new())
            .grid(grid)
            .probe(&mut prof2)
            .build()
            .unwrap();
        assert!(s.tick_active());
        for ev in dbp_core::event_schedule(&inst).iter() {
            match ev.class {
                dbp_simcore::EventClass::Arrival => {
                    s.arrive(ev.payload, inst.item(ev.payload).size, ev.time)
                        .unwrap();
                }
                dbp_simcore::EventClass::Departure => {
                    s.depart(ev.payload, ev.time).unwrap();
                }
                dbp_simcore::EventClass::Control => {}
            }
        }
        assert_eq!(s.finish().unwrap(), plain);
        assert_eq!(prof2.events(), prof.events());
    }

    #[test]
    fn registry_and_chrome_exports_are_well_formed() {
        let inst = scenario();
        let mut prof = Profiler::new().with_root("exact");
        Runner::new(&inst)
            .backend(Backend::Exact)
            .probe(&mut prof)
            .run(&mut FirstFit::new())
            .unwrap();
        let r = prof.to_registry();
        assert_eq!(r.counter("profile_events"), prof.events());
        assert!(r.counter("profile_fit_scan_spans") > 0);
        let share: f64 = Phase::ALL
            .iter()
            .map(|p| r.gauge(&format!("profile_{}_share", p.name())).unwrap())
            .sum();
        assert!((share - 1.0).abs() < 1e-9);
        assert!(r.histogram("probe_bins_scanned").is_some());
        // The OpenMetrics page renders the profile families.
        let page = r.to_openmetrics();
        assert!(page.contains("dbp_profile_fit_scan_self_ns_total"));
        assert!(page.contains("dbp_probe_bins_scanned_bucket"));
        // Chrome spans: bounded, X-phase, root renamed.
        let spans = prof.chrome_events();
        assert!(!spans.is_empty() && spans.len() <= 10_000);
        for s in &spans {
            assert_eq!(s.get("ph").unwrap().as_str(), Some("X"));
            assert_eq!(s.get("pid").unwrap().as_int(), Some(2));
        }
        assert!(prof.folded().lines().all(|l| l.starts_with("exact;")));
        assert!(prof.report().contains("fit_scan"));
    }
}
