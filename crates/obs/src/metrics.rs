//! The metrics registry and the engine metrics observer.
//!
//! [`MetricsRegistry`] is a small, dependency-free metrics surface:
//! monotone counters, last-write-wins gauges, exact time-weighted
//! signals (on [`dbp_simcore::TimeWeighted`]), and log₂-bucketed
//! histograms for wall-clock and scan-length samples. Everything
//! snapshots to a single JSON object with stable key order, so
//! snapshots diff cleanly across runs.
//!
//! [`EngineMetrics`] is an [`EngineObserver`] that populates a
//! registry with the standard engine signals: event counts and
//! events/sec, placement scan lengths, bins opened vs reused, and the
//! time-weighted open-bin count.

use dbp_core::algo::ArrivalView;
use dbp_core::{BinId, BinRecord, BinSnapshot, EngineObserver, ItemId, PackingOutcome};
use dbp_numeric::Rational;
use dbp_simcore::TimeWeighted;
use serde::Value;
use std::collections::BTreeMap;
use std::time::Instant;

/// Log₂-bucketed histogram of non-negative `f64` samples.
///
/// Bucket `i` holds samples in `(2^(i-1), 2^i]` (bucket 0 holds
/// `[0, 1]`), which spans nanoseconds to minutes in 64 buckets —
/// coarse, but allocation-bounded and plenty for latency shapes.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// Records one sample (negative samples clamp to 0).
    pub fn observe(&mut self, sample: f64) {
        let v = sample.max(0.0);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v <= 1.0 {
            0
        } else {
            // ceil(log2(v)), capped to keep the map bounded.
            (v.log2().ceil() as u32).min(63)
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    fn snapshot(&self) -> Value {
        let buckets = self
            .buckets
            .iter()
            .map(|(b, n)| {
                Value::Object(vec![
                    ("le".into(), Value::Float(2f64.powi(*b as i32))),
                    ("count".into(), Value::Int(*n as i128)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::Int(self.count as i128)),
            ("sum".into(), Value::Float(self.sum)),
            ("min".into(), Value::Float(self.min)),
            ("max".into(), Value::Float(self.max)),
            ("mean".into(), self.mean().map_or(Value::Null, Value::Float)),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// Counters, gauges, time-weighted signals, and histograms under
/// string names, with a deterministic JSON snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    weighted: BTreeMap<String, TimeWeighted>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increments counter `name` by `by`.
    pub fn inc_by(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Updates the exact time-weighted signal `name` to `value` at
    /// simulated time `t` (the first call starts the window).
    pub fn track(&mut self, name: &str, t: Rational, value: Rational) {
        match self.weighted.get_mut(name) {
            Some(w) => w.set(t, value),
            None => {
                self.weighted
                    .insert(name.to_string(), TimeWeighted::starting_at(t, value));
            }
        }
    }

    /// The time-weighted signal `name`, if tracked.
    pub fn tracked(&self, name: &str) -> Option<&TimeWeighted> {
        self.weighted.get(name)
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(sample);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Times `f`, recording the wall-clock duration in nanoseconds
    /// into histogram `name`, and returns `f`'s result.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.observe(name, start.elapsed().as_nanos() as f64);
        out
    }

    /// Snapshots everything into one JSON object:
    /// `{counters, gauges, time_weighted, histograms}` with sorted
    /// keys throughout.
    pub fn snapshot(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(*v as i128)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect();
        let weighted = self
            .weighted
            .iter()
            .map(|(k, w)| {
                let avg = w.time_average();
                (
                    k.clone(),
                    Value::Object(vec![
                        (
                            "time_average".into(),
                            avg.map_or(Value::Null, |a| Value::Float(a.to_f64())),
                        ),
                        ("max".into(), Value::Float(w.max().to_f64())),
                        ("min".into(), Value::Float(w.min().to_f64())),
                        ("integral".into(), serde_json::to_value(&w.integral())),
                    ]),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("time_weighted".into(), Value::Object(weighted)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }

    /// Pretty-printed JSON snapshot.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot always serializes")
    }
}

/// An [`EngineObserver`] that fills a [`MetricsRegistry`] with the
/// standard engine signals.
///
/// Counters: `arrivals`, `departures`, `placements`, `bins_opened`,
/// `bins_reused`, `bins_closed`, `events`. Histogram `scan_length`
/// (bins inspected per placement, in opening order) and
/// `event_gap_ns` (wall-clock between consecutive events).
/// Time-weighted signal `open_bins` over simulated time. Gauges
/// `wall_seconds` and `events_per_sec`, set when the run finishes.
#[derive(Debug)]
pub struct EngineMetrics {
    registry: MetricsRegistry,
    started: Instant,
    last_event: Instant,
    events: u64,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineMetrics {
    /// Creates a fresh collector; the wall clock starts now.
    pub fn new() -> EngineMetrics {
        let now = Instant::now();
        EngineMetrics {
            registry: MetricsRegistry::new(),
            started: now,
            last_event: now,
            events: 0,
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the collector, returning the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    fn tick(&mut self) {
        let now = Instant::now();
        self.registry.observe(
            "event_gap_ns",
            now.duration_since(self.last_event).as_nanos() as f64,
        );
        self.last_event = now;
        self.events += 1;
        self.registry.inc("events");
    }
}

impl EngineObserver for EngineMetrics {
    fn on_arrival(&mut self, _arrival: &ArrivalView, _bins: &BinSnapshot<'_>) {
        self.tick();
        self.registry.inc("arrivals");
    }

    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        self.registry.inc("placements");
        let scanned = if opened_new {
            bins.len()
        } else {
            bins.open_bins()
                .iter()
                .position(|b| b.id == chosen)
                .map_or(bins.len(), |p| p + 1)
        };
        self.registry.observe("scan_length", scanned as f64);
        if !opened_new {
            self.registry.inc("bins_reused");
        }
        let _ = arrival;
    }

    fn on_bin_opened(&mut self, _bin: BinId, time: Rational) {
        self.registry.inc("bins_opened");
        let open = self.registry.counter("bins_opened") - self.registry.counter("bins_closed");
        self.registry
            .track("open_bins", time, Rational::from_int(open as i128));
    }

    fn on_departure(
        &mut self,
        _item: ItemId,
        _bin: BinId,
        _size: Rational,
        _time: Rational,
        _bins: &BinSnapshot<'_>,
    ) {
        self.tick();
        self.registry.inc("departures");
    }

    fn on_bin_closed(&mut self, record: &BinRecord) {
        self.registry.inc("bins_closed");
        let open = self.registry.counter("bins_opened") - self.registry.counter("bins_closed");
        self.registry.track(
            "open_bins",
            record.usage.hi(),
            Rational::from_int(open as i128),
        );
    }

    fn on_run_finished(&mut self, outcome: &PackingOutcome) {
        let wall = self.started.elapsed().as_secs_f64();
        self.registry.set_gauge("wall_seconds", wall);
        if wall > 0.0 {
            self.registry
                .set_gauge("events_per_sec", self.events as f64 / wall);
        }
        self.registry
            .set_gauge("total_usage", outcome.total_usage().to_f64());
        self.registry
            .set_gauge("max_open_bins", outcome.max_open_bins() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{FirstFit, Instance, Runner};
    use dbp_numeric::rat;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Some(100.0));
        assert!((h.mean().unwrap() - 26.125).abs() < 1e-9);
        // 0.5 and 1.0 land in bucket 0; 3.0 in 2 (le 4); 100 in 7 (le 128).
        assert_eq!(h.buckets.get(&0), Some(&2));
        assert_eq!(h.buckets.get(&2), Some(&1));
        assert_eq!(h.buckets.get(&7), Some(&1));
    }

    #[test]
    fn registry_snapshot_structure() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.inc_by("a", 2);
        m.set_gauge("g", 1.5);
        m.track("w", rat(0, 1), rat(1, 1));
        m.track("w", rat(2, 1), rat(3, 1));
        let answer = m.time("t_ns", || 7);
        assert_eq!(answer, 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.gauge("g"), Some(1.5));
        assert_eq!(m.tracked("w").unwrap().integral(), rat(2, 1));
        let snap = m.snapshot();
        assert_eq!(snap.get("counters").unwrap().get("a"), Some(&Value::Int(3)));
        assert!(snap.get("histograms").unwrap().get("t_ns").is_some());
        // Snapshot text parses back as JSON.
        assert!(serde_json::parse(&m.to_json_pretty()).is_ok());
    }

    #[test]
    fn engine_metrics_collects_standard_signals() {
        let jobs = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(3, 4), rat(0, 1), rat(3, 1))
            .item(rat(1, 4), rat(1, 1), rat(2, 1))
            .build()
            .unwrap();
        let mut em = EngineMetrics::new();
        let out = Runner::new(&jobs)
            .observer(&mut em)
            .run(&mut FirstFit::new())
            .unwrap();
        let m = em.registry();
        assert_eq!(m.counter("arrivals"), 3);
        assert_eq!(m.counter("departures"), 3);
        assert_eq!(m.counter("placements"), 3);
        assert_eq!(m.counter("bins_opened"), out.bins_opened() as u64);
        assert_eq!(m.counter("bins_closed"), out.bins_opened() as u64);
        assert_eq!(m.counter("bins_reused"), 1);
        assert_eq!(m.histogram("scan_length").unwrap().count(), 3);
        // ∫ open_bins dt over the run equals total usage.
        assert_eq!(
            m.tracked("open_bins").unwrap().integral(),
            out.total_usage()
        );
        assert!(m.gauge("wall_seconds").unwrap() >= 0.0);
    }
}
