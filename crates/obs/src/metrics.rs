//! The metrics registry and the engine metrics observer.
//!
//! [`MetricsRegistry`] is a small, dependency-free metrics surface:
//! monotone counters, last-write-wins gauges, exact rational totals,
//! exact time-weighted signals (on [`dbp_simcore::TimeWeighted`]),
//! and log₂-bucketed histograms for wall-clock and scan-length
//! samples. Everything snapshots to a single JSON object with stable
//! key order, so snapshots diff cleanly across runs.
//!
//! Registries are **mergeable** ([`MetricsRegistry::merge`]): every
//! section has a lawful fold (counters and totals add, gauges resolve
//! last-write-wins by a process-wide write stamp, histogram buckets
//! add, time-weighted signals stitch), so per-shard registries from a
//! `dbp_par::Fleet` collapse into one fleet-wide registry whose
//! snapshot is byte-identical to merging the shards in any order.
//!
//! [`EngineMetrics`] is an [`EngineObserver`] that populates a
//! registry with the standard engine signals: event counts and
//! events/sec, placement scan lengths, bins opened vs reused, and the
//! time-weighted open-bin count. [`telemetry_registry`] renders a
//! session's stream-derived [`SessionMetrics`] — including the
//! paper's `vol(R)`/`span(R)` lower-bound trackers — into a registry
//! built purely from merge-safe sections.

use dbp_core::algo::ArrivalView;
use dbp_core::session::SessionMetrics;
use dbp_core::{BinId, BinRecord, BinSnapshot, EngineObserver, ItemId, PackingOutcome};
use dbp_numeric::Rational;
use dbp_simcore::TimeWeighted;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-wide logical clock stamping every gauge write, so
/// last-write-wins stays well-defined when gauges from *different*
/// registries (e.g. per-shard collectors) are merged. Starts at 1 so
/// stamp 0 can never win against a real write.
static GAUGE_CLOCK: AtomicU64 = AtomicU64::new(1);

fn gauge_stamp() -> u64 {
    GAUGE_CLOCK.fetch_add(1, Ordering::Relaxed)
}

/// A gauge value plus the process-wide write stamp that orders it
/// against writes in other registries. The stamp never appears in
/// snapshots — it exists only to resolve merges.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gauge {
    value: f64,
    stamp: u64,
}

/// Log₂-bucketed histogram of non-negative `f64` samples.
///
/// Bucket `i` holds samples in `(2^(i-1), 2^i]` (bucket 0 holds
/// `[0, 1]`), which spans nanoseconds to minutes in 64 buckets —
/// coarse, but allocation-bounded and plenty for latency shapes.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// Records one sample (negative samples clamp to 0).
    pub fn observe(&mut self, sample: f64) {
        let v = sample.max(0.0);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v <= 1.0 {
            0
        } else {
            // ceil(log2(v)), capped to keep the map bounded.
            (v.log2().ceil() as u32).min(63)
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The populated log₂ buckets as `(upper_bound, count)` pairs in
    /// ascending bound order: bucket exponent `i` covers samples
    /// `≤ 2^i` (and bucket 0 covers `[0, 1]`).
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets.iter().map(|(b, n)| (2f64.powi(*b as i32), *n))
    }

    /// Bucketed quantile estimate (`None` when empty): the upper bound
    /// of the log₂ bucket covering rank `⌈q·count⌉`, clamped to the
    /// observed max. The estimate therefore never exceeds the true
    /// quantile by more than one power of two — the same fidelity a
    /// scraper gets from the rendered `_bucket` series, so client- and
    /// server-side p50/p99 are comparable by construction.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bound, n) in self.buckets() {
            seen += n;
            if seen >= rank {
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self`: counts, sums, and per-bucket tallies
    /// add; extremes combine. The merged histogram is exactly what
    /// observing both sample streams into one histogram would have
    /// produced — `merge(H(A), H(B)) = H(A ∪ B)` — so the fold is
    /// commutative and associative.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (bucket, n) in &other.buckets {
            *self.buckets.entry(*bucket).or_insert(0) += n;
        }
    }

    fn snapshot(&self) -> Value {
        let buckets = self
            .buckets
            .iter()
            .map(|(b, n)| {
                Value::Object(vec![
                    ("le".into(), Value::Float(2f64.powi(*b as i32))),
                    ("count".into(), Value::Int(*n as i128)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::Int(self.count as i128)),
            ("sum".into(), Value::Float(self.sum)),
            // An empty histogram has no extremes: emit `null`, not a
            // fabricated 0.0 (mirrors `mean`).
            ("min".into(), self.min().map_or(Value::Null, Value::Float)),
            ("max".into(), self.max().map_or(Value::Null, Value::Float)),
            ("mean".into(), self.mean().map_or(Value::Null, Value::Float)),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// Counters, gauges, exact totals, time-weighted signals, and
/// histograms under string names, with a deterministic JSON snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    totals: BTreeMap<String, Rational>,
    weighted: BTreeMap<String, TimeWeighted>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increments counter `name` by `by`.
    pub fn inc_by(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` (last write wins, ordered by a process-wide
    /// write stamp so the rule survives cross-registry merges).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(
            name.to_string(),
            Gauge {
                value,
                stamp: gauge_stamp(),
            },
        );
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|g| g.value)
    }

    /// Adds `delta` to the exact rational total `name` (starting from
    /// zero). Totals are the registry's *additive exact* section —
    /// `vol(R)`, `span(R)`, usage time — and fold across shards
    /// without rounding.
    pub fn add_total(&mut self, name: &str, delta: Rational) {
        *self
            .totals
            .entry(name.to_string())
            .or_insert(Rational::ZERO) += delta;
    }

    /// Overwrites the exact rational total `name`.
    pub fn set_total(&mut self, name: &str, value: Rational) {
        self.totals.insert(name.to_string(), value);
    }

    /// The exact total `name`, if set.
    pub fn total(&self, name: &str) -> Option<Rational> {
        self.totals.get(name).copied()
    }

    /// Updates the exact time-weighted signal `name` to `value` at
    /// simulated time `t` (the first call starts the window).
    pub fn track(&mut self, name: &str, t: Rational, value: Rational) {
        match self.weighted.get_mut(name) {
            Some(w) => w.set(t, value),
            None => {
                self.weighted
                    .insert(name.to_string(), TimeWeighted::starting_at(t, value));
            }
        }
    }

    /// The time-weighted signal `name`, if tracked.
    pub fn tracked(&self, name: &str) -> Option<&TimeWeighted> {
        self.weighted.get(name)
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(sample);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges a prebuilt histogram into `name` under the same fold
    /// law as [`merge`](Self::merge) — how externally-accumulated
    /// sample streams (e.g. a profiler's work counters) enter a
    /// registry without replaying every sample.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, g)| (k.as_str(), g.value))
    }

    /// All exact totals, in name order.
    pub fn totals(&self) -> impl Iterator<Item = (&str, Rational)> + '_ {
        self.totals.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All time-weighted signals, in name order.
    pub fn weighted(&self) -> impl Iterator<Item = (&str, &TimeWeighted)> + '_ {
        self.weighted.iter().map(|(k, w)| (k.as_str(), w))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Times `f`, recording the wall-clock duration in nanoseconds
    /// into histogram `name`, and returns `f`'s result.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.observe(name, start.elapsed().as_nanos() as f64);
        out
    }

    /// Merges `other` into `self`, section by section, under each
    /// section's fold law:
    ///
    /// * **counters** and **totals** add (exactly, for totals);
    /// * **gauges** resolve last-write-wins by the process-wide write
    ///   stamp (ties keep `self`'s value, so repeated merges are
    ///   stable);
    /// * **histograms** add per-bucket ([`Histogram::merge`]);
    /// * **time-weighted signals** stitch under zero-extension
    ///   ([`TimeWeighted::merge`]) — integrals add exactly.
    ///
    /// The fold is commutative and associative up to gauge
    /// tie-breaking, so a fleet can merge shard registries in any
    /// order and snapshot the same bytes.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            match self.gauges.get_mut(name) {
                Some(mine) if mine.stamp >= g.stamp => {}
                Some(mine) => *mine = *g,
                None => {
                    self.gauges.insert(name.clone(), *g);
                }
            }
        }
        for (name, v) in &other.totals {
            *self.totals.entry(name.clone()).or_insert(Rational::ZERO) += *v;
        }
        for (name, w) in &other.weighted {
            match self.weighted.get_mut(name) {
                Some(mine) => mine.merge(w),
                None => {
                    self.weighted.insert(name.clone(), w.clone());
                }
            }
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Merges `other` into `self` with every metric name prefixed by
    /// `prefix`, under the same per-section fold laws as
    /// [`merge`](Self::merge).
    ///
    /// This is how a multi-tenant exposition page stays *lawful*: each
    /// tenant's registry lands under its own namespace
    /// (`tenant_acme_dbp_events_total`, ...), so tenants can never
    /// alias each other's series, while the un-prefixed server-wide
    /// aggregate remains a plain [`merge`](Self::merge) of the same
    /// inputs.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(format!("{prefix}{name}")).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            let key = format!("{prefix}{name}");
            match self.gauges.get_mut(&key) {
                Some(mine) if mine.stamp >= g.stamp => {}
                Some(mine) => *mine = *g,
                None => {
                    self.gauges.insert(key, *g);
                }
            }
        }
        for (name, v) in &other.totals {
            *self
                .totals
                .entry(format!("{prefix}{name}"))
                .or_insert(Rational::ZERO) += *v;
        }
        for (name, w) in &other.weighted {
            let key = format!("{prefix}{name}");
            match self.weighted.get_mut(&key) {
                Some(mine) => mine.merge(w),
                None => {
                    self.weighted.insert(key, w.clone());
                }
            }
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(format!("{prefix}{name}"))
                .or_default()
                .merge(h);
        }
    }

    /// Snapshots everything into one JSON object:
    /// `{counters, gauges, totals, time_weighted, histograms}` with
    /// sorted keys throughout. Totals serialize as exact `{num, den}`
    /// pairs; gauge write stamps never appear.
    pub fn snapshot(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(*v as i128)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), Value::Float(g.value)))
            .collect();
        let totals = self
            .totals
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::to_value(v)))
            .collect();
        let weighted = self
            .weighted
            .iter()
            .map(|(k, w)| {
                let avg = w.time_average();
                (
                    k.clone(),
                    Value::Object(vec![
                        (
                            "time_average".into(),
                            avg.map_or(Value::Null, |a| Value::Float(a.to_f64())),
                        ),
                        ("max".into(), Value::Float(w.max().to_f64())),
                        ("min".into(), Value::Float(w.min().to_f64())),
                        ("integral".into(), serde_json::to_value(&w.integral())),
                    ]),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("totals".into(), Value::Object(totals)),
            ("time_weighted".into(), Value::Object(weighted)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }

    /// Pretty-printed JSON snapshot.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot always serializes")
    }
}

/// Renders a session's stream-derived counters into a registry built
/// purely from merge-safe sections, so per-shard registries fold into
/// a fleet view with [`MetricsRegistry::merge`]:
///
/// * counters `arrivals`, `departures`, `events`, `bins_opened`,
///   `open_bins`, `active_items` — additive across shards;
/// * exact totals `load` and `usage_time`, plus `vol` and `span` when
///   the session tracks telemetry (see
///   `SessionBuilder::telemetry`) — the Propositions 1–2
///   lower-bound numerators, additive because each shard's optimum is
///   bounded below by its own `max(vol, span)`;
/// * histogram `peak_open_bins` with one sample per session, so the
///   merged `max` is the fleet-wide peak and `count` the shard count.
///
/// Deliberately **no gauges**: gauges resolve last-write-wins, which
/// would make a fleet fold depend on merge order. Derived gauges
/// (e.g. the live competitive-ratio estimate) belong on the *merged*
/// registry — see [`set_ratio_gauge`].
pub fn telemetry_registry(m: &SessionMetrics) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    r.inc_by("arrivals", m.arrivals);
    r.inc_by("departures", m.departures);
    r.inc_by("events", m.events);
    r.inc_by("bins_opened", m.bins_opened as u64);
    r.inc_by("open_bins", m.open_bins as u64);
    r.inc_by("active_items", m.active_items as u64);
    r.add_total("load", m.load);
    r.add_total("usage_time", m.usage_time);
    if let Some(vol) = m.vol {
        r.add_total("vol", vol);
    }
    if let Some(span) = m.span {
        r.add_total("span", span);
    }
    r.observe("peak_open_bins", m.peak_open_bins as f64);
    r
}

/// Computes the live competitive-ratio upper estimate
/// `usage_time / max(vol, span)` from the registry's exact totals and
/// publishes it as gauge `ratio_upper_estimate` (plus `lower_bound`,
/// the `max(vol, span)` denominator, as a float gauge). No-op while
/// the lower bound is still zero or the totals are absent.
///
/// Call this on a *merged* registry: `vol` and `span` totals are
/// per-shard lower bounds summed, so the gauge estimates the fleet's
/// usage against the sum of per-shard optima.
pub fn set_ratio_gauge(registry: &mut MetricsRegistry) {
    let (Some(usage), Some(vol), Some(span)) = (
        registry.total("usage_time"),
        registry.total("vol"),
        registry.total("span"),
    ) else {
        return;
    };
    let bound = vol.max(span);
    if !bound.is_positive() {
        return;
    }
    registry.set_gauge("lower_bound", bound.to_f64());
    registry.set_gauge("ratio_upper_estimate", (usage / bound).to_f64());
}

/// An [`EngineObserver`] that fills a [`MetricsRegistry`] with the
/// standard engine signals.
///
/// Counters: `arrivals`, `departures`, `placements`, `bins_opened`,
/// `bins_reused`, `bins_closed`, `events`. Histogram `scan_length`
/// (bins inspected per placement, in opening order) and
/// `event_gap_ns` (wall-clock between consecutive events).
/// Time-weighted signal `open_bins` over simulated time. Gauges
/// `wall_seconds` and `events_per_sec`, set when the run finishes.
#[derive(Debug)]
pub struct EngineMetrics {
    registry: MetricsRegistry,
    started: Instant,
    last_event: Instant,
    events: u64,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineMetrics {
    /// Creates a fresh collector; the wall clock starts now.
    pub fn new() -> EngineMetrics {
        let now = Instant::now();
        EngineMetrics {
            registry: MetricsRegistry::new(),
            started: now,
            last_event: now,
            events: 0,
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the collector, returning the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    fn tick(&mut self) {
        let now = Instant::now();
        self.registry.observe(
            "event_gap_ns",
            now.duration_since(self.last_event).as_nanos() as f64,
        );
        self.last_event = now;
        self.events += 1;
        self.registry.inc("events");
    }
}

impl EngineObserver for EngineMetrics {
    fn on_arrival(&mut self, _arrival: &ArrivalView, _bins: &BinSnapshot<'_>) {
        self.tick();
        self.registry.inc("arrivals");
    }

    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        self.registry.inc("placements");
        let scanned = if opened_new {
            bins.len()
        } else {
            bins.open_bins()
                .iter()
                .position(|b| b.id == chosen)
                .map_or(bins.len(), |p| p + 1)
        };
        self.registry.observe("scan_length", scanned as f64);
        if !opened_new {
            self.registry.inc("bins_reused");
        }
        let _ = arrival;
    }

    fn on_bin_opened(&mut self, _bin: BinId, time: Rational) {
        self.registry.inc("bins_opened");
        let open = self.registry.counter("bins_opened") - self.registry.counter("bins_closed");
        self.registry
            .track("open_bins", time, Rational::from_int(open as i128));
    }

    fn on_departure(
        &mut self,
        _item: ItemId,
        _bin: BinId,
        _size: Rational,
        _time: Rational,
        _bins: &BinSnapshot<'_>,
    ) {
        self.tick();
        self.registry.inc("departures");
    }

    fn on_bin_closed(&mut self, record: &BinRecord) {
        self.registry.inc("bins_closed");
        let open = self.registry.counter("bins_opened") - self.registry.counter("bins_closed");
        self.registry.track(
            "open_bins",
            record.usage.hi(),
            Rational::from_int(open as i128),
        );
    }

    fn on_run_finished(&mut self, outcome: &PackingOutcome) {
        let wall = self.started.elapsed().as_secs_f64();
        self.registry.set_gauge("wall_seconds", wall);
        if wall > 0.0 {
            self.registry
                .set_gauge("events_per_sec", self.events as f64 / wall);
        }
        self.registry
            .set_gauge("total_usage", outcome.total_usage().to_f64());
        self.registry
            .set_gauge("max_open_bins", outcome.max_open_bins() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{FirstFit, Instance, Runner};
    use dbp_numeric::rat;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Some(100.0));
        assert!((h.mean().unwrap() - 26.125).abs() < 1e-9);
        // 0.5 and 1.0 land in bucket 0; 3.0 in 2 (le 4); 100 in 7 (le 128).
        assert_eq!(h.buckets.get(&0), Some(&2));
        assert_eq!(h.buckets.get(&2), Some(&1));
        assert_eq!(h.buckets.get(&7), Some(&1));
        let bounds: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(bounds, vec![(1.0, 2), (4.0, 1), (128.0, 1)]);
    }

    #[test]
    fn merge_prefixed_namespaces_every_section() {
        let mut tenant = MetricsRegistry::new();
        tenant.inc_by("dbp_events_total", 5);
        tenant.set_gauge("dbp_open_bins", 3.0);
        tenant.add_total("dbp_usage_time", rat(7, 2));
        tenant.track("dbp_load", rat(0, 1), rat(1, 2));
        tenant.observe("dbp_latency", 2.0);

        let mut page = MetricsRegistry::new();
        page.inc_by("tenant_acme_dbp_events_total", 1);
        page.merge_prefixed("tenant_acme_", &tenant);

        assert_eq!(page.counter("tenant_acme_dbp_events_total"), 6);
        assert_eq!(page.gauge("tenant_acme_dbp_open_bins"), Some(3.0));
        assert_eq!(page.total("tenant_acme_dbp_usage_time"), Some(rat(7, 2)));
        assert!(page.tracked("tenant_acme_dbp_load").is_some());
        assert_eq!(
            page.histogram("tenant_acme_dbp_latency").unwrap().count(),
            1
        );
        // Nothing leaked into the un-prefixed namespace.
        assert_eq!(page.counter("dbp_events_total"), 0);
        assert!(page.gauge("dbp_open_bins").is_none());

        // Prefixed merge folds exactly like a plain merge of renamed
        // inputs: merging twice doubles counters, keeps gauges.
        page.merge_prefixed("tenant_acme_", &tenant);
        assert_eq!(page.counter("tenant_acme_dbp_events_total"), 11);
        assert_eq!(page.gauge("tenant_acme_dbp_open_bins"), Some(3.0));
    }

    #[test]
    fn merge_prefixed_collisions_and_empties_fold_lawfully() {
        // Two tenant names that sanitize to the same prefix (the page
        // builder maps any non-alphanumeric to `_`, so `a.b` and `a_b`
        // both become `tenant_a_b_`): their series alias, and the fold
        // laws make the collision additive rather than lossy — the
        // shared counter is the sum, the histogram is the union.
        let mut one = MetricsRegistry::new();
        one.inc_by("events", 3);
        one.observe("latency", 2.0);
        let mut two = MetricsRegistry::new();
        two.inc_by("events", 4);
        two.observe("latency", 900.0);
        let mut page = MetricsRegistry::new();
        page.merge_prefixed("tenant_a_b_", &one);
        page.merge_prefixed("tenant_a_b_", &two);
        assert_eq!(page.counter("tenant_a_b_events"), 7);
        assert_eq!(page.histogram("tenant_a_b_latency").unwrap().count(), 2);

        // An empty source registry is the identity, and merging into
        // an empty page is a pure (prefixed) copy.
        let before = page.snapshot();
        page.merge_prefixed("tenant_a_b_", &MetricsRegistry::new());
        assert_eq!(page.snapshot(), before);
        let mut fresh = MetricsRegistry::new();
        fresh.merge_prefixed("t_", &one);
        assert_eq!(fresh.counter("t_events"), 3);
        assert_eq!(fresh.histogram("t_latency").unwrap().count(), 1);

        // A prefixed histogram landing on a name some counter already
        // uses: sections are independent maps, so both series survive
        // under the same name — no cross-section clobbering.
        let mut clash = MetricsRegistry::new();
        clash.inc_by("t_latency", 5);
        clash.merge_prefixed("t_", &one);
        assert_eq!(clash.counter("t_latency"), 5);
        assert_eq!(clash.histogram("t_latency").unwrap().count(), 1);
        // And the reverse: a prefixed counter next to a histogram.
        let mut reverse = MetricsRegistry::new();
        reverse.observe("t_events", 1.0);
        reverse.merge_prefixed("t_", &one);
        assert_eq!(reverse.counter("t_events"), 3);
        assert_eq!(reverse.histogram("t_events").unwrap().count(), 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds_clamped_to_extremes() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);

        let mut h = Histogram::default();
        for v in [0.5, 3.0, 3.5, 100.0] {
            h.observe(v);
        }
        // Rank 2 of 4 lands in the (2, 4] bucket.
        assert_eq!(h.quantile(0.5), Some(4.0));
        // The top quantile clamps to the observed max, not the 128.0
        // bucket bound.
        assert_eq!(h.quantile(0.99), Some(100.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        // The bottom rank answers with its bucket's upper bound.
        assert_eq!(h.quantile(0.0), Some(1.0));

        // A single sample answers every quantile with itself.
        let mut one = Histogram::default();
        one.observe(7.0);
        assert_eq!(one.quantile(0.5), Some(7.0));
        assert_eq!(one.quantile(0.99), Some(7.0));
    }

    #[test]
    fn empty_histogram_snapshot_has_null_extremes() {
        // Regression: an empty histogram used to fabricate
        // `min: 0.0` / `max: 0.0`; like `mean`, they must be `null`.
        let h = Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let snap = h.snapshot();
        assert_eq!(snap.get("min"), Some(&Value::Null));
        assert_eq!(snap.get("max"), Some(&Value::Null));
        assert_eq!(snap.get("mean"), Some(&Value::Null));
        assert_eq!(snap.get("count"), Some(&Value::Int(0)));
        // One observation makes them real numbers again.
        let mut h = h;
        h.observe(2.5);
        let snap = h.snapshot();
        assert_eq!(snap.get("min"), Some(&Value::Float(2.5)));
        assert_eq!(snap.get("max"), Some(&Value::Float(2.5)));
    }

    #[test]
    fn histogram_merge_equals_union_of_streams() {
        let (a_samples, b_samples) = ([0.5, 3.0, 700.0], [1.0, 3.5, 0.25, 9e9]);
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut union = Histogram::default();
        for v in a_samples {
            a.observe(v);
            union.observe(v);
        }
        for v in b_samples {
            b.observe(v);
            union.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.snapshot(), union.snapshot());
        // Merging an empty histogram is the identity, both ways.
        let mut left = a.clone();
        left.merge(&Histogram::default());
        assert_eq!(left.snapshot(), a.snapshot());
        let mut right = Histogram::default();
        right.merge(&a);
        assert_eq!(right.snapshot(), a.snapshot());
    }

    #[test]
    fn registry_snapshot_structure() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.inc_by("a", 2);
        m.set_gauge("g", 1.5);
        m.add_total("vol", rat(1, 3));
        m.add_total("vol", rat(1, 6));
        m.track("w", rat(0, 1), rat(1, 1));
        m.track("w", rat(2, 1), rat(3, 1));
        let answer = m.time("t_ns", || 7);
        assert_eq!(answer, 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.gauge("g"), Some(1.5));
        assert_eq!(m.total("vol"), Some(rat(1, 2)));
        assert_eq!(m.tracked("w").unwrap().integral(), rat(2, 1));
        let snap = m.snapshot();
        assert_eq!(snap.get("counters").unwrap().get("a"), Some(&Value::Int(3)));
        assert!(snap.get("histograms").unwrap().get("t_ns").is_some());
        // Totals serialize as exact {num, den} pairs.
        let vol = snap.get("totals").unwrap().get("vol").unwrap();
        assert_eq!(vol.get("num").unwrap().as_int(), Some(1));
        assert_eq!(vol.get("den").unwrap().as_int(), Some(2));
        // Snapshot text parses back as JSON.
        assert!(serde_json::parse(&m.to_json_pretty()).is_ok());
    }

    #[test]
    fn registry_merge_folds_every_section() {
        let mut a = MetricsRegistry::new();
        a.inc_by("events", 3);
        a.add_total("usage_time", rat(5, 2));
        a.observe("peak", 4.0);
        a.track("open", rat(0, 1), rat(2, 1));
        a.set_gauge("ratio", 1.0);
        let mut b = MetricsRegistry::new();
        b.inc_by("events", 2);
        b.inc("departures");
        b.add_total("usage_time", rat(1, 2));
        b.observe("peak", 9.0);
        b.track("open", rat(0, 1), rat(1, 1));
        b.set_gauge("ratio", 2.0); // later write stamp: wins the merge

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("events"), 5);
        assert_eq!(merged.counter("departures"), 1);
        assert_eq!(merged.total("usage_time"), Some(rat(3, 1)));
        assert_eq!(merged.histogram("peak").unwrap().max(), Some(9.0));
        assert_eq!(merged.gauge("ratio"), Some(2.0));
        assert_eq!(merged.tracked("open").unwrap().current(), rat(3, 1));

        // Merge order cannot change the snapshot bytes.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(flipped.to_json_pretty(), merged.to_json_pretty());
    }

    #[test]
    fn ratio_gauge_derives_from_exact_totals() {
        let mut r = MetricsRegistry::new();
        set_ratio_gauge(&mut r); // no totals: no-op
        assert_eq!(r.gauge("ratio_upper_estimate"), None);
        r.add_total("usage_time", rat(9, 1));
        r.add_total("vol", rat(3, 1));
        r.add_total("span", rat(4, 1));
        set_ratio_gauge(&mut r);
        assert_eq!(r.gauge("lower_bound"), Some(4.0));
        assert_eq!(r.gauge("ratio_upper_estimate"), Some(2.25));
    }

    #[test]
    fn engine_metrics_collects_standard_signals() {
        let jobs = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(3, 4), rat(0, 1), rat(3, 1))
            .item(rat(1, 4), rat(1, 1), rat(2, 1))
            .build()
            .unwrap();
        let mut em = EngineMetrics::new();
        let out = Runner::new(&jobs)
            .observer(&mut em)
            .run(&mut FirstFit::new())
            .unwrap();
        let m = em.registry();
        assert_eq!(m.counter("arrivals"), 3);
        assert_eq!(m.counter("departures"), 3);
        assert_eq!(m.counter("placements"), 3);
        assert_eq!(m.counter("bins_opened"), out.bins_opened() as u64);
        assert_eq!(m.counter("bins_closed"), out.bins_opened() as u64);
        assert_eq!(m.counter("bins_reused"), 1);
        assert_eq!(m.histogram("scan_length").unwrap().count(), 3);
        // ∫ open_bins dt over the run equals total usage.
        assert_eq!(
            m.tracked("open_bins").unwrap().integral(),
            out.total_usage()
        );
        assert!(m.gauge("wall_seconds").unwrap() >= 0.0);
    }
}
