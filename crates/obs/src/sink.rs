//! Bounded-memory live tracing: the [`TelemetrySink`] observer.
//!
//! [`TraceRecorder`](crate::TraceRecorder) buffers every event in an
//! unbounded `Vec` — fine for batch post-mortems, wrong for streams
//! of unknown length. A [`TelemetrySink`] keeps memory bounded no
//! matter how long the run:
//!
//! * a **ring** of the most recent events (capacity fixed at
//!   construction — older events are evicted, not accumulated);
//! * an optional **incremental JSONL spill**: each kept event is
//!   serialized and written to a caller-supplied writer as it
//!   happens, so the full trace can land on disk while the in-memory
//!   footprint stays a ring;
//! * optional **1-in-N sampling** for high-rate streams — every N-th
//!   event is kept, the rest are counted and dropped before the
//!   event (and its scan statistics) are even materialized. The
//!   terminal `RunFinished` event is always kept.
//!
//! Spill I/O failures never panic the engine: the first error is
//! captured ([`spill_error`](TelemetrySink::spill_error)), spilling
//! stops, and the ring keeps working.

use crate::trace::{events_to_jsonl, TraceEvent};
use dbp_core::algo::ArrivalView;
use dbp_core::{BinId, BinRecord, BinSnapshot, EngineObserver, ItemId, PackingOutcome};
use dbp_numeric::Rational;
use std::fmt;
use std::io::{self, Write};

/// Default ring capacity: enough recent context for a post-incident
/// look without holding a long stream's history.
const DEFAULT_RING: usize = 1024;

/// A bounded-memory [`EngineObserver`]: recent-event ring, optional
/// incremental JSONL spill, optional 1-in-N sampling (see the
/// [module docs](self)).
///
/// ```
/// use dbp_core::prelude::*;
/// use dbp_numeric::rat;
/// use dbp_obs::TelemetrySink;
///
/// let jobs = Instance::builder()
///     .item(rat(1, 2), rat(0, 1), rat(2, 1))
///     .item(rat(1, 2), rat(1, 1), rat(3, 1))
///     .build()
///     .unwrap();
/// let mut sink = TelemetrySink::new().ring(4);
/// dbp_core::session::Runner::new(&jobs)
///     .observer(&mut sink)
///     .run(&mut FirstFit::new())
///     .unwrap();
/// assert!(sink.recent().count() <= 4);
/// assert!(sink.seen() > 4);
/// ```
pub struct TelemetrySink {
    /// Fixed-slot ring: below capacity it is an ordered `Vec`
    /// (`head == 0`); once full, new events overwrite the oldest
    /// *in place* — one move per event, no shifting, no steady-state
    /// allocation — and `head` marks the oldest slot.
    ring: Vec<TraceEvent>,
    head: usize,
    cap: usize,
    /// Keep every `sample`-th event (1 = keep all).
    sample: u64,
    seen: u64,
    kept: u64,
    evicted: u64,
    spilled: u64,
    spill: Option<Box<dyn Write + Send>>,
    spill_error: Option<io::Error>,
    /// Recycled `rejected` buffers from evicted `Placement` events —
    /// keeps the steady-state ring allocation-free.
    scratch: Vec<Vec<BinId>>,
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("cap", &self.cap)
            .field("sample", &self.sample)
            .field("seen", &self.seen)
            .field("kept", &self.kept)
            .field("evicted", &self.evicted)
            .field("spilled", &self.spilled)
            .field("spilling", &self.spill.is_some())
            .field("spill_error", &self.spill_error)
            .finish()
    }
}

impl Default for TelemetrySink {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetrySink {
    /// A sink with the default ring capacity, no spill, no sampling.
    pub fn new() -> TelemetrySink {
        TelemetrySink {
            ring: Vec::with_capacity(DEFAULT_RING),
            head: 0,
            cap: DEFAULT_RING,
            sample: 1,
            seen: 0,
            kept: 0,
            evicted: 0,
            spilled: 0,
            spill: None,
            spill_error: None,
            scratch: Vec::new(),
        }
    }

    /// Sets the ring capacity (0 disables the ring entirely —
    /// spill-only operation). The ring is allocated eagerly: the
    /// capacity *is* the memory bound, and reserving it up front
    /// keeps doubling-growth reallocations off the event hot path.
    pub fn ring(mut self, capacity: usize) -> TelemetrySink {
        // Normalize to oldest-first order, then trim the front so a
        // shrink takes effect now, not lazily.
        self.ring.rotate_left(self.head);
        self.head = 0;
        self.cap = capacity;
        if self.ring.len() > capacity {
            let excess = self.ring.len() - capacity;
            self.evicted += excess as u64;
            self.ring.drain(..excess);
        }
        self.ring.reserve(capacity - self.ring.len());
        self
    }

    /// Keeps only every `n`-th event (`n = 1` keeps all; 0 is treated
    /// as 1). Dropped events are counted but never materialized, so
    /// sampling also skips their scan-statistics work. The terminal
    /// `RunFinished` event is always kept.
    pub fn sample(mut self, n: u64) -> TelemetrySink {
        self.sample = n.max(1);
        self
    }

    /// Spills every kept event to `w` as one compact JSONL line,
    /// incrementally. The writer is flushed when the run finishes
    /// (or on [`flush`](Self::flush)).
    pub fn spill(mut self, w: impl Write + Send + 'static) -> TelemetrySink {
        self.spill = Some(Box::new(w));
        self
    }

    /// The retained recent events, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, front) = self.ring.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Consumes the sink, returning the retained events oldest first.
    pub fn into_recent(mut self) -> Vec<TraceEvent> {
        self.ring.rotate_left(self.head);
        self.ring
    }

    /// Events offered to the sink (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events that passed sampling.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Events evicted from the ring to respect its capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// JSONL lines written to the spill writer so far.
    pub fn spilled_lines(&self) -> u64 {
        self.spilled
    }

    /// The first spill I/O error, if one occurred (spilling stopped
    /// there; the ring kept running).
    pub fn spill_error(&self) -> Option<&io::Error> {
        self.spill_error.as_ref()
    }

    /// Flushes the spill writer (a no-op without one).
    pub fn flush(&mut self) {
        if let Some(w) = &mut self.spill {
            if let Err(e) = w.flush() {
                if self.spill_error.is_none() {
                    self.spill_error = Some(e);
                }
                self.spill = None;
            }
        }
    }

    /// Sampling decision for the *next* event; counts it as seen.
    /// `force` bypasses sampling (terminal events).
    fn admit(&mut self, force: bool) -> bool {
        // `sample == 1` (the default) skips the division entirely —
        // this runs once per engine event.
        let keep = force || self.sample == 1 || self.seen.is_multiple_of(self.sample);
        self.seen += 1;
        keep
    }

    fn record(&mut self, ev: TraceEvent) {
        self.kept += 1;
        if let Some(w) = &mut self.spill {
            match w.write_all(events_to_jsonl(std::slice::from_ref(&ev)).as_bytes()) {
                Ok(()) => self.spilled += 1,
                Err(e) => {
                    self.spill_error = Some(e);
                    self.spill = None;
                }
            }
        }
        if self.cap == 0 {
            return;
        }
        if self.ring.len() < self.cap {
            self.ring.push(ev);
            return;
        }
        let old = std::mem::replace(&mut self.ring[self.head], ev);
        self.head += 1;
        if self.head == self.cap {
            self.head = 0;
        }
        self.evicted += 1;
        if let TraceEvent::Placement { mut rejected, .. } = old {
            rejected.clear();
            self.scratch.push(rejected);
        }
    }
}

impl EngineObserver for TelemetrySink {
    fn on_arrival(&mut self, arrival: &ArrivalView, bins: &BinSnapshot<'_>) {
        if self.admit(false) {
            self.record(TraceEvent::from_arrival(arrival, bins));
        }
    }

    fn on_placement(
        &mut self,
        arrival: &ArrivalView,
        bins: &BinSnapshot<'_>,
        chosen: BinId,
        opened_new: bool,
    ) {
        if self.admit(false) {
            // Scan statistics are only materialized for kept events,
            // into a buffer recycled from an evicted event when the
            // ring has started wrapping.
            let buf = self.scratch.pop().unwrap_or_default();
            self.record(TraceEvent::from_placement_reusing(
                arrival, bins, chosen, opened_new, buf,
            ));
        }
    }

    fn on_bin_opened(&mut self, bin: BinId, time: Rational) {
        if self.admit(false) {
            self.record(TraceEvent::from_bin_opened(bin, time));
        }
    }

    fn on_departure(
        &mut self,
        item: ItemId,
        bin: BinId,
        size: Rational,
        time: Rational,
        _bins: &BinSnapshot<'_>,
    ) {
        if self.admit(false) {
            self.record(TraceEvent::from_departure(item, bin, size, time));
        }
    }

    fn on_bin_closed(&mut self, record: &BinRecord) {
        if self.admit(false) {
            self.record(TraceEvent::from_bin_closed(record));
        }
    }

    fn on_run_finished(&mut self, outcome: &PackingOutcome) {
        if self.admit(true) {
            self.record(TraceEvent::from_run_finished(outcome));
        }
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_jsonl;
    use crate::TraceRecorder;
    use dbp_core::session::Runner;
    use dbp_core::{FirstFit, Instance};
    use dbp_numeric::rat;
    use std::sync::{Arc, Mutex};

    /// A `Write` handle tests can read back after the sink owns it.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A writer that fails after `ok_bytes`.
    struct Failing {
        left: usize,
    }

    impl Write for Failing {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.left < buf.len() {
                return Err(io::Error::other("disk full"));
            }
            self.left -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn staircase(n: u32) -> Instance {
        let mut b = Instance::builder();
        for i in 0..n {
            b = b.item(rat(1, 4), rat(i as i128, 1), rat(i as i128 + 2, 1));
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let inst = staircase(100);
        let mut sink = TelemetrySink::new().ring(8);
        Runner::new(&inst)
            .observer(&mut sink)
            .run(&mut FirstFit::new())
            .unwrap();
        assert_eq!(sink.recent().count(), 8);
        assert_eq!(sink.seen(), sink.kept());
        assert_eq!(sink.evicted(), sink.seen() - 8);
        // The newest retained event is the terminal one.
        let last = sink.recent().last().unwrap();
        assert_eq!(last.kind(), "run_finished");
    }

    #[test]
    fn spill_streams_the_full_trace_incrementally() {
        let inst = staircase(40);
        let out = Shared::default();
        let mut sink = TelemetrySink::new().ring(4).spill(out.clone());
        let mut rec = TraceRecorder::new();
        let outcome = {
            let mut both = dbp_core::FanOut::new(vec![&mut sink, &mut rec]);
            Runner::new(&inst)
                .observer(&mut both)
                .run(&mut FirstFit::new())
                .unwrap()
        };
        assert!(sink.spill_error().is_none());
        assert_eq!(sink.spilled_lines(), sink.seen());
        // The spilled JSONL is the complete trace, despite the tiny
        // ring — and it replay-verifies against the outcome.
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, rec.into_events());
        crate::verify(&parsed, &outcome).unwrap();
    }

    #[test]
    fn sampling_keeps_one_in_n_plus_the_terminal_event() {
        let inst = staircase(60);
        let mut sink = TelemetrySink::new().sample(10);
        Runner::new(&inst)
            .observer(&mut sink)
            .run(&mut FirstFit::new())
            .unwrap();
        let seen = sink.seen();
        // Every 10th event plus (possibly) the forced terminal one.
        assert!(sink.kept() <= seen.div_ceil(10) + 1);
        assert!(sink.kept() >= seen / 10);
        assert_eq!(sink.recent().last().unwrap().kind(), "run_finished");
    }

    #[test]
    fn spill_errors_are_captured_not_panicked() {
        let inst = staircase(40);
        let mut sink = TelemetrySink::new().ring(8).spill(Failing { left: 200 });
        Runner::new(&inst)
            .observer(&mut sink)
            .run(&mut FirstFit::new())
            .unwrap();
        assert!(sink.spill_error().is_some());
        assert!(sink.spilled_lines() > 0);
        // The ring survived the dead writer.
        assert_eq!(sink.recent().count(), 8);
    }
}
