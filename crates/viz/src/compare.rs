//! Side-by-side fleet comparison: the algorithm's open-bin count vs
//! the adversary's `OPT(R, t)` profile.
//!
//! This is the competitive ratio *as a picture*: wherever the digit
//! rows diverge, the algorithm is paying for bins the repacking
//! adversary would not keep open.

use dbp_analysis::optimal::{opt_profile, OptConfig};
use dbp_analysis::ExactBinPacking;
use dbp_core::{Instance, PackingOutcome};
use dbp_numeric::Rational;

/// Digit (capped at `9`, then `+`) for a bin count.
fn digit(count: usize) -> char {
    match count {
        0 => '·',
        1..=9 => char::from_digit(count as u32, 10).unwrap(),
        _ => '+',
    }
}

/// Renders two aligned strips over the packing period: the
/// algorithm's open-bin count and the adversary's instantaneous
/// optimum (lower bound when an exact solve is out of reach), plus
/// the usage-time totals.
pub fn comparison(instance: &Instance, outcome: &PackingOutcome, width: usize) -> String {
    let Some(hull) = instance.packing_period() else {
        return "(empty instance)\n".to_string();
    };
    let width = width.max(8);
    let profile = opt_profile(instance, &ExactBinPacking::new(), OptConfig::default());

    let mut alg_row = String::with_capacity(width);
    let mut opt_row = String::with_capacity(width);
    for col in 0..width {
        let t = hull.lo() + hull.len() * Rational::new(col as i128, width as i128);
        let open = outcome
            .bins()
            .iter()
            .filter(|b| b.usage.contains_point(t))
            .count();
        alg_row.push(digit(open));
        let opt = profile
            .segments
            .iter()
            .find(|s| s.window.contains_point(t))
            .map(|s| s.lower)
            .unwrap_or(0);
        opt_row.push(digit(opt));
    }

    let opt_total: Rational = profile
        .segments
        .iter()
        .map(|s| Rational::from_int(s.lower as i128) * s.window.len())
        .sum();
    format!(
        "{:<4} {alg_row}  usage = {}\nOPT  {opt_row}  ∫OPT ≥ {}\n     t ∈ [{}, {})   digits = open servers (· = none, + = >9)\n",
        outcome.algorithm().chars().take(4).collect::<String>(),
        outcome.total_usage(),
        opt_total,
        hull.lo(),
        hull.hi(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;
    use dbp_workloads::adversarial::next_fit_pairs;

    #[test]
    fn gadget_comparison_shows_divergence() {
        let (inst, _) = next_fit_pairs(6, 4);
        let nf = Runner::new(&inst).run(&mut NextFit::new()).unwrap();
        let s = comparison(&inst, &nf, 48);
        // Next Fit holds 6 bins open for the whole horizon; the
        // adversary drops to 1 after t = 1.
        assert!(s.contains('6'), "{s}");
        assert!(s.contains('1'), "{s}");
        assert!(s.contains("usage = 24"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn optimal_packing_rows_agree() {
        // A single item: ALG row and OPT row are identical.
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(4, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let s = comparison(&inst, &out, 24);
        let lines: Vec<&str> = s.lines().collect();
        let alg: String = lines[0].chars().skip(5).take(24).collect();
        let opt: String = lines[1].chars().skip(5).take(24).collect();
        assert_eq!(alg, opt);
    }

    #[test]
    fn dense_fleets_saturate_to_plus() {
        let specs: Vec<_> = (0..12).map(|_| (rat(1, 1), rat(0, 1), rat(1, 1))).collect();
        let inst = Instance::new(specs).unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let s = comparison(&inst, &out, 16);
        assert!(s.contains('+'), "{s}");
    }
}
