//! Bin-level (utilization) profiles as block-character strips.

use dbp_core::{Instance, PackingOutcome};
use dbp_numeric::{Interval, Rational};

/// Eight-step block ramp for fill levels in `(0, 1]`.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders each bin's level over time as a strip of block characters
/// (space = closed or empty, `▁…█` = level in eighths), with the
/// bin's mean utilization on the right.
///
/// The level shown in each column is the exact level at the column's
/// left-edge time — faithful for instances whose events are no finer
/// than the column grid, and a fair summary otherwise.
pub fn levels(instance: &Instance, outcome: &PackingOutcome, width: usize) -> String {
    let Some(hull) = instance.packing_period() else {
        return "(empty instance)\n".to_string();
    };
    if outcome.bins().is_empty() {
        return "(no bins opened)\n".to_string();
    }
    let width = width.max(8);
    let label_width = outcome
        .bins()
        .iter()
        .map(|b| b.id.to_string().len())
        .max()
        .unwrap_or(2);
    let mut out = String::new();
    for bin in outcome.bins() {
        let mut strip = String::with_capacity(width);
        for col in 0..width {
            let t = hull.lo() + hull.len() * Rational::new(col as i128, width as i128);
            if !bin.usage.contains_point(t) {
                strip.push(' ');
                continue;
            }
            let level: Rational = bin
                .items
                .iter()
                .map(|id| instance.item(*id))
                .filter(|r| r.active_at(t))
                .map(|r| r.size)
                .sum();
            if level.is_zero() {
                strip.push(' ');
            } else {
                // Map (0,1] to the 8 blocks: ⌈8·level⌉ clamped.
                let idx = (level * Rational::from_int(8)).ceil().clamp(1, 8) as usize;
                strip.push(BLOCKS[idx - 1]);
            }
        }
        let mean = bin
            .mean_level()
            .map(|m| format!("{:.2}", m.to_f64()))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<label_width$} {strip} mean {mean}\n",
            bin.id.to_string(),
        ));
    }
    out.push_str(&format!(
        "{} t ∈ [{}, {}), 1 column = {}\n",
        " ".repeat(label_width),
        hull.lo(),
        hull.hi(),
        Interval::new(Rational::ZERO, hull.len() * Rational::new(1, width as i128)).len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;

    #[test]
    fn full_bins_render_full_blocks() {
        let inst = Instance::builder()
            .item(rat(1, 1), rat(0, 1), rat(4, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let s = levels(&inst, &out, 16);
        assert!(s.contains('█'));
        assert!(s.contains("mean 1.00"));
    }

    #[test]
    fn half_level_uses_mid_block() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(4, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let s = levels(&inst, &out, 16);
        // ⌈8·(1/2)⌉ = 4 → '▄'.
        assert!(s.contains('▄'), "{s}");
        assert!(!s.contains('█'));
    }

    #[test]
    fn closed_periods_are_blank() {
        let inst = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(1, 1))
            .item(rat(1, 2), rat(3, 1), rat(4, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let s = levels(&inst, &out, 16);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // two bins + axis
                                    // The first bin's strip goes blank after it closes at t=1.
        let strip = &lines[0][3..]; // skip "b0 "
        assert!(strip.trim_end().len() < strip.len() || strip.contains(' '));
    }

    #[test]
    fn level_changes_show_as_steps() {
        let inst = Instance::builder()
            .item(rat(1, 4), rat(0, 1), rat(8, 1))
            .item(rat(3, 4), rat(4, 1), rat(8, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        let s = levels(&inst, &out, 16);
        // First half at 1/4 (block 2 = ▂), second half full (█).
        assert!(s.contains('▂'), "{s}");
        assert!(s.contains('█'), "{s}");
    }
}
