#![warn(missing_docs)]

//! # `dbp-viz` — ASCII timeline renderings
//!
//! Deterministic text renderings of packings and of the §IV–§VII
//! decomposition, reproducing the paper's illustrative figures from
//! concrete instances:
//!
//! * [`timeline`] — items and their span (Figure 1);
//! * [`usage`] — per-bin usage periods with the `V_k`/`W_k` split and
//!   `E_k` markers (Figure 2);
//! * [`subperiods`] — small-item selection, `x_i` periods, l/h split,
//!   and supplier periods drawn on the supplier bins (Figures 3–6);
//! * [`levels`] — per-bin utilization strips (block characters);
//! * [`comparison`] — the algorithm's fleet size vs `OPT(R,t)`, the
//!   competitive ratio as a picture.
//!
//! All renderers are pure string producers (testable, diffable) and
//! scale times linearly onto a fixed-width column grid.

mod canvas;
pub mod compare;
mod levels;

pub use canvas::Canvas;
pub use compare::comparison;
pub use levels::levels;

use dbp_analysis::Decomposition;
use dbp_core::{Instance, PackingOutcome};
use dbp_numeric::{Interval, Rational};

/// Maps a time to a column in `[0, width]` given the global hull.
fn scale(t: Rational, hull: Interval, width: usize) -> usize {
    if hull.len().is_zero() {
        return 0;
    }
    let frac = (t - hull.lo()) / hull.len();
    let col = (frac * Rational::from_int(width as i128)).floor();
    col.clamp(0, width as i128) as usize
}

/// Renders the items of an instance with the span row underneath
/// (the paper's Figure 1).
///
/// Each item row shows `[────)` over its active interval; the last
/// row marks the union (span) with `█`.
pub fn timeline(instance: &Instance, width: usize) -> String {
    let Some(hull) = instance.packing_period() else {
        return "(empty instance)\n".to_string();
    };
    let mut canvas = Canvas::new(width);
    for item in instance.items() {
        let c0 = scale(item.arrival(), hull, width);
        let c1 = scale(item.departure(), hull, width).max(c0 + 1);
        let label = format!("{} (s={})", item.id, item.size);
        canvas.segment(&label, c0, c1, '─', '[', ')');
    }
    let span_row = canvas.blank_row("span");
    for comp in instance.active_set().components() {
        let c0 = scale(comp.lo(), hull, width);
        let c1 = scale(comp.hi(), hull, width).max(c0 + 1);
        canvas.fill_row(span_row, c0, c1, '█');
    }
    canvas.with_axis(hull)
}

/// Renders per-bin usage periods with `V_k` (`░`), `W_k` (`█`) and
/// the `E_k` marker (`|`) — the paper's Figure 2.
pub fn usage(instance: &Instance, outcome: &PackingOutcome, width: usize) -> String {
    let Some(hull) = instance.packing_period() else {
        return "(empty instance)\n".to_string();
    };
    if outcome.bins().is_empty() {
        return "(no bins opened)\n".to_string();
    }
    let decomp = Decomposition::compute(instance, outcome);
    let mut canvas = Canvas::new(width);
    for bin in &decomp.bins {
        let label = format!("{} U={}", bin.bin, bin.usage);
        let row = canvas.blank_row(&label);
        if !bin.v.is_empty() {
            let c0 = scale(bin.v.lo(), hull, width);
            let c1 = scale(bin.v.hi(), hull, width).max(c0 + 1);
            canvas.fill_row(row, c0, c1, '░');
        }
        if !bin.w.is_empty() {
            let c0 = scale(bin.w.lo(), hull, width);
            let c1 = scale(bin.w.hi(), hull, width).max(c0 + 1);
            canvas.fill_row(row, c0, c1, '█');
        }
        let e_col = scale(bin.e_k, hull, width).min(width.saturating_sub(1));
        canvas.mark(row, e_col, '|');
    }
    canvas.push_legend("░ V_k (overlapped by earlier bins)   █ W_k (exclusive)   | E_k");
    canvas.with_axis(hull)
}

/// Renders the §V–§VII decomposition: every bin's subperiods (`l`/`h`)
/// with the selected small-item arrivals (`▼`), and each group's
/// supplier period (`◆`) drawn on a row under its *supplier* bin —
/// the paper's Figures 3–6 in one picture.
pub fn subperiods(instance: &Instance, outcome: &PackingOutcome, width: usize) -> String {
    let Some(hull_items) = instance.packing_period() else {
        return "(empty instance)\n".to_string();
    };
    if outcome.bins().is_empty() {
        return "(no bins opened)\n".to_string();
    }
    let decomp = Decomposition::compute(instance, outcome);
    // Supplier windows can poke outside the packing period; widen the
    // hull to cover them.
    let mut hull = hull_items;
    for g in &decomp.groups {
        hull = hull.hull(&g.supplier_period);
    }
    let mut canvas = Canvas::new(width);
    for (k, bin) in decomp.bins.iter().enumerate() {
        let label = format!("{}", bin.bin);
        let row = canvas.blank_row(&label);
        // Usage background.
        let u0 = scale(bin.usage.lo(), hull, width);
        let u1 = scale(bin.usage.hi(), hull, width).max(u0 + 1);
        canvas.fill_row(row, u0, u1, '·');
        // Subperiods.
        for s in &bin.subperiods {
            if !s.l.is_empty() {
                let c0 = scale(s.l.lo(), hull, width);
                let c1 = scale(s.l.hi(), hull, width).max(c0 + 1);
                canvas.fill_row(row, c0, c1, 'l');
            }
            if !s.h.is_empty() {
                let c0 = scale(s.h.lo(), hull, width);
                let c1 = scale(s.h.hi(), hull, width).max(c0 + 1);
                canvas.fill_row(row, c0, c1, 'h');
            }
        }
        // Selected arrivals.
        for &sel in &bin.selected {
            let col = scale(instance.item(sel).arrival(), hull, width).min(width.saturating_sub(1));
            canvas.mark(row, col, '▼');
        }
        // Supplier periods feeding off this bin.
        for g in decomp.groups.iter().filter(|g| g.supplier == bin.bin) {
            let tag = if g.is_consolidated() {
                "u(consolidated)"
            } else {
                "u(single)"
            };
            let label = format!("  ↳ {} for {} {:?}", tag, g.bin, g.members);
            let urow = canvas.blank_row(&label);
            let c0 = scale(g.supplier_period.lo(), hull, width);
            let c1 = scale(g.supplier_period.hi(), hull, width).max(c0 + 1);
            canvas.fill_row(urow, c0, c1, '◆');
        }
        let _ = k;
    }
    canvas.push_legend(
        "l l-subperiod   h h-subperiod   ▼ selected small arrival   ◆ supplier period   · usage",
    );
    canvas.with_axis(hull)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::prelude::*;
    use dbp_numeric::rat;

    fn demo() -> (Instance, PackingOutcome) {
        let inst = Instance::builder()
            .item(rat(9, 10), rat(0, 1), rat(4, 1))
            .item(rat(9, 10), rat(3, 1), rat(7, 1))
            .item(rat(2, 5), rat(1, 1), rat(3, 1))
            .build()
            .unwrap();
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        (inst, out)
    }

    #[test]
    fn timeline_contains_every_item_and_span() {
        let (inst, _) = demo();
        let s = timeline(&inst, 60);
        assert!(s.contains("r0"));
        assert!(s.contains("r1"));
        assert!(s.contains("r2"));
        assert!(s.contains("span"));
        assert!(s.contains('█'));
        // Axis endpoints.
        assert!(s.contains('0'));
        assert!(s.contains('7'));
    }

    #[test]
    fn usage_shows_v_and_w() {
        let (inst, out) = demo();
        let s = usage(&inst, &out, 60);
        assert!(s.contains("b0"));
        assert!(s.contains('█'), "W periods missing:\n{s}");
        assert!(s.contains('░'), "V periods missing:\n{s}");
        assert!(s.contains("E_k"));
    }

    #[test]
    fn subperiods_show_selection_and_supplier() {
        let (inst, out) = demo();
        let s = subperiods(&inst, &out, 60);
        assert!(s.contains('▼'), "selected arrival missing:\n{s}");
        assert!(s.contains('◆'), "supplier period missing:\n{s}");
        assert!(s.contains('l'), "l-subperiod missing:\n{s}");
    }

    #[test]
    fn renderers_are_deterministic() {
        let (inst, out) = demo();
        assert_eq!(timeline(&inst, 72), timeline(&inst, 72));
        assert_eq!(usage(&inst, &out, 72), usage(&inst, &out, 72));
        assert_eq!(subperiods(&inst, &out, 72), subperiods(&inst, &out, 72));
    }

    #[test]
    fn empty_instance_renders_gracefully() {
        let inst = Instance::new(vec![]).unwrap();
        assert!(timeline(&inst, 40).contains("empty"));
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        assert!(
            usage(&inst, &out, 40).contains("empty") || usage(&inst, &out, 40).contains("no bins")
        );
    }
}
