//! A labeled character grid for timeline drawings.

use dbp_numeric::Interval;

/// A left-labeled row-oriented character canvas.
///
/// ```
/// use dbp_viz::Canvas;
/// let mut c = Canvas::new(10);
/// let r = c.blank_row("row");
/// c.fill_row(r, 2, 6, '=');
/// c.mark(r, 0, '|');
/// let s = c.render();
/// assert!(s.contains("row"));
/// assert!(s.contains("|·====····"));
/// ```
pub struct Canvas {
    width: usize,
    labels: Vec<String>,
    rows: Vec<Vec<char>>,
    legends: Vec<String>,
}

impl Canvas {
    /// Creates an empty canvas of the given column width.
    pub fn new(width: usize) -> Canvas {
        Canvas {
            width: width.max(8),
            labels: Vec::new(),
            rows: Vec::new(),
            legends: Vec::new(),
        }
    }

    /// Appends a row filled with `·`, returning its index.
    pub fn blank_row(&mut self, label: &str) -> usize {
        self.labels.push(label.to_string());
        self.rows.push(vec!['·'; self.width]);
        self.rows.len() - 1
    }

    /// Fills columns `[c0, c1)` of `row` with `ch` (clamped).
    pub fn fill_row(&mut self, row: usize, c0: usize, c1: usize, ch: char) {
        let c1 = c1.min(self.width);
        for c in c0.min(self.width)..c1 {
            self.rows[row][c] = ch;
        }
    }

    /// Draws a single marker (overwrites).
    pub fn mark(&mut self, row: usize, col: usize, ch: char) {
        if col < self.width {
            self.rows[row][col] = ch;
        }
    }

    /// Appends a labeled segment row `[c0, c1)` with explicit end
    /// caps, e.g. `[────)`.
    pub fn segment(
        &mut self,
        label: &str,
        c0: usize,
        c1: usize,
        body: char,
        open: char,
        close: char,
    ) {
        let row = self.blank_row(label);
        self.fill_row(row, c0, c1, body);
        self.mark(row, c0, open);
        if c1 > c0 {
            self.mark(row, c1.min(self.width) - 1, close);
        }
    }

    /// Adds a legend line printed under the grid.
    pub fn push_legend(&mut self, legend: &str) {
        self.legends.push(legend.to_string());
    }

    /// Renders with a time axis for the given hull.
    pub fn with_axis(mut self, hull: Interval) -> String {
        let axis_label = format!("t ∈ [{}, {})", hull.lo(), hull.hi());
        let row = self.blank_row("");
        self.fill_row(row, 0, self.width, '─');
        self.mark(row, 0, '0');
        self.legends.insert(0, axis_label);
        self.render()
    }

    /// Renders the canvas.
    pub fn render(&self) -> String {
        let label_width = self
            .labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (label, row) in self.labels.iter().zip(&self.rows) {
            let pad = label_width - label.chars().count();
            out.push_str(label);
            out.extend(std::iter::repeat_n(' ', pad + 1));
            out.extend(row.iter());
            out.push('\n');
        }
        for legend in &self.legends {
            out.push_str(legend);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_numeric::iv;

    #[test]
    fn rows_align_under_longest_label() {
        let mut c = Canvas::new(12);
        let a = c.blank_row("x");
        let b = c.blank_row("longer-label");
        c.fill_row(a, 0, 3, '#');
        c.fill_row(b, 3, 6, '%');
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // Both grids start at the same column (count chars, not
        // bytes — the blank fill '·' is multi-byte).
        let col_a = lines[0].chars().position(|ch| ch == '#').unwrap();
        let col_b = lines[1].chars().position(|ch| ch == '%').unwrap();
        assert_eq!(col_b - col_a, 3);
    }

    #[test]
    fn fills_clamp_to_width() {
        let mut c = Canvas::new(8);
        let r = c.blank_row("r");
        c.fill_row(r, 5, 100, '#');
        c.mark(r, 200, '!'); // silently ignored
        let s = c.render();
        assert!(s.contains("·····###"));
        assert!(!s.contains('!'));
    }

    #[test]
    fn segment_has_caps() {
        let mut c = Canvas::new(10);
        c.segment("seg", 1, 6, '─', '[', ')');
        let s = c.render();
        assert!(s.contains("[───)"), "{s}");
    }

    #[test]
    fn axis_and_legend_are_rendered() {
        let mut c = Canvas::new(10);
        c.blank_row("row");
        c.push_legend("legend text");
        let s = c.with_axis(iv(2, 9));
        assert!(s.contains("t ∈ [2, 9)"));
        assert!(s.contains("legend text"));
        assert!(s.contains('─'));
    }

    #[test]
    fn minimum_width_enforced() {
        let c = Canvas::new(1);
        assert_eq!(c.width, 8);
    }
}
