//! Property tests of the fleet metric fold (DESIGN.md, "Live
//! telemetry"): a fleet's merged registry is a *lawful* fold of its
//! shards' stream telemetry.
//!
//! For the same routed event stream, across shard counts 1/2/8 and
//! all three backends (Exact/Tick/Auto):
//!
//! * the fleet-merged registry snapshot is **byte-identical** to
//!   merging standalone per-shard session registries — parallel
//!   dispatch and merge order leave no trace;
//! * a single-shard fleet's registry is byte-identical to the plain
//!   single-session registry for the same instance;
//! * the partition-independent core (event counts, `load`, and the
//!   exact `vol` total) is identical no matter how the stream is
//!   sharded or which engine ran it.

use dbp_core::session::{Backend, Event, Session, TickGrid};
use dbp_core::{FirstFit, ItemId};
use dbp_numeric::{rat, Rational};
use dbp_obs::{telemetry_registry, MetricsRegistry};
use dbp_par::Fleet;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const BACKENDS: [Backend; 3] = [Backend::Exact, Backend::Tick, Backend::Auto];

/// Grid every generated event fits: integer times, eighth sizes.
const GRID: TickGrid = TickGrid {
    time_scale: 1,
    size_scale: 8,
};

/// Strategy: a well-formed event stream on the integer grid (so the
/// Tick backend can run it), time-sorted with departures before
/// arrivals at ties, each item departing strictly after it arrives.
fn stream_strategy() -> impl Strategy<Value = Vec<Event>> {
    let item = (1i128..=8, 0i128..=30, 1i128..=12);
    prop::collection::vec(item, 0..40).prop_map(|specs| {
        let mut events: Vec<(Rational, bool, Event)> = Vec::new();
        for (i, (eighths, arr, dur)) in specs.into_iter().enumerate() {
            let id = ItemId(i as u32);
            let (t0, t1) = (rat(arr, 1), rat(arr + dur, 1));
            events.push((
                t0,
                true,
                Event::Arrive {
                    id,
                    size: rat(eighths, 8),
                    time: t0,
                },
            ));
            events.push((t1, false, Event::Depart { id, time: t1 }));
        }
        // Canonical order: by time, departures before arrivals.
        events.sort_by_key(|(t, is_arrival, _)| (*t, *is_arrival));
        events.into_iter().map(|(_, _, e)| e).collect()
    })
}

/// Routes by item id, the CLI's default sharding.
fn route(event: &Event, shards: usize) -> usize {
    event.id().0 as usize % shards
}

fn build_session(backend: Backend) -> Session<'static> {
    Session::builder(FirstFit::new())
        .backend(backend)
        .grid(GRID)
        .telemetry()
        .build()
        .expect("gridded FirstFit builds on every backend")
}

/// The merged registry of a fleet of `shards` sessions on `backend`,
/// after absorbing the whole stream.
fn fleet_registry(events: &[Event], shards: usize, backend: Backend) -> MetricsRegistry {
    let mut fleet = Fleet::new((0..shards).map(|_| build_session(backend)).collect());
    let routed: Vec<(usize, Event)> = events.iter().map(|e| (route(e, shards), *e)).collect();
    fleet.dispatch(&routed).expect("generated stream is valid");
    fleet.merged_metrics()
}

/// Merging standalone per-shard sessions by hand — the law the fleet
/// fold must reproduce byte for byte.
fn solo_fold(events: &[Event], shards: usize, backend: Backend) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for s in 0..shards {
        let mut solo = build_session(backend);
        for event in events.iter().filter(|e| route(e, shards) == s) {
            solo.apply(event).expect("generated stream is valid");
        }
        merged.merge(&telemetry_registry(&solo.metrics()));
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fleet-merged metrics equal single-session metrics: byte-
    /// identical to the standalone fold per configuration, and for
    /// one shard to the plain session registry, across shard counts
    /// 1/2/8 and backends Exact/Tick/Auto.
    #[test]
    fn fleet_fold_is_lawful_across_shards_and_backends(events in stream_strategy()) {
        // The single-session reference registry (exact backend).
        let mut single = build_session(Backend::Exact);
        single.ingest(&events).expect("generated stream is valid");
        let single_snapshot = telemetry_registry(&single.metrics()).to_json_pretty();

        let mut cores: Vec<String> = Vec::new();
        for backend in BACKENDS {
            for shards in SHARD_COUNTS {
                let merged = fleet_registry(&events, shards, backend);
                // Law 1: the parallel fold leaves no trace.
                prop_assert_eq!(
                    merged.to_json_pretty(),
                    solo_fold(&events, shards, backend).to_json_pretty(),
                    "fold mismatch: {:?} × {} shards", backend, shards
                );
                // Law 2: one shard ≡ the single session, bit for bit.
                if shards == 1 {
                    prop_assert_eq!(
                        merged.to_json_pretty(),
                        single_snapshot.clone(),
                        "single-shard mismatch on {:?}", backend
                    );
                }
                // Law 3 data: the partition-independent core.
                cores.push(format!(
                    "arrivals={} departures={} events={} active={} load={:?} vol={:?}",
                    merged.counter("arrivals"),
                    merged.counter("departures"),
                    merged.counter("events"),
                    merged.counter("active_items"),
                    merged.total("load"),
                    merged.total("vol"),
                ));
            }
        }
        // Law 3: the core is invariant across all 9 configurations.
        prop_assert!(
            cores.windows(2).all(|w| w[0] == w[1]),
            "partition-variant core: {cores:#?}"
        );
    }
}
