//! Sharded multi-tenant streaming: a fleet of independent sessions.
//!
//! A [`Fleet`] owns `N` independent [`Session`]s (shards) — e.g. one
//! per tenant, availability zone, or server pool — and dispatches
//! batched events to them on the crate's scoped worker threads. Each
//! shard's events are always applied **by a single worker, in batch
//! order**, so every shard's packing is exactly what a standalone
//! session fed the same subsequence would produce: parallelism never
//! changes results, only wall-clock time.
//!
//! Work distribution is the same fetch-add claim queue as
//! [`crate::par_map`]: workers claim whole shard batches, so a fleet
//! with a few hot shards and many idle ones load-balances without any
//! cross-shard locking on the hot path.
//!
//! ```
//! use dbp_core::prelude::*;
//! use dbp_core::FirstFit;
//! use dbp_numeric::rat;
//! use dbp_par::Fleet;
//!
//! let mut fleet = Fleet::homogeneous(2, || FirstFit::new()).unwrap();
//! fleet
//!     .dispatch(&[
//!         (0, Event::Arrive { id: ItemId(0), size: rat(1, 2), time: rat(0, 1) }),
//!         (1, Event::Arrive { id: ItemId(0), size: rat(1, 3), time: rat(0, 1) }),
//!         (0, Event::Depart { id: ItemId(0), time: rat(1, 1) }),
//!         (1, Event::Depart { id: ItemId(0), time: rat(2, 1) }),
//!     ])
//!     .unwrap();
//! let outcomes = fleet.finish().unwrap();
//! assert_eq!(outcomes[0].total_usage(), rat(1, 1));
//! assert_eq!(outcomes[1].total_usage(), rat(2, 1));
//! ```

use dbp_core::session::{Event, Session, SessionError, SessionMetrics};
use dbp_core::{BinId, PackingAlgorithm, PackingOutcome};
use dbp_numeric::Rational;
use dbp_obs::{telemetry_registry, MetricsRegistry};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A rejected event, located by shard and by its index in the
/// dispatched batch.
#[derive(Debug)]
pub struct FleetError {
    /// Shard whose session rejected the event.
    pub shard: usize,
    /// Index of the offending event in the dispatched slice.
    pub index: usize,
    /// The session's typed rejection.
    pub error: SessionError,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} rejected event #{}: {}",
            self.shard, self.index, self.error
        )
    }
}

impl std::error::Error for FleetError {}

/// `N` independent streaming sessions driven as one unit.
///
/// Shards are fully isolated: each has its own algorithm state, bins,
/// clock, and journal. The fleet adds routing ([`Fleet::dispatch`]
/// (Self::dispatch) takes `(shard, event)` pairs), parallel batch
/// application, aggregated [`metrics`](Self::metrics), and a
/// collective [`finish`](Self::finish).
pub struct Fleet<'s> {
    shards: Vec<Session<'s>>,
    /// Wall-clock dispatch statistics (worker batches, dispatch
    /// latency). Kept separate from `merged_metrics`, which must
    /// stay deterministic.
    runtime: MetricsRegistry,
}

impl fmt::Debug for Fleet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl<'s> Fleet<'s> {
    /// Assembles a fleet from already-built sessions (shard `i` is
    /// `sessions[i]`). Use this for heterogeneous fleets — different
    /// algorithms, backends, or grids per shard.
    pub fn new(sessions: Vec<Session<'s>>) -> Fleet<'s> {
        Fleet {
            shards: sessions,
            runtime: MetricsRegistry::new(),
        }
    }

    /// Builds `n` shards running identical fresh algorithms with
    /// default session settings.
    pub fn homogeneous<A, F>(n: usize, mut make: F) -> Result<Fleet<'s>, SessionError>
    where
        A: PackingAlgorithm + 's,
        F: FnMut() -> A,
    {
        let shards = (0..n)
            .map(|_| Session::builder(make()).build())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Fleet::new(shards))
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` for a fleet with no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Read access to one shard's session.
    ///
    /// # Panics
    /// If `shard` is out of range.
    pub fn session(&self, shard: usize) -> &Session<'s> {
        &self.shards[shard]
    }

    /// Mutable access to one shard's session, for driving a single
    /// shard directly (`arrive`/`depart`/`snapshot`).
    ///
    /// # Panics
    /// If `shard` is out of range.
    pub fn session_mut(&mut self, shard: usize) -> &mut Session<'s> {
        &mut self.shards[shard]
    }

    /// Applies a batch of routed events, in parallel across shards.
    ///
    /// Events for the same shard are applied in slice order by a
    /// single worker; events for different shards are independent, so
    /// their relative order is irrelevant. A shard that rejects an
    /// event stops processing *its* remaining events (the rejection
    /// leaves that session unchanged, like any [`Session`] error);
    /// other shards are unaffected and keep going. Errors come back
    /// sorted by shard id, so failures are deterministic too.
    ///
    /// Routing is validated up front: an out-of-range shard id
    /// ([`SessionError::UnknownShard`]) aborts the whole dispatch
    /// before *any* event is applied, so a typo'd route never leaves
    /// the batch half-ingested.
    pub fn dispatch(&mut self, events: &[(usize, Event)]) -> Result<(), Vec<FleetError>> {
        self.dispatch_inner(events, None)
    }

    /// Shared dispatch machinery: when `placements` is given, every
    /// applied event's returned bin is recorded at its batch index.
    fn dispatch_inner(
        &mut self,
        events: &[(usize, Event)],
        placements: Option<&Mutex<Vec<BinId>>>,
    ) -> Result<(), Vec<FleetError>> {
        // Validate routing first: a typo'd shard id should not leave
        // half the batch applied.
        let routing: Vec<FleetError> = events
            .iter()
            .enumerate()
            .filter(|(_, (shard, _))| *shard >= self.shards.len())
            .map(|(index, (shard, _))| FleetError {
                shard: *shard,
                index,
                error: SessionError::UnknownShard {
                    shard: *shard,
                    shards: self.shards.len(),
                },
            })
            .collect();
        if !routing.is_empty() {
            return Err(routing);
        }

        // Group per shard: (shard, ordered event indices).
        let mut batches: Vec<(usize, Vec<usize>)> = Vec::new();
        {
            let mut slot: Vec<Option<usize>> = vec![None; self.shards.len()];
            for (index, (shard, _)) in events.iter().enumerate() {
                match slot[*shard] {
                    Some(b) => batches[b].1.push(index),
                    None => {
                        slot[*shard] = Some(batches.len());
                        batches.push((*shard, vec![index]));
                    }
                }
            }
        }

        // One mutex per *touched* shard. Uncontended by construction —
        // every shard batch is claimed exactly once — the lock is just
        // the safe handoff of `&mut Session` to whichever worker
        // claimed it.
        let mut errors: Vec<FleetError> = Vec::new();
        let mut batch_stats: Vec<(usize, u128)> = Vec::new();
        let dispatch_started = Instant::now();
        {
            let sessions: Vec<Mutex<(&mut Session<'s>, Vec<usize>)>> = {
                let mut picked: Vec<(usize, Vec<usize>)> = batches;
                picked.sort_unstable_by_key(|(shard, _)| *shard);
                let mut out = Vec::with_capacity(picked.len());
                let mut rest = self.shards.as_mut_slice();
                let mut offset = 0usize;
                for (shard, indices) in picked {
                    let (_, tail) = rest.split_at_mut(shard - offset);
                    let (head, tail) = tail.split_at_mut(1);
                    out.push(Mutex::new((&mut head[0], indices)));
                    rest = tail;
                    offset = shard + 1;
                }
                out
            };

            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, sessions.len().max(1));
            let next = AtomicUsize::new(0);
            let sink = Mutex::new(&mut errors);
            let stats = Mutex::new(&mut batch_stats);

            crossbeam::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= sessions.len() {
                            break;
                        }
                        let mut guard = sessions[b].lock().unwrap();
                        let (ref mut session, ref indices) = *guard;
                        let started = Instant::now();
                        let shard_errors: Vec<FleetError> =
                            run_shard(session, indices, events, placements);
                        let busy_ns = started.elapsed().as_nanos();
                        stats.lock().unwrap().push((indices.len(), busy_ns));
                        if !shard_errors.is_empty() {
                            sink.lock().unwrap().extend(shard_errors);
                        }
                    });
                }
            })
            .expect("fleet worker panicked");
        }

        // Absorb the worker reports (what `par_map_report` returns
        // standalone) into the fleet's runtime registry.
        self.runtime.inc("dispatches");
        self.runtime
            .inc_by("dispatched_events", events.len() as u64);
        self.runtime.observe(
            "dispatch_wall_ns",
            dispatch_started.elapsed().as_nanos() as f64,
        );
        for (batch_events, busy_ns) in batch_stats {
            self.runtime
                .observe("shard_batch_events", batch_events as f64);
            self.runtime.observe("shard_batch_busy_ns", busy_ns as f64);
        }

        if errors.is_empty() {
            Ok(())
        } else {
            errors.sort_by_key(|e| (e.shard, e.index));
            Err(errors)
        }
    }

    /// Routes a flat event stream through `router` and dispatches it:
    /// `router` maps each event to its shard.
    pub fn dispatch_routed<F>(&mut self, events: &[Event], router: F) -> Result<(), Vec<FleetError>>
    where
        F: Fn(&Event) -> usize,
    {
        let routed: Vec<(usize, Event)> = events.iter().map(|e| (router(e), *e)).collect();
        self.dispatch(&routed)
    }

    /// Like [`dispatch`](Self::dispatch), but returns every event's
    /// placement decision: `result[i]` is the [`BinId`] the session
    /// returned for `events[i]` — the assigned bin for an arrival, the
    /// (possibly closed) bin the item vacated for a departure.
    ///
    /// Bin ids are **shard-local**: shard 0's bin 0 and shard 1's
    /// bin 0 are different physical bins. Callers multiplexing shards
    /// behind one namespace (e.g. a server answering per-event
    /// placement frames) pair each id with the shard they routed to.
    ///
    /// Error semantics match [`dispatch`](Self::dispatch) exactly: on
    /// `Err`, each failing shard applied the events before its
    /// reported index and nothing after, and no placements are
    /// returned.
    pub fn dispatch_with_bins(
        &mut self,
        events: &[(usize, Event)],
    ) -> Result<Vec<BinId>, Vec<FleetError>> {
        let placements = Mutex::new(vec![BinId(0); events.len()]);
        self.dispatch_inner(events, Some(&placements))?;
        Ok(placements.into_inner().unwrap())
    }

    /// Live per-shard metrics, indexed by shard.
    pub fn metrics(&self) -> Vec<SessionMetrics> {
        self.shards.iter().map(Session::metrics).collect()
    }

    /// Folds every shard's live [`SessionMetrics`] into one
    /// fleet-wide view, under the natural per-field law: event
    /// tallies, open bins, load, and usage add; `now` takes the
    /// furthest shard clock; lifetime extremes take min/max;
    /// `vol`/`span` add when every shard tracks them (any shard
    /// without telemetry makes them `None`, matching a single
    /// session without telemetry). `peak_open_bins` adds — the sum
    /// of per-shard peaks is the honest fleet-wide capacity bound,
    /// since shards pack independently and their peaks need not
    /// coincide in time.
    ///
    /// Deterministic like [`merged_metrics`](Self::merged_metrics):
    /// depends only on what each shard absorbed, not on scheduling.
    pub fn folded_metrics(&self) -> SessionMetrics {
        let per_shard = self.metrics();
        let seeded = !per_shard.is_empty();
        let mut folded = SessionMetrics {
            now: None,
            events: 0,
            arrivals: 0,
            departures: 0,
            open_bins: 0,
            active_items: 0,
            bins_opened: 0,
            peak_open_bins: 0,
            load: Rational::ZERO,
            usage_time: Rational::ZERO,
            vol: seeded.then_some(Rational::ZERO),
            span: seeded.then_some(Rational::ZERO),
            min_lifetime: None,
            max_lifetime: None,
        };
        let add = |a: Option<Rational>, b: Option<Rational>| match (a, b) {
            (Some(x), Some(y)) => Some(x + y),
            _ => None,
        };
        for m in &per_shard {
            folded.now = match (folded.now, m.now) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            folded.events += m.events;
            folded.arrivals += m.arrivals;
            folded.departures += m.departures;
            folded.open_bins += m.open_bins;
            folded.active_items += m.active_items;
            folded.bins_opened += m.bins_opened;
            folded.peak_open_bins += m.peak_open_bins;
            folded.load += m.load;
            folded.usage_time += m.usage_time;
            folded.vol = add(folded.vol, m.vol);
            folded.span = add(folded.span, m.span);
            folded.min_lifetime = match (folded.min_lifetime, m.min_lifetime) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            folded.max_lifetime = match (folded.max_lifetime, m.max_lifetime) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        folded
    }

    /// Folds every shard's stream-derived metrics into one
    /// fleet-wide [`MetricsRegistry`] via
    /// [`telemetry_registry`] + [`MetricsRegistry::merge`].
    ///
    /// The result is **deterministic**: it depends only on the events
    /// each shard has absorbed, never on worker scheduling or merge
    /// order — counters and exact totals add, the `peak_open_bins`
    /// histogram takes one sample per shard. For a single-shard
    /// fleet it is exactly the standalone session's registry; for `N`
    /// shards it equals merging the `N` standalone registries in any
    /// order. The `vol`/`span` totals (present when the shard
    /// sessions enable `SessionBuilder::telemetry`) sum the
    /// per-shard lower bounds, so `usage_time / max(vol, span)` on
    /// the merged registry (see `dbp_obs::set_ratio_gauge`) gauges
    /// the fleet against the sum of per-shard optima — the right
    /// baseline for a fleet that packs shards independently.
    ///
    /// Wall-clock dispatch statistics live in
    /// [`runtime_metrics`](Self::runtime_metrics) instead, precisely
    /// because they are *not* deterministic.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for shard in &self.shards {
            merged.merge(&telemetry_registry(&shard.metrics()));
        }
        merged
    }

    /// Wall-clock dispatch statistics: counters `dispatches` /
    /// `dispatched_events`, histograms `dispatch_wall_ns`,
    /// `shard_batch_events`, and `shard_batch_busy_ns` (one sample
    /// per claimed shard batch — the fleet-side analogue of
    /// [`crate::par_map_report`]'s `WorkerReport`).
    pub fn runtime_metrics(&self) -> &MetricsRegistry {
        &self.runtime
    }

    /// Finishes every shard, returning per-shard outcomes in shard
    /// order. The first shard still holding active items fails the
    /// whole fleet (matching [`Session::finish`]).
    pub fn finish(self) -> Result<Vec<PackingOutcome>, FleetError> {
        self.shards
            .into_iter()
            .enumerate()
            .map(|(shard, session)| {
                session.finish().map_err(|error| FleetError {
                    shard,
                    index: 0,
                    error,
                })
            })
            .collect()
    }
}

/// Applies one shard's events in order, stopping at the first
/// rejection. When `placements` is given, each applied event's bin
/// lands at its batch index — a single lock per shard batch, not per
/// event, keeps the hot path cheap.
fn run_shard(
    session: &mut Session<'_>,
    indices: &[usize],
    events: &[(usize, Event)],
    placements: Option<&Mutex<Vec<BinId>>>,
) -> Vec<FleetError> {
    let mut local: Vec<BinId> = Vec::new();
    if placements.is_some() {
        local.reserve(indices.len());
    }
    for (n, &index) in indices.iter().enumerate() {
        let (shard, ref event) = events[index];
        match session.apply(event) {
            Ok(bin) => {
                if placements.is_some() {
                    local.push(bin);
                }
            }
            Err(error) => {
                if let Some(sink) = placements {
                    flush_placements(sink, &indices[..n], &local);
                }
                return vec![FleetError {
                    shard,
                    index,
                    error,
                }];
            }
        }
    }
    if let Some(sink) = placements {
        flush_placements(sink, indices, &local);
    }
    Vec::new()
}

fn flush_placements(sink: &Mutex<Vec<BinId>>, indices: &[usize], bins: &[BinId]) {
    let mut out = sink.lock().unwrap();
    for (&index, &bin) in indices.iter().zip(bins) {
        out[index] = bin;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::session::Backend;
    use dbp_core::{FirstFit, ItemId, NextFit, Runner};
    use dbp_numeric::rat;

    fn arrive(id: u32, num: i128, den: i128, t: i128) -> Event {
        Event::Arrive {
            id: ItemId(id),
            size: rat(num, den),
            time: rat(t, 1),
        }
    }

    fn depart(id: u32, t: i128) -> Event {
        Event::Depart {
            id: ItemId(id),
            time: rat(t, 1),
        }
    }

    /// A deterministic multi-shard stream: shard s gets items with
    /// sizes cycling 1/2, 1/3, 1/4 and lifetimes staggered by shard.
    fn stream(shards: usize, per_shard: u32) -> Vec<(usize, Event)> {
        let mut events = Vec::new();
        for s in 0..shards {
            for i in 0..per_shard {
                let t = i as i128;
                events.push((s, arrive(i, 1, 2 + ((i as i128 + s as i128) % 3), t)));
                events.push((s, depart(i, t + 2 + s as i128)));
            }
        }
        // Per shard the order must stay time-sorted; across shards we
        // interleave to exercise the claim queue.
        events.sort_by_key(|(shard, e)| (e.time(), *shard));
        events
    }

    #[test]
    fn fleet_matches_standalone_sessions() {
        let shards = 4;
        let events = stream(shards, 24);
        let mut fleet = Fleet::homogeneous(shards, FirstFit::new).unwrap();
        fleet.dispatch(&events).unwrap();
        let outcomes = fleet.finish().unwrap();

        for (s, outcome) in outcomes.iter().enumerate() {
            let mut solo = Session::builder(FirstFit::new()).build().unwrap();
            for (shard, event) in &events {
                if *shard == s {
                    solo.apply(event).unwrap();
                }
            }
            assert_eq!(outcome, &solo.finish().unwrap(), "shard {s}");
        }
    }

    #[test]
    fn dispatch_is_deterministic_across_repeats() {
        let events = stream(8, 16);
        let run = || {
            let mut fleet = Fleet::homogeneous(8, FirstFit::new).unwrap();
            fleet.dispatch(&events).unwrap();
            fleet.finish().unwrap()
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn heterogeneous_shards_keep_their_algorithms() {
        let mut fleet = Fleet::new(vec![
            Session::builder(FirstFit::new()).build().unwrap(),
            Session::builder(NextFit::new()).build().unwrap(),
        ]);
        assert_eq!(fleet.session(0).algorithm(), "FirstFit");
        assert_eq!(fleet.session(1).algorithm(), "NextFit");
        fleet
            .dispatch(&[
                (0, arrive(0, 1, 2, 0)),
                (1, arrive(0, 1, 2, 0)),
                (0, depart(0, 3)),
                (1, depart(0, 3)),
            ])
            .unwrap();
        let m = fleet.metrics();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].events, 2);
        assert_eq!(m[1].events, 2);
        fleet.finish().unwrap();
    }

    #[test]
    fn bad_routing_aborts_before_any_event_applies() {
        let mut fleet = Fleet::homogeneous(2, FirstFit::new).unwrap();
        let errs = fleet
            .dispatch(&[(0, arrive(0, 1, 2, 0)), (7, arrive(1, 1, 2, 0))])
            .unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].shard, 7);
        assert_eq!(errs[0].index, 1);
        assert!(matches!(
            errs[0].error,
            SessionError::UnknownShard {
                shard: 7,
                shards: 2
            }
        ));
        // Nothing was applied, including to the valid shard 0.
        assert_eq!(fleet.metrics()[0].events, 0);
    }

    #[test]
    fn shard_failure_is_isolated_and_located() {
        let mut fleet = Fleet::homogeneous(3, FirstFit::new).unwrap();
        let errs = fleet
            .dispatch(&[
                (0, arrive(0, 1, 2, 0)),
                (1, arrive(0, 1, 2, 5)),
                (1, arrive(1, 1, 2, 3)), // time regression on shard 1
                (1, arrive(2, 1, 2, 9)), // never applied
                (2, arrive(0, 1, 2, 0)),
            ])
            .unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!((errs[0].shard, errs[0].index), (1, 2));
        // Healthy shards absorbed their events; the failed shard kept
        // its pre-rejection state and stopped there.
        let m = fleet.metrics();
        assert_eq!(m[0].events, 1);
        assert_eq!(m[1].events, 1);
        assert_eq!(m[2].events, 1);
    }

    #[test]
    fn routed_dispatch_by_item_id() {
        let mut fleet = Fleet::homogeneous(2, FirstFit::new).unwrap();
        let events = vec![
            arrive(0, 1, 2, 0),
            arrive(1, 1, 2, 0),
            depart(0, 1),
            depart(1, 2),
        ];
        fleet
            .dispatch_routed(&events, |e| e.id().0 as usize % 2)
            .unwrap();
        let outcomes = fleet.finish().unwrap();
        assert_eq!(outcomes[0].total_usage(), rat(1, 1));
        assert_eq!(outcomes[1].total_usage(), rat(2, 1));
    }

    #[test]
    fn tick_shards_match_exact_shards() {
        // Integer-friendly stream: Auto sessions engage the tick path
        // and must agree with Exact sessions shard for shard.
        let events = stream(3, 12);
        let mut auto = Fleet::homogeneous(3, FirstFit::new).unwrap();
        let mut exact = Fleet::new(
            (0..3)
                .map(|_| {
                    Session::builder(FirstFit::new())
                        .backend(Backend::Exact)
                        .build()
                        .unwrap()
                })
                .collect(),
        );
        auto.dispatch(&events).unwrap();
        exact.dispatch(&events).unwrap();
        assert_eq!(auto.finish().unwrap(), exact.finish().unwrap());
    }

    #[test]
    fn merged_metrics_fold_matches_standalone_registries() {
        let shards = 3;
        let events = stream(shards, 10);
        let mut fleet = Fleet::new(
            (0..shards)
                .map(|_| {
                    Session::builder(FirstFit::new())
                        .telemetry()
                        .build()
                        .unwrap()
                })
                .collect(),
        );
        fleet.dispatch(&events).unwrap();
        let merged = fleet.merged_metrics();

        // The fold equals merging standalone per-shard registries.
        let mut expected = dbp_obs::MetricsRegistry::new();
        for s in 0..shards {
            let mut solo = Session::builder(FirstFit::new())
                .telemetry()
                .build()
                .unwrap();
            for (shard, event) in &events {
                if *shard == s {
                    solo.apply(event).unwrap();
                }
            }
            expected.merge(&dbp_obs::telemetry_registry(&solo.metrics()));
        }
        assert_eq!(merged.to_json_pretty(), expected.to_json_pretty());

        // Additive sections really did add across shards.
        assert_eq!(merged.counter("events"), events.len() as u64);
        assert!(merged.total("vol").unwrap().is_positive());
        assert_eq!(
            merged.histogram("peak_open_bins").unwrap().count(),
            shards as u64
        );
        // Dispatch statistics live in the runtime registry only.
        assert_eq!(fleet.runtime_metrics().counter("dispatches"), 1);
        assert_eq!(
            fleet.runtime_metrics().counter("dispatched_events"),
            events.len() as u64
        );
        assert_eq!(merged.counter("dispatches"), 0);
        fleet.finish().unwrap();
    }

    #[test]
    fn dispatch_with_bins_matches_standalone_placements() {
        let shards = 3;
        let events = stream(shards, 16);
        let mut fleet = Fleet::homogeneous(shards, FirstFit::new).unwrap();
        let bins = fleet.dispatch_with_bins(&events).unwrap();
        assert_eq!(bins.len(), events.len());

        // Each shard's placement sequence equals a standalone session
        // fed the same subsequence.
        for s in 0..shards {
            let mut solo = Session::builder(FirstFit::new()).build().unwrap();
            for (i, (shard, event)) in events.iter().enumerate() {
                if *shard == s {
                    assert_eq!(solo.apply(event).unwrap(), bins[i], "event {i}");
                }
            }
        }
        fleet.finish().unwrap();
    }

    #[test]
    fn dispatch_with_bins_error_semantics_match_dispatch() {
        let batch = vec![
            (0usize, arrive(0, 1, 2, 0)),
            (1, arrive(0, 1, 2, 5)),
            (1, arrive(1, 1, 2, 3)), // time regression on shard 1
            (2, arrive(0, 1, 2, 0)),
        ];
        let mut fleet = Fleet::homogeneous(3, FirstFit::new).unwrap();
        let errs = fleet.dispatch_with_bins(&batch).unwrap_err();
        assert_eq!((errs[0].shard, errs[0].index), (1, 2));
        // Same partial-application behavior as `dispatch`.
        let m = fleet.metrics();
        assert_eq!((m[0].events, m[1].events, m[2].events), (1, 1, 1));
    }

    #[test]
    fn folded_metrics_aggregate_the_shard_views() {
        let shards = 3;
        let events = stream(shards, 10);
        let mut fleet = Fleet::new(
            (0..shards)
                .map(|_| {
                    Session::builder(FirstFit::new())
                        .telemetry()
                        .build()
                        .unwrap()
                })
                .collect::<Vec<_>>(),
        );
        fleet.dispatch(&events).unwrap();
        let folded = fleet.folded_metrics();
        let per_shard = fleet.metrics();

        assert_eq!(folded.events as usize, events.len());
        assert_eq!(
            folded.arrivals,
            per_shard.iter().map(|m| m.arrivals).sum::<u64>()
        );
        assert_eq!(
            folded.usage_time,
            per_shard
                .iter()
                .fold(rat(0, 1), |acc, m| acc + m.usage_time)
        );
        assert_eq!(folded.now, per_shard.iter().filter_map(|m| m.now).max());
        // Telemetry on every shard => folded vol/span are summed.
        assert_eq!(
            folded.vol.unwrap(),
            per_shard
                .iter()
                .fold(rat(0, 1), |acc, m| acc + m.vol.unwrap())
        );

        // An empty fleet folds to the zero view with no telemetry.
        let empty = Fleet::homogeneous(0, FirstFit::new).unwrap();
        let zero = empty.folded_metrics();
        assert_eq!(zero.events, 0);
        assert_eq!(zero.vol, None);
        fleet.finish().unwrap();
    }

    #[test]
    fn empty_fleet_and_empty_dispatch() {
        let mut none = Fleet::homogeneous(0, FirstFit::new).unwrap();
        assert!(none.is_empty());
        none.dispatch(&[]).unwrap();
        assert!(none.finish().unwrap().is_empty());

        let mut idle = Fleet::homogeneous(2, FirstFit::new).unwrap();
        idle.dispatch(&[]).unwrap();
        let outcomes = idle.finish().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.bins().is_empty()));
    }

    #[test]
    fn single_shard_fleet_equals_batch_runner() {
        use dbp_core::Instance;
        let instance = Instance::builder()
            .item(rat(1, 2), rat(0, 1), rat(2, 1))
            .item(rat(2, 3), rat(1, 1), rat(3, 1))
            .item(rat(1, 4), rat(1, 1), rat(4, 1))
            .build()
            .unwrap();
        let schedule = dbp_core::event_schedule(&instance);
        let events: Vec<(usize, Event)> = schedule
            .iter()
            .map(|entry| {
                let item = instance.item(entry.payload);
                (
                    0usize,
                    match entry.class {
                        dbp_simcore::EventClass::Departure => Event::Depart {
                            id: item.id,
                            time: entry.time,
                        },
                        _ => Event::Arrive {
                            id: item.id,
                            size: item.size,
                            time: entry.time,
                        },
                    },
                )
            })
            .collect();
        let mut fleet = Fleet::homogeneous(1, FirstFit::new).unwrap();
        fleet.dispatch(&events).unwrap();
        let fleet_outcome = fleet.finish().unwrap().remove(0);
        let batch = Runner::new(&instance).run(&mut FirstFit::new()).unwrap();
        assert_eq!(fleet_outcome, batch);
    }
}
