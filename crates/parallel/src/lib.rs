#![warn(missing_docs)]

//! # `dbp-par` — deterministic parallel sweeps
//!
//! The experiment harness evaluates many independent `(instance,
//! algorithm)` cells. This crate provides a small, dependency-light
//! parallel map built on `crossbeam`'s scoped threads and an atomic
//! work index (the classic fetch-add work queue from *Rust Atomics
//! and Locks*, claiming short runs of eight indices per RMW to keep
//! contention on the shared counter low):
//!
//! * results come back **in input order**, independent of thread
//!   count or scheduling — experiments are reproducible;
//! * worker panics propagate to the caller (no silently missing
//!   cells);
//! * zero allocation per task beyond the output slot.
//!
//! ```
//! let squares = dbp_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! The [`fleet`] module extends the same worker model from
//! independent *cells* to independent *streaming sessions*: a sharded
//! [`Fleet`] of `dbp-core` sessions fed batched events with
//! deterministic per-shard results.

pub mod fleet;

pub use fleet::{Fleet, FleetError};

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many indices one fetch-add claims. Claiming short runs instead
/// of single items divides the atomic RMW traffic (and the cacheline
/// ping-pong on `next`) by the run length while keeping load balance:
/// with the experiment sweeps' cell counts (hundreds to thousands) a
/// straggler can hold at most `CLAIM_RUN - 1` extra items. Workers
/// still claim *indices*, so results scatter back in input order
/// exactly as before.
const CLAIM_RUN: usize = 8;

/// Maps `f` over `items` in parallel, returning results in input
/// order. Uses up to `threads` workers.
///
/// # Panics
/// Re-raises the first panic from any worker.
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    // Output slots, written exactly once each by whichever worker
    // claims the index. `Option<R>` keeps initialization safe without
    // `unsafe`; the mutex-free claim protocol is the atomic index.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);

    // Hand each worker a disjoint view of the slots via a channel of
    // raw indices is unnecessary: we split the work by claimed index
    // and collect per-worker (index, result) pairs, then scatter.
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut mine: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(CLAIM_RUN, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + CLAIM_RUN).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        mine.push((start + i, f(item)));
                    }
                }
                mine
            }));
        }
        for h in handles {
            // join() returns Err on worker panic; unwrap re-raises.
            per_worker.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");

    for chunk in per_worker {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "slot {i} written twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// [`par_map_with_threads`] with the available parallelism.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    par_map_with_threads(items, threads, f)
}

/// Per-worker progress/timing summary from a reporting parallel map.
///
/// Produced by [`par_map_report`]; the perf-snapshot layer in
/// `dbp-bench` serializes these into `BENCH_*.json` so sweeps expose
/// their load balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index, `0..threads`.
    pub worker: usize,
    /// Number of items this worker processed.
    pub items: usize,
    /// Wall-clock nanoseconds spent inside `f` (work only).
    pub busy_ns: u128,
    /// Wall-clock nanoseconds from worker start to worker exit
    /// (work + queue contention + scheduling).
    pub elapsed_ns: u128,
}

/// [`par_map_with_threads`], but additionally reports how the work
/// was distributed: one [`WorkerReport`] per worker, in worker order.
///
/// The reporting path times every task (two `Instant` reads per
/// item), so keep the non-reporting [`par_map`] for hot sweeps where
/// the distribution is not of interest.
///
/// # Panics
/// Re-raises the first panic from any worker.
pub fn par_map_report_with_threads<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<R>, Vec<WorkerReport>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let threads = threads.clamp(1, n);

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);

    let mut per_worker: Vec<(Vec<(usize, R)>, WorkerReport)> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let started = std::time::Instant::now();
                let mut mine: Vec<(usize, R)> = Vec::new();
                let mut busy_ns: u128 = 0;
                loop {
                    let start = next.fetch_add(CLAIM_RUN, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + CLAIM_RUN).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        let t0 = std::time::Instant::now();
                        let r = f(item);
                        busy_ns += t0.elapsed().as_nanos();
                        mine.push((start + i, r));
                    }
                }
                let report = WorkerReport {
                    worker,
                    items: mine.len(),
                    busy_ns,
                    elapsed_ns: started.elapsed().as_nanos(),
                };
                (mine, report)
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");

    let mut reports = Vec::with_capacity(threads);
    for (chunk, report) in per_worker {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "slot {i} written twice");
            slots[i] = Some(r);
        }
        reports.push(report);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect();
    (results, reports)
}

/// [`par_map_report_with_threads`] with the available parallelism.
pub fn par_map_report<T, R, F>(items: &[T], f: F) -> (Vec<R>, Vec<WorkerReport>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    par_map_report_with_threads(items, threads, f)
}

/// Evaluates `f` over the cartesian product `rows × cols`, returning
/// a row-major matrix. The sweep shape used by most experiment
/// tables.
pub fn par_table<A, B, R, F>(rows: &[A], cols: &[B], f: F) -> Vec<Vec<R>>
where
    A: Sync,
    B: Sync,
    R: Send,
    F: Fn(&A, &B) -> R + Sync,
{
    let cells: Vec<(usize, usize)> = (0..rows.len())
        .flat_map(|i| (0..cols.len()).map(move |j| (i, j)))
        .collect();
    let flat = par_map(&cells, |&(i, j)| f(&rows[i], &cols[j]));
    let mut out: Vec<Vec<R>> = Vec::with_capacity(rows.len());
    let mut it = flat.into_iter();
    for _ in 0..rows.len() {
        out.push(it.by_ref().take(cols.len()).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = par_map_with_threads(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with_threads(&[5, 6], 64, |&x| x);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map_with_threads(&input, 8, |&x| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(CALLS.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let input: Vec<u64> = (0..100).collect();
        let _ = par_map_with_threads(&input, 4, |&x| {
            if x == 37 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn report_accounts_for_every_item() {
        let input: Vec<u64> = (0..200).collect();
        let (out, reports) = par_map_report_with_threads(&input, 4, |&x| x + 1);
        assert_eq!(out, input.iter().map(|x| x + 1).collect::<Vec<_>>());
        assert_eq!(reports.len(), 4);
        assert_eq!(reports.iter().map(|r| r.items).sum::<usize>(), 200);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.worker, i);
            assert!(r.elapsed_ns >= r.busy_ns);
        }
    }

    #[test]
    fn report_on_empty_input() {
        let (out, reports) = par_map_report(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
        assert!(reports.is_empty());
    }

    #[test]
    fn table_is_row_major() {
        let rows = [1i64, 2, 3];
        let cols = [10i64, 20];
        let t = par_table(&rows, &cols, |a, b| a * b);
        assert_eq!(t, vec![vec![10, 20], vec![20, 40], vec![30, 60]]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Input sizes bracket the claim-run geometry: shorter than
        // one run, exactly one run, one item past a run boundary, a
        // non-multiple far bigger than `threads · CLAIM_RUN`, and an
        // exact multiple of the run length.
        for n in [1u64, 7, 8, 9, 500, 512] {
            let input: Vec<u64> = (0..n).collect();
            let base = par_map_with_threads(&input, 1, |&x| x.wrapping_mul(2654435761));
            for threads in [2, 4, 7, 16] {
                let out = par_map_with_threads(&input, threads, |&x| x.wrapping_mul(2654435761));
                assert_eq!(out, base, "n = {n}, threads = {threads}");
                let (rep_out, reports) =
                    par_map_report_with_threads(&input, threads, |&x| x.wrapping_mul(2654435761));
                assert_eq!(
                    rep_out, base,
                    "reporting path: n = {n}, threads = {threads}"
                );
                assert_eq!(
                    reports.iter().map(|r| r.items).sum::<usize>(),
                    n as usize,
                    "reports must account for every item"
                );
            }
        }
    }

    #[test]
    fn chunked_claiming_processes_each_item_once() {
        // A size that is neither a multiple of the claim run nor of
        // the thread count, so runs straddle the tail.
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let input: Vec<u64> = (0..CLAIM_RUN as u64 * 13 + 5).collect();
        let out = par_map_with_threads(&input, 7, |&x| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, input);
        assert_eq!(CALLS.load(Ordering::Relaxed), input.len() as u64);
    }
}
