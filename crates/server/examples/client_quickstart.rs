//! Quickstart: start an allocation daemon, drive a tenant over the
//! wire, and compare against the in-process session API.
//!
//! Run with `cargo run -p dbp-server --example client_quickstart`.

use dbp_numeric::rat;
use dbp_proto::{ItemId, TickGrid};
use dbp_server::{Client, DbpServer, ServerConfig};

fn main() {
    // An in-process daemon on a loopback port; in production this is
    // `mindbp serve --listen 0.0.0.0:9500 --journal-dir journals/`.
    let server = DbpServer::start(ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();
    println!("daemon listening on {addr}");

    // The builder mirrors `Session::builder`: algorithm, grid, shards.
    let mut client = Client::builder("firstfit")
        .tenant("quickstart")
        .grid(TickGrid::new(1, 8))
        .without_journal()
        .connect(addr)
        .expect("connect");

    // Placement is synchronous: frame in, bin out.
    let b0 = client
        .arrive(ItemId(0), rat(1, 2), rat(0, 1))
        .expect("place");
    let b1 = client
        .arrive(ItemId(1), rat(5, 8), rat(1, 1))
        .expect("place");
    let b2 = client
        .arrive(ItemId(2), rat(3, 8), rat(1, 1))
        .expect("place");
    println!("placed: {b0:?} {b1:?} {b2:?}");

    client.depart(ItemId(0), rat(2, 1)).expect("depart");
    client.depart(ItemId(1), rat(3, 1)).expect("depart");
    client.depart(ItemId(2), rat(7, 2)).expect("depart");

    let metrics = client.metrics().expect("metrics");
    println!(
        "events {} | peak open bins {} | usage time {}",
        metrics.events, metrics.peak_open_bins, metrics.usage_time
    );

    let outcomes = client.finish().expect("finish");
    println!(
        "finished: {} bins, usage time {}",
        outcomes[0].bins_opened(),
        outcomes[0].total_usage()
    );

    server.stop();
}
