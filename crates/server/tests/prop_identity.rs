//! Property test: wire-served placements are bit-identical to
//! in-process `Session` batch runs, across random workload shapes,
//! algorithms, batch splits, and shard counts.

use dbp_core::algo::by_name;
use dbp_core::session::Session;
use dbp_core::{ItemId, PackingOutcome};
use dbp_numeric::rat;
use dbp_proto::{Event, TickGrid};
use dbp_server::tenant::canonical_algo;
use dbp_server::{Client, DbpServer, ServerConfig};
use proptest::prelude::*;

/// Deterministic wave stream: `waves`×`width` items, each departing
/// two steps after arrival, sizes on a 1/32 grid seeded by `salt`.
fn wave_stream(waves: u32, width: u32, salt: u32) -> Vec<Event> {
    let mut events = Vec::new();
    for step in 0..waves + 2 {
        if step >= 2 {
            for k in 0..width {
                let id = (step - 2) * width + k;
                if id < waves * width {
                    events.push(Event::Depart {
                        id: ItemId(id),
                        time: rat(step as i128, 1),
                    });
                }
            }
        }
        if step < waves {
            for k in 0..width {
                events.push(Event::Arrive {
                    id: ItemId(step * width + k),
                    size: rat(1 + ((salt + step * 7 + k) as i128 % 16), 32),
                    time: rat(step as i128, 1),
                });
            }
        }
    }
    events
}

fn shard_outcomes(algo: &str, events: &[Event], shards: u32) -> Vec<PackingOutcome> {
    (0..shards)
        .map(|shard| {
            let mut session = Session::builder(by_name(canonical_algo(algo).unwrap()).unwrap())
                .grid(TickGrid::new(1, 32))
                .build()
                .unwrap();
            for ev in events.iter().filter(|e| e.id().0 % shards == shard) {
                session.apply(ev).unwrap();
            }
            session.finish().unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn served_outcomes_match_in_process_runs(
        waves in 1u32..8,
        width in 1u32..8,
        salt in 0u32..1000,
        algo_pick in 0usize..3,
        shards in 1u32..4,
        split in 0usize..5,
    ) {
        let algo = ["firstfit", "bestfit", "nextfit"][algo_pick];
        let events = wave_stream(waves, width, salt);

        let server = DbpServer::start(ServerConfig::default()).unwrap();
        let mut client = Client::builder(algo)
            .tenant("prop")
            .grid(TickGrid::new(1, 32))
            .shards(shards)
            .without_journal()
            .connect(server.local_addr())
            .unwrap();

        // Random split between single-event frames and one batch: the
        // submission framing must never affect placements.
        let cut = events.len() * split / 4;
        let (head, tail) = events.split_at(cut.min(events.len()));
        for ev in head {
            client.apply(ev).unwrap();
        }
        if !tail.is_empty() {
            client.ingest(tail).unwrap();
        }

        let outcomes = client.finish().unwrap();
        prop_assert_eq!(outcomes, shard_outcomes(algo, &events, shards));
        server.stop();
    }
}
