//! End-to-end tests of the allocation daemon over real sockets.
//!
//! The contracts under test are the ones the tentpole promises:
//! placements served over the wire are **bit-identical** to in-process
//! `Session` runs (including for sharded tenants vs a `Fleet`), a
//! crashed server restarted from its journals resumes every tenant
//! verbatim, and refusals (quota, auth, protocol) come back as typed
//! errors without perturbing session state.

use dbp_core::algo::by_name;
use dbp_core::session::Session;
use dbp_core::{ItemId, PackingOutcome};
use dbp_numeric::rat;
use dbp_proto::{ErrorKind, Event, TickGrid};
use dbp_server::{Client, ClientError, DbpServer, Quotas, ServerConfig, TokenPolicy};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbp-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small deterministic arrive/depart stream: `waves` waves of
/// `width` items, each wave departing two steps later, departures
/// before arrivals at every shared instant.
fn wave_stream(waves: u32, width: u32) -> Vec<Event> {
    let mut events = Vec::new();
    for step in 0..waves + 2 {
        if step >= 2 {
            for k in 0..width {
                let id = (step - 2) * width + k;
                if id < waves * width {
                    events.push(Event::Depart {
                        id: ItemId(id),
                        time: rat(step as i128, 1),
                    });
                }
            }
        }
        if step < waves {
            for k in 0..width {
                events.push(Event::Arrive {
                    id: ItemId(step * width + k),
                    size: rat(1 + ((step + k) as i128 % 16), 32),
                    time: rat(step as i128, 1),
                });
            }
        }
    }
    events
}

// `algo` is the CLI-style name the wire speaks; the in-process twin
// rebuilds it through the same canonicalization the server uses.
fn session_outcome(algo: &str, events: &[Event]) -> PackingOutcome {
    let canonical = dbp_server::tenant::canonical_algo(algo).unwrap();
    let mut session = Session::builder(by_name(canonical).unwrap())
        .grid(TickGrid::new(1, 32))
        .build()
        .unwrap();
    for ev in events {
        session.apply(ev).unwrap();
    }
    session.finish().unwrap()
}

#[test]
fn socket_outcomes_match_in_process_sessions() {
    let server = DbpServer::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let events = wave_stream(6, 5);

    // Several tenants, several algorithms, one server — each must
    // finish exactly like its in-process twin.
    for algo in ["firstfit", "bestfit", "nextfit"] {
        let mut client = Client::builder(algo)
            .tenant(format!("twin-{algo}"))
            .grid(TickGrid::new(1, 32))
            .without_journal()
            .connect(addr)
            .unwrap();
        // Mix single-event and batched submission: same stream, same
        // placements either way.
        let (head, tail) = events.split_at(events.len() / 3);
        for ev in head {
            client.apply(ev).unwrap();
        }
        client.ingest(tail).unwrap();
        let outcomes = client.finish().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0], session_outcome(algo, &events), "algo {algo}");
    }
}

#[test]
fn sharded_tenant_matches_a_fleet_of_sessions() {
    let server = DbpServer::start(ServerConfig::default()).unwrap();
    let events = wave_stream(5, 6);
    let shards = 3u32;

    let mut client = Client::builder("firstfit")
        .tenant("sharded")
        .grid(TickGrid::new(1, 32))
        .shards(shards)
        .without_journal()
        .connect(server.local_addr())
        .unwrap();
    let bins = client.ingest(&events).unwrap();
    let outcomes = client.finish().unwrap();
    assert_eq!(outcomes.len(), shards as usize);

    // In-process twin: one session per shard, routed by `id % shards`,
    // same per-shard event order.
    for shard in 0..shards {
        let shard_events: Vec<Event> = events
            .iter()
            .filter(|e| e.id().0 % shards == shard)
            .copied()
            .collect();
        assert_eq!(
            outcomes[shard as usize],
            session_outcome("firstfit", &shard_events),
            "shard {shard}"
        );
    }
    assert_eq!(bins.len(), events.len());
}

#[test]
fn crash_recovery_resumes_bit_identically() {
    let dir = test_dir("recovery");
    let config = || ServerConfig {
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let events = wave_stream(6, 4);
    let (head, tail) = events.split_at(events.len() / 2);

    // Stream the head into a journaled tenant, then "crash": stop
    // severs every connection but leaves journals on disk.
    let server = DbpServer::start(config()).unwrap();
    let mut client = Client::builder("firstfit")
        .tenant("acme")
        .grid(TickGrid::new(1, 32))
        .connect(server.local_addr())
        .unwrap();
    assert_eq!(client.resumed_events(), 0);
    for ev in head {
        client.apply(ev).unwrap();
    }
    server.stop();
    assert!(matches!(
        client.apply(&tail[0]),
        Err(ClientError::Io(_) | ClientError::Protocol(_))
    ));
    drop(client);

    // Restart from the same journal directory: the tenant resumes with
    // every acked event replayed, and the finished outcome is
    // bit-identical to an uninterrupted in-process run.
    let server = DbpServer::start(config()).unwrap();
    let mut client = Client::builder("firstfit")
        .tenant("acme")
        .grid(TickGrid::new(1, 32))
        .connect(server.local_addr())
        .unwrap();
    assert_eq!(client.resumed_events(), head.len() as u64);
    client.ingest(tail).unwrap();
    let outcomes = client.finish().unwrap();
    assert_eq!(outcomes, vec![session_outcome("firstfit", &events)]);

    // Finish removed the journal: a third attach starts fresh.
    let client = Client::builder("firstfit")
        .tenant("acme")
        .grid(TickGrid::new(1, 32))
        .connect(server.local_addr())
        .unwrap();
    assert_eq!(client.resumed_events(), 0);
    drop(client);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quota_refusals_are_typed_and_leave_state_untouched() {
    let server = DbpServer::start(ServerConfig {
        quotas: Quotas {
            max_active_items: Some(3),
            ..Quotas::unlimited()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::builder("firstfit")
        .tenant("capped")
        .without_journal()
        .connect(server.local_addr())
        .unwrap();

    for i in 0..3u32 {
        client
            .arrive(ItemId(i), rat(1, 8), rat(i as i128, 1))
            .unwrap();
    }
    let refused = client.arrive(ItemId(9), rat(1, 8), rat(3, 1));
    match refused {
        Err(ClientError::Remote(e)) => assert_eq!(e.kind, ErrorKind::Quota, "{e}"),
        other => panic!("expected a quota error, got {other:?}"),
    }

    // The refused arrival never touched the session: after a depart
    // frees a slot, the same arrival is admitted and the stream
    // continues at the same instant.
    client.depart(ItemId(0), rat(3, 1)).unwrap();
    client.arrive(ItemId(9), rat(1, 8), rat(3, 1)).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.active_items, 3);
}

#[test]
fn batch_quota_refusals_report_the_failing_index() {
    let server = DbpServer::start(ServerConfig {
        quotas: Quotas {
            max_active_items: Some(2),
            ..Quotas::unlimited()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::builder("firstfit")
        .tenant("capped")
        .without_journal()
        .connect(server.local_addr())
        .unwrap();

    // Admission is all-or-nothing per request: a batch that would
    // exceed the cap is refused outright, index 0.
    let batch: Vec<Event> = (0..3u32)
        .map(|i| Event::Arrive {
            id: ItemId(i),
            size: rat(1, 8),
            time: rat(0, 1),
        })
        .collect();
    match client.ingest(&batch) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.kind, ErrorKind::Quota);
            assert_eq!(e.index, Some(0));
        }
        other => panic!("expected a quota error, got {other:?}"),
    }
    assert_eq!(client.metrics().unwrap().events, 0);
}

#[test]
fn bad_tokens_are_typed_auth_errors() {
    let server = DbpServer::start(ServerConfig {
        auth: TokenPolicy::PerTenant(HashMap::from([("acme".to_string(), "s3cret".to_string())])),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let auth_err = |result: Result<Client, ClientError>| match result {
        Err(ClientError::Remote(e)) => assert_eq!(e.kind, ErrorKind::Auth, "{e}"),
        other => panic!(
            "expected an auth error, got {:?}",
            other.map(|_| "a connected client")
        ),
    };
    auth_err(Client::builder("firstfit").tenant("acme").connect(addr));
    auth_err(
        Client::builder("firstfit")
            .tenant("acme")
            .token("wrong")
            .connect(addr),
    );
    auth_err(
        Client::builder("firstfit")
            .tenant("unprovisioned")
            .token("s3cret")
            .connect(addr),
    );

    let mut client = Client::builder("firstfit")
        .tenant("acme")
        .token("s3cret")
        .connect(addr)
        .unwrap();
    client.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();

    // Shutdown obeys the same policy.
    let wrong = Client::builder("firstfit")
        .tenant("acme")
        .token("s3cret")
        .connect(addr)
        .unwrap();
    match wrong.shutdown_server(Some("nope")) {
        Err(ClientError::Remote(e)) => assert_eq!(e.kind, ErrorKind::Auth),
        other => panic!("expected an auth error, got {other:?}"),
    }
}

#[test]
fn snapshot_without_journal_is_typed_unavailable() {
    let server = DbpServer::start(ServerConfig::default()).unwrap();
    let mut client = Client::builder("firstfit")
        .tenant("flat")
        .without_journal()
        .connect(server.local_addr())
        .unwrap();
    client.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
    match client.snapshot() {
        Err(ClientError::Remote(e)) => assert_eq!(e.kind, ErrorKind::Unavailable, "{e}"),
        other => panic!("expected unavailable, got {other:?}"),
    }
}

#[test]
fn metrics_page_carries_server_and_prefixed_tenant_series() {
    let server = DbpServer::start(ServerConfig {
        metrics: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let scrape_addr = server.metrics_addr().unwrap();

    let mut client = Client::builder("firstfit")
        .tenant("acme")
        .telemetry()
        .without_journal()
        .connect(server.local_addr())
        .unwrap();
    client.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
    client.arrive(ItemId(1), rat(1, 4), rat(1, 1)).unwrap();
    // A metrics request republishes the page synchronously.
    client.metrics().unwrap();

    let mut stream = std::net::TcpStream::connect(scrape_addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut page = String::new();
    stream.read_to_string(&mut page).unwrap();

    assert!(page.contains("dbp_server_events_total 2"), "{page}");
    assert!(page.contains("dbp_server_tenants 1"), "{page}");
    // The tenant's telemetry appears both under its prefix and in the
    // lawful un-prefixed merge.
    assert!(page.contains("tenant_acme_"), "{page}");
}

#[test]
fn traced_placements_are_bit_identical_and_echo_ids() {
    let server = DbpServer::start(ServerConfig::default()).unwrap();
    let events = wave_stream(6, 5);

    // Same stream as the in-process twin, but every frame carries a
    // trace id the server must echo. Tracing must not perturb
    // placement: the outcome stays bit-identical.
    let mut client = Client::builder("firstfit")
        .tenant("traced-twin")
        .grid(TickGrid::new(1, 32))
        .without_journal()
        .traced()
        .connect(server.local_addr())
        .unwrap();
    let (head, tail) = events.split_at(events.len() / 3);
    for ev in head {
        client.apply(ev).unwrap();
    }
    client.ingest(tail).unwrap();
    // Ids are sequential from 1 (the hello), one per exchange; the
    // client verified each echo on the way.
    assert_eq!(client.echoed_trace(), Some(1 + head.len() as u64 + 1));
    let outcomes = client.finish().unwrap();
    assert_eq!(outcomes[0], session_outcome("firstfit", &events));
}

#[test]
fn traced_frames_need_no_negotiation() {
    use dbp_proto::{fast, read_frame_raw, write_frame_bytes, RawFrame, Request};
    use serde::Serialize;

    let server = DbpServer::start(ServerConfig::default()).unwrap();

    // A raw connection whose hello never mentioned tracing: the
    // compatibility rule says any later frame may still carry a
    // `trace` id, and the server accepts it and echoes it back.
    let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut scratch = Vec::new();

    let hello = dbp_proto::Hello::new("raw", "firstfit");
    let payload = serde_json::to_string(&Request::Hello(hello).to_value()).unwrap();
    write_frame_bytes(&mut writer, payload.as_bytes()).unwrap();
    writer.flush().unwrap();
    assert!(matches!(
        read_frame_raw(&mut reader, &mut scratch).unwrap(),
        RawFrame::Payload
    ));
    // Untraced hello, untraced answer — byte-identical to the pre-trace
    // protocol.
    assert!(!String::from_utf8_lossy(&scratch).contains("trace"));

    let mut frame = Vec::new();
    fast::write_event_request_traced(
        &mut frame,
        &Event::Arrive {
            id: ItemId(0),
            size: rat(1, 2),
            time: rat(0, 1),
        },
        Some(7),
    );
    write_frame_bytes(&mut writer, &frame).unwrap();
    writer.flush().unwrap();
    assert!(matches!(
        read_frame_raw(&mut reader, &mut scratch).unwrap(),
        RawFrame::Payload
    ));
    assert_eq!(scratch, br#"{"v":1,"trace":7,"bin":0}"#);
}

#[test]
fn slow_ring_dumps_jsonl_and_chrome_trace_on_shutdown() {
    let dir = test_dir("slowring");
    let out = dir.join("slow.jsonl");
    // `slow_ms: 0` records every placement; `trace_out` dumps the ring
    // when the server stops.
    let server = DbpServer::start(ServerConfig {
        slow_ms: Some(0),
        trace_out: Some(out.clone()),
        ..ServerConfig::default()
    })
    .unwrap();

    let mut client = Client::builder("firstfit")
        .tenant("ring")
        .grid(TickGrid::new(1, 32))
        .without_journal()
        .traced()
        .connect(server.local_addr())
        .unwrap();
    let events = wave_stream(3, 3);
    for ev in &events {
        client.apply(ev).unwrap();
    }
    drop(client);
    server.stop();

    let jsonl = std::fs::read_to_string(&out).unwrap();
    assert_eq!(
        jsonl.lines().count(),
        events.len(),
        "one line per placement"
    );
    let first = serde_json::parse(jsonl.lines().next().unwrap()).unwrap();
    assert_eq!(
        first.get("tenant").and_then(serde::Value::as_str),
        Some("ring")
    );
    // The client traced every frame (hello = 1), so the first
    // placement carries id 2, joinable against client-side records.
    assert_eq!(first.get("trace").and_then(serde::Value::as_int), Some(2));
    assert!(first.get("total_us").is_some(), "{jsonl}");
    assert!(first.get("apply_us").is_some(), "{jsonl}");

    let chrome = std::fs::read_to_string(out.with_extension("chrome.json")).unwrap();
    assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    assert!(chrome.contains("\"pid\":3"), "server spans live on pid 3");
    assert!(chrome.contains("trace=2"), "{chrome}");
}

#[test]
fn request_latency_series_reach_the_metrics_page() {
    let server = DbpServer::start(ServerConfig {
        metrics: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let scrape_addr = server.metrics_addr().unwrap();

    let mut client = Client::builder("firstfit")
        .tenant("globex")
        .without_journal()
        .traced()
        .connect(server.local_addr())
        .unwrap();
    client.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
    client.arrive(ItemId(1), rat(1, 4), rat(1, 1)).unwrap();
    client.metrics().unwrap();

    let mut stream = std::net::TcpStream::connect(scrape_addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut page = String::new();
    stream.read_to_string(&mut page).unwrap();

    // Wire-level SLO series appear under the tenant prefix and in the
    // lawful un-prefixed merge.
    assert!(
        page.contains("dbp_tenant_globex_request_latency_us"),
        "{page}"
    );
    assert!(
        page.contains("dbp_tenant_globex_requests_total 2"),
        "{page}"
    );
    assert!(
        page.contains("dbp_tenant_globex_traced_requests_total 2"),
        "{page}"
    );
    assert!(
        page.contains("dbp_tenant_globex_quota_refusals_total 0"),
        "{page}"
    );
    assert!(page.contains("dbp_request_latency_us"), "{page}");

    // The in-process snapshot sees the same page without HTTP.
    let registry = server.registry_snapshot();
    let h = registry
        .histogram("tenant_globex_request_latency_us")
        .expect("latency histogram on the snapshot");
    assert_eq!(h.count(), 2);
    assert!(h.quantile(0.99).is_some());
}

#[test]
fn wire_shutdown_stops_the_server() {
    let server = DbpServer::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let client = Client::builder("firstfit")
        .tenant("any")
        .without_journal()
        .connect(addr)
        .unwrap();
    client.shutdown_server(None).unwrap();
    // The accept loop notices the flag and severs everything; new
    // connections are refused once it exits.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match Client::builder("firstfit").tenant("late").connect(addr) {
            Err(_) => break,
            Ok(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10))
            }
            Ok(_) => panic!("server still accepting after wire shutdown"),
        }
    }
    server.stop();
}
