//! One tenant = one keyed packing session (or sharded fleet).
//!
//! A [`Tenant`] wraps the session machinery behind the wire protocol:
//! quota admission in front, journal durability behind, and the
//! single/sharded distinction hidden from the connection handler.
//! Every mutation goes through here, so the invariant "journal holds
//! exactly the accepted events, in acceptance order" lives in one
//! place.

use crate::journal::{Journal, JournalHeader, RecoveredJournal};
use crate::quota::{Quotas, RateLimiter};
use crate::span::{Phase, RequestSpan, WireStats};
use crate::ServerError;
use dbp_core::algo::by_name;
use dbp_core::session::{Session, SessionError};
use dbp_core::{PackingAlgorithm, PackingOutcome};
use dbp_obs::{telemetry_registry, MetricsRegistry};
use dbp_par::Fleet;
use dbp_proto::{BinId, ErrorKind, Event, Hello, SessionMetrics, SessionSnapshot, WireError};
use std::path::Path;
use std::time::Instant;

/// Maps a wire algorithm name (CLI-style lowercase or canonical) to
/// its canonical name, restricted to algorithms that
/// [`by_name`] can reconstruct — the server only serves
/// journal-recoverable algorithms, by design.
pub fn canonical_algo(name: &str) -> Option<&'static str> {
    Some(match name {
        "firstfit" | "ff" | "FirstFit" => "FirstFit",
        "bestfit" | "bf" | "BestFit" => "BestFit",
        "worstfit" | "wf" | "WorstFit" => "WorstFit",
        "lastfit" | "lf" | "LastFit" => "LastFit",
        "nextfit" | "nf" | "NextFit" => "NextFit",
        "firstfit-fast" | "fff" | "FirstFitFast" => "FirstFitFast",
        "bestfit-fast" | "bff" | "BestFitFast" => "BestFitFast",
        "worstfit-fast" | "wff" | "WorstFitFast" => "WorstFitFast",
        _ => return None,
    })
}

fn make_algo(canonical: &str) -> Box<dyn PackingAlgorithm> {
    by_name(canonical).expect("canonical_algo only returns by_name-constructible names")
}

/// Single session or sharded fleet — the tenant-facing API is the
/// same either way.
// One long-lived value per tenant behind an Arc<Mutex<..>>; the size
// skew between variants never crosses a hot move path.
#[allow(clippy::large_enum_variant)]
enum TenantState {
    Single(Session<'static>),
    Sharded(Fleet<'static>),
}

/// One tenant's full server-side state.
pub struct Tenant {
    name: String,
    state: TenantState,
    shards: u32,
    journal: Option<Journal>,
    quotas: Quotas,
    rate: Option<RateLimiter>,
    /// Events accepted over this tenant's lifetime (journaled or not).
    accepted: u64,
    /// Wire-level SLO accumulators (request latency, phase shares,
    /// refusals, fsyncs) — folded into [`Tenant::registry`].
    wire: WireStats,
}

fn session_error(e: SessionError) -> WireError {
    WireError::new(ErrorKind::Session, e.to_string())
}

impl Tenant {
    /// Builds a fresh tenant from its hello frame. When `journal_dir`
    /// is set and the hello asked for journaling, a journal file is
    /// created before any event is accepted.
    pub fn create(
        hello: &Hello,
        quotas: Quotas,
        journal_dir: Option<&Path>,
    ) -> Result<Tenant, ServerError> {
        let canonical = canonical_algo(&hello.algo).ok_or_else(|| {
            ServerError::Wire(WireError::new(
                ErrorKind::Protocol,
                format!("unknown or non-recoverable algorithm `{}`", hello.algo),
            ))
        })?;
        if hello.shards == 0 {
            return Err(ServerError::Wire(WireError::new(
                ErrorKind::Protocol,
                "shards must be >= 1",
            )));
        }
        let build_session = || -> Result<Session<'static>, SessionError> {
            let mut builder = Session::builder(make_algo(canonical)).backend(hello.backend);
            if let Some(grid) = hello.grid {
                builder = builder.grid(grid);
            }
            if hello.telemetry {
                builder = builder.telemetry();
            }
            if !hello.journal {
                // Journal-less tenants run with flat memory: the
                // session does not record events, so `snapshot`
                // becomes a typed Unavailable error.
                builder = builder.without_checkpoints();
            }
            builder.build()
        };
        let state = if hello.shards == 1 {
            TenantState::Single(build_session().map_err(|e| ServerError::Wire(session_error(e)))?)
        } else {
            let sessions = (0..hello.shards)
                .map(|_| build_session())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| ServerError::Wire(session_error(e)))?;
            TenantState::Sharded(Fleet::new(sessions))
        };
        let journal = match (journal_dir, hello.journal) {
            (Some(dir), true) => Some(
                Journal::create(
                    dir,
                    &JournalHeader {
                        tenant: hello.tenant.clone(),
                        algo: canonical.to_string(),
                        backend: hello.backend,
                        grid: hello.grid,
                        shards: hello.shards,
                        telemetry: hello.telemetry,
                    },
                )
                .map_err(ServerError::Io)?,
            ),
            _ => None,
        };
        Ok(Tenant {
            name: hello.tenant.clone(),
            state,
            shards: hello.shards,
            journal,
            quotas,
            rate: quotas.max_events_per_sec.map(RateLimiter::new),
            accepted: 0,
            wire: WireStats::default(),
        })
    }

    /// Rebuilds a tenant from its recovered journal by replaying every
    /// accepted event through the identical session machinery —
    /// bit-identical to a tenant that never stopped. The journal is
    /// reopened for appending.
    pub fn recover(
        recovered: RecoveredJournal,
        quotas: Quotas,
        journal_dir: &Path,
    ) -> Result<Tenant, ServerError> {
        let header = &recovered.header;
        let hello = Hello {
            tenant: header.tenant.clone(),
            token: None,
            algo: header.algo.clone(),
            backend: header.backend,
            grid: header.grid,
            shards: header.shards,
            telemetry: header.telemetry,
            journal: true,
        };
        let mut tenant = Tenant::create(&hello, quotas, None)?;
        // Replay without quota admission: these events were already
        // admitted once; a restart must not re-charge them.
        for event in &recovered.events {
            tenant.apply_unchecked(event).map_err(|e| {
                ServerError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "journal replay for tenant `{}` rejected an event it once accepted: {e}",
                        header.tenant
                    ),
                ))
            })?;
        }
        tenant.journal =
            Some(Journal::reopen(journal_dir, &header.tenant).map_err(ServerError::Io)?);
        Ok(tenant)
    }

    /// Tenant key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Events accepted so far (what a resuming client sees in its
    /// hello response).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    fn shard_of(&self, event: &Event) -> usize {
        (event.id().0 % self.shards) as usize
    }

    fn admit(&mut self, events: &[Event]) -> Result<(), WireError> {
        if let Some(rate) = &mut self.rate {
            if !rate.admit(events.len() as u64) {
                return Err(WireError::new(
                    ErrorKind::Quota,
                    format!(
                        "events/sec quota exceeded (limit {}/s)",
                        self.quotas.max_events_per_sec.unwrap_or(0)
                    ),
                ));
            }
        }
        let arrivals = events.iter().filter(|e| e.is_arrival()).count() as u64;
        if arrivals > 0 {
            let metrics = self.metrics();
            if let Some(max) = self.quotas.max_active_items {
                // Conservative: departures in the same batch are not
                // credited, so admission never depends on intra-batch
                // ordering.
                if metrics.active_items as u64 + arrivals > max {
                    return Err(WireError::new(
                        ErrorKind::Quota,
                        format!(
                            "active-items quota exceeded ({} in flight + {arrivals} arriving > limit {max})",
                            metrics.active_items
                        ),
                    ));
                }
            }
            if let Some(max) = self.quotas.max_open_bins {
                // Conservative: each arrival may open a bin.
                if metrics.open_bins as u64 + arrivals > max {
                    return Err(WireError::new(
                        ErrorKind::Quota,
                        format!(
                            "open-bins quota exceeded ({} open + up to {arrivals} new > limit {max})",
                            metrics.open_bins
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Applies one event without quota or journal involvement
    /// (recovery replay).
    fn apply_unchecked(&mut self, event: &Event) -> Result<BinId, SessionError> {
        let bin = match &mut self.state {
            TenantState::Single(session) => session.apply(event)?,
            TenantState::Sharded(fleet) => {
                let shard = (event.id().0 % self.shards) as usize;
                fleet.session_mut(shard).apply(event)?
            }
        };
        self.accepted += 1;
        Ok(bin)
    }

    /// Applies one event: quota admission, session placement, journal
    /// append + flush — only then is the placement returned for the
    /// wire ack. Each stage charges its time to the request `span`
    /// (Quota / Apply / Journal), refusals and flushes included.
    pub fn apply(&mut self, event: &Event, span: &mut RequestSpan) -> Result<BinId, ServerError> {
        if let Err(e) = span.time(Phase::Quota, || self.admit(std::slice::from_ref(event))) {
            span.quota_refused = true;
            return Err(ServerError::Wire(e));
        }
        let bin = span
            .time(Phase::Apply, || self.apply_unchecked(event))
            .map_err(|e| ServerError::Wire(session_error(e)))?;
        self.journal_applied(std::slice::from_ref(event), span)?;
        Ok(bin)
    }

    /// Applies a batch, returning one placement per event. On a
    /// rejection the prefix semantics match the underlying machinery
    /// ([`Session::ingest`] / [`Fleet::dispatch`]): for a single
    /// session, events before the reported index were applied; for a
    /// fleet, each shard applied its events before the first failing
    /// one. Whatever was applied is journaled, so recovery and the
    /// live session never diverge. Stage timing charges the request
    /// `span` exactly as [`Tenant::apply`] does.
    pub fn batch(
        &mut self,
        events: &[Event],
        span: &mut RequestSpan,
    ) -> Result<Vec<BinId>, ServerError> {
        // Admission is all-or-nothing: a refused batch applied nothing,
        // which index 0 tells the client.
        if let Err(e) = span.time(Phase::Quota, || self.admit(events)) {
            span.quota_refused = true;
            return Err(ServerError::Wire(e.at_index(0)));
        }
        match &mut self.state {
            TenantState::Single(session) => {
                let mut bins = Vec::with_capacity(events.len());
                let t = Instant::now();
                for (index, event) in events.iter().enumerate() {
                    match session.apply(event) {
                        Ok(bin) => bins.push(bin),
                        Err(error) => {
                            span.record(Phase::Apply, t.elapsed());
                            self.accepted += index as u64;
                            self.journal_applied(&events[..index], span)?;
                            return Err(ServerError::Wire(
                                session_error(error).at_index(index as u64),
                            ));
                        }
                    }
                }
                span.record(Phase::Apply, t.elapsed());
                self.accepted += events.len() as u64;
                self.journal_applied(events, span)?;
                Ok(bins)
            }
            TenantState::Sharded(fleet) => {
                let shards = self.shards;
                let t = Instant::now();
                let routed: Vec<(usize, Event)> = events
                    .iter()
                    .map(|e| ((e.id().0 % shards) as usize, *e))
                    .collect();
                let dispatched = fleet.dispatch_with_bins(&routed);
                span.record(Phase::Apply, t.elapsed());
                match dispatched {
                    Ok(bins) => {
                        self.accepted += events.len() as u64;
                        self.journal_applied(events, span)?;
                        Ok(bins)
                    }
                    Err(errors) => {
                        // Reconstruct exactly which events were applied:
                        // per failing shard, the events before its
                        // reported index; for healthy shards, all.
                        let mut cutoff = vec![usize::MAX; shards as usize];
                        for e in &errors {
                            cutoff[e.shard] = cutoff[e.shard].min(e.index);
                        }
                        let applied: Vec<Event> = events
                            .iter()
                            .enumerate()
                            .filter(|(i, e)| *i < cutoff[self.shard_of(e)])
                            .map(|(_, e)| *e)
                            .collect();
                        self.accepted += applied.len() as u64;
                        self.journal_applied(&applied, span)?;
                        let first = errors
                            .iter()
                            .min_by_key(|e| e.index)
                            .expect("dispatch errors are non-empty");
                        Err(ServerError::Wire(
                            session_error(first.error.clone()).at_index(first.index as u64),
                        ))
                    }
                }
            }
        }
    }

    fn journal_applied(
        &mut self,
        events: &[Event],
        span: &mut RequestSpan,
    ) -> Result<(), ServerError> {
        if events.is_empty() {
            return Ok(());
        }
        if let Some(journal) = &mut self.journal {
            span.time(Phase::Journal, || journal.append(events))
                .map_err(ServerError::Io)?;
            // `Journal::append` flushes once per call — the durability
            // "fsync" the span and the per-tenant counter both count.
            span.fsyncs += 1;
        }
        Ok(())
    }

    /// Folds a finished request span into this tenant's wire-level
    /// accumulators (latency histogram, phase shares, refusal / fsync
    /// / slow counters).
    pub fn record_request(&mut self, span: &RequestSpan, total_ns: u64, slow: bool) {
        self.wire.record(span, total_ns, slow);
    }

    /// Live stream metrics, folded across shards.
    pub fn metrics(&self) -> SessionMetrics {
        match &self.state {
            TenantState::Single(session) => session.metrics(),
            TenantState::Sharded(fleet) => fleet.folded_metrics(),
        }
    }

    /// The tenant's telemetry registry (what the exposition page
    /// merges, per tenant and server-wide): deterministic stream
    /// telemetry plus the wire-level SLO series (`request_latency_us`
    /// histogram, per-phase nanosecond counters, refusals, fsyncs).
    pub fn registry(&self) -> MetricsRegistry {
        let mut registry = match &self.state {
            TenantState::Single(session) => telemetry_registry(&session.metrics()),
            TenantState::Sharded(fleet) => fleet.merged_metrics(),
        };
        self.wire.fold_into(&mut registry);
        registry
    }

    /// A resumable checkpoint. Sharded and journal-less tenants
    /// answer with a typed `unavailable` error.
    pub fn snapshot(&self) -> Result<SessionSnapshot, WireError> {
        match &self.state {
            TenantState::Single(session) => session.snapshot().map_err(|e| match e {
                SessionError::CheckpointsDisabled => WireError::new(
                    ErrorKind::Unavailable,
                    "tenant runs without journaling; snapshots are disabled",
                ),
                other => session_error(other),
            }),
            TenantState::Sharded(_) => Err(WireError::new(
                ErrorKind::Unavailable,
                "sharded tenants checkpoint via the server journal, not session snapshots",
            )),
        }
    }

    /// Finishes the tenant, returning one outcome per shard and
    /// removing its journal. A tenant with in-flight items fails with
    /// a typed error *without* consuming the session, so the caller
    /// can keep serving it.
    pub fn finish(self) -> Result<Vec<PackingOutcome>, (Box<Tenant>, WireError)> {
        let active = self.metrics().active_items;
        if active > 0 {
            return Err((
                Box::new(self),
                WireError::new(
                    ErrorKind::Session,
                    format!("{active} items still active; depart them before finish"),
                ),
            ));
        }
        let journal = self.journal;
        let outcomes = match self.state {
            TenantState::Single(session) => match session.finish() {
                Ok(outcome) => vec![outcome],
                Err(e) => unreachable!("finish with no active items failed: {e}"),
            },
            TenantState::Sharded(fleet) => fleet
                .finish()
                .unwrap_or_else(|e| unreachable!("fleet finish with no active items failed: {e}")),
        };
        if let Some(journal) = journal {
            // Best-effort: a leftover journal file replays to an
            // empty-tail tenant, which is harmless.
            let _ = journal.remove();
        }
        Ok(outcomes)
    }
}
