#![warn(missing_docs)]

//! Allocation as a service: the `dbp-server` daemon.
//!
//! The paper frames MinUsageTime dynamic bin packing as the online
//! allocation problem behind cloud gaming — requests arrive from live
//! user traffic and must be placed *now*. This crate is that serving
//! layer: a long-running daemon multiplexing many tenant sessions
//! over a length-prefixed JSONL wire protocol ([`dbp_proto`]), with
//!
//! * synchronous placement — frame in, `bin_id` out ([`Client`]);
//! * per-tenant auth tokens ([`TokenPolicy`]) and admission quotas
//!   ([`Quotas`]: bins, in-flight items, events/sec);
//! * journal-backed crash recovery — every accepted event is appended
//!   and flushed to the tenant's journal *before* its ack, and a
//!   restarted server replays journals into bit-identical sessions;
//! * one lawful OpenMetrics page — per-tenant prefixed registries and
//!   the server-wide merge, served by the existing
//!   `dbp_obs::MetricsServer` handler;
//! * request spans — every placement is timed through five phases
//!   (decode / quota / apply / journal / encode) into per-tenant
//!   latency histograms, and requests over `--slow-ms` land in a
//!   bounded slow ring dumped as JSONL + Chrome trace on shutdown
//!   ([`span`]);
//! * sharding — a tenant with `shards = n` runs a `dbp_par::Fleet`
//!   routed by `id % n`, trading the single-session total order for
//!   parallel throughput.
//!
//! Start one with [`DbpServer::start`] (or `mindbp serve` from the
//! CLI), drive it with [`Client`], benchmark it with the `loadgen`
//! bin.

pub mod client;
pub mod journal;
pub mod quota;
pub mod server;
pub mod span;
pub mod tenant;

pub use client::{Client, ClientBuilder, ClientError};
pub use quota::Quotas;
pub use server::{DbpServer, ServerConfig, TokenPolicy};
pub use span::{Phase, RequestSpan, SlowRequest, SlowRing, WireStats};

use dbp_proto::{ErrorKind, WireError};

/// A server-side failure: either a typed wire error to answer with,
/// or I/O trouble (journal, socket) that poisons the operation.
#[derive(Debug)]
pub enum ServerError {
    /// Answerable on the wire as a typed error frame.
    Wire(WireError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl ServerError {
    /// The wire representation: I/O failures surface as `unavailable`
    /// (the client can retry against a recovered server; the message
    /// names the failing subsystem).
    pub fn into_wire(self) -> WireError {
        match self {
            ServerError::Wire(e) => e,
            ServerError::Io(e) => {
                WireError::new(ErrorKind::Unavailable, format!("server i/o failure: {e}"))
            }
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Wire(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}
