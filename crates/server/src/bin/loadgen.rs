//! Socket load generator for the allocation daemon.
//!
//! Drives `--threads` client threads × `--tenants` tenants of batched
//! arrive/depart waves against a `dbp-server` (an in-process one on a
//! loopback port by default, or `--addr` for an external daemon) in
//! two same-run passes — untraced, then traced — recording into a
//! perf_check-compatible snapshot (`results/BENCH_server.json` by
//! convention):
//!
//! * aggregate placement events/sec for both passes, and their ratio
//!   (`traced_vs_untraced_ratio`, the tracing-overhead gate);
//! * client-side placement latency from individually-timed frames,
//!   accumulated in the shared `dbp_obs` log₂ [`Histogram`] (same
//!   buckets the server publishes, so the two sides are comparable);
//! * server-side request latency and per-phase shares for the traced
//!   pass, read straight off the in-process server's merged
//!   exposition registry (`tenant_<name>_request_latency_us`,
//!   `tenant_<name>_request_<phase>_ns`).
//!
//! The workload is the serving analogue of the bench suite's wave
//! pattern: at each integer step, the items that arrived two steps ago
//! depart, then a fresh batch arrives — departures before arrivals at
//! every shared instant, sizes cycling on a 1/128 grid so the tick
//! engine carries the whole stream.

use dbp_numeric::rat;
use dbp_obs::Histogram;
use dbp_proto::{Event, ItemId, TickGrid};
use dbp_server::span::PHASE_NAMES;
use dbp_server::{Client, DbpServer, ServerConfig};
use std::io::Write;
use std::time::Instant;

struct Args {
    threads: usize,
    tenants: usize,
    events_per_tenant: u64,
    batch: usize,
    sample_every: usize,
    addr: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 4,
        tenants: 8,
        events_per_tenant: 250_000,
        batch: 1024,
        sample_every: 64,
        addr: None,
        out: Some("results/BENCH_server.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--tenants" => args.tenants = value("--tenants").parse().expect("--tenants"),
            "--events-per-tenant" => {
                args.events_per_tenant = value("--events-per-tenant")
                    .parse()
                    .expect("--events-per-tenant")
            }
            "--batch" => args.batch = value("--batch").parse().expect("--batch"),
            "--sample-every" => {
                args.sample_every = value("--sample-every").parse().expect("--sample-every")
            }
            "--addr" => args.addr = Some(value("--addr")),
            "--out" => args.out = Some(value("--out")),
            "--no-out" => args.out = None,
            other => panic!("unknown flag `{other}` (see loadgen source for usage)"),
        }
    }
    assert!(args.threads >= 1 && args.tenants >= 1 && args.batch >= 1);
    args
}

/// One tenant's deterministic wave stream, chunked into per-step
/// batches: departures of the step-before-last wave, then the next
/// wave of arrivals, all at integer times on the declared grid.
fn wave_batches(events_total: u64, batch: usize) -> Vec<Vec<Event>> {
    let wave = batch.max(2) / 2;
    let mut batches = Vec::new();
    let mut next_id: u32 = 0;
    let mut arrived: std::collections::VecDeque<(i128, Vec<ItemId>)> =
        std::collections::VecDeque::new();
    let mut produced: u64 = 0;
    let mut step: i128 = 0;
    while produced < events_total {
        let mut events = Vec::with_capacity(batch);
        if let Some(&(t, _)) = arrived.front() {
            if t <= step - 2 {
                let (_, ids) = arrived.pop_front().unwrap();
                for id in ids {
                    events.push(Event::Depart {
                        id,
                        time: rat(step, 1),
                    });
                }
            }
        }
        let mut ids = Vec::with_capacity(wave);
        for k in 0..wave {
            let id = ItemId(next_id);
            next_id = next_id.wrapping_add(1);
            ids.push(id);
            events.push(Event::Arrive {
                id,
                size: rat(1 + ((k as i128 + step) % 64), 128),
                time: rat(step, 1),
            });
        }
        arrived.push_back((step, ids));
        produced += events.len() as u64;
        batches.push(events);
        step += 1;
    }
    batches
}

/// One full workload pass. `prefix` namespaces the tenants (passes
/// must not share sessions) and `traced` turns on per-frame request
/// ids with echo verification. Returns total events, wall seconds,
/// and the client-side latency histogram of the sampled frames.
fn run_pass(args: &Args, addr: &str, prefix: &str, traced: bool) -> (u64, f64, Histogram) {
    let started = Instant::now();
    let per_thread: Vec<(u64, Histogram)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..args.threads {
            handles.push(scope.spawn(move || {
                let mut events_done: u64 = 0;
                let mut latencies_us = Histogram::default();
                for tenant in (thread..args.tenants).step_by(args.threads) {
                    let mut builder = Client::builder("firstfit")
                        .tenant(format!("{prefix}{tenant}"))
                        .grid(TickGrid::new(1, 128))
                        .without_journal();
                    if traced {
                        builder = builder.traced();
                    }
                    let mut client = builder.connect(addr).expect("connect");
                    let batches = wave_batches(args.events_per_tenant, args.batch);
                    for (i, events) in batches.iter().enumerate() {
                        if i % args.sample_every == args.sample_every - 1 {
                            // Individually-timed placement frames: one
                            // round trip per event, the latency the
                            // paper's serving story cares about.
                            for event in events {
                                let t0 = Instant::now();
                                client.apply(event).expect("placement");
                                latencies_us.observe(t0.elapsed().as_secs_f64() * 1e6);
                            }
                        } else {
                            client.ingest(events).expect("batch placement");
                        }
                        events_done += events.len() as u64;
                    }
                    // Leave tenants live (no finish): the benchmark
                    // measures steady-state placement, not teardown.
                }
                (events_done, latencies_us)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let total: u64 = per_thread.iter().map(|(n, _)| n).sum();
    let mut latencies = Histogram::default();
    for (_, h) in &per_thread {
        latencies.merge(h);
    }
    (total, wall, latencies)
}

fn quantile_or_zero(h: &Histogram, q: f64) -> f64 {
    h.quantile(q).unwrap_or(0.0)
}

fn main() {
    let args = parse_args();

    // In-process server unless an external address was given: open
    // auth, no journal directory, no scrape endpoint — the socket and
    // the placement path are what's under test.
    let server = if args.addr.is_none() {
        Some(DbpServer::start(ServerConfig::default()).expect("server starts"))
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| server.as_ref().unwrap().local_addr().to_string());

    eprintln!(
        "loadgen: {} threads x {} tenants, {} events/tenant, batch {}, against {addr}",
        args.threads, args.tenants, args.events_per_tenant, args.batch
    );

    // Pass 1 — untraced: the baseline-comparable throughput number.
    let (total_events, wall, latencies) = run_pass(&args, &addr, "lg", false);
    let events_per_sec = total_events as f64 / wall;
    eprintln!(
        "loadgen: untraced {total_events} events in {wall:.2}s -> {events_per_sec:.0} events/sec; \
         placement latency p50 {:.1}us p99 {:.1}us ({} samples)",
        quantile_or_zero(&latencies, 0.50),
        quantile_or_zero(&latencies, 0.99),
        latencies.count()
    );

    // Pass 2 — traced: same workload on fresh tenants, every frame
    // carrying a request id the server echoes. The throughput ratio
    // against pass 1 is the tracing-overhead gate.
    let (traced_events, traced_wall, traced_latencies) = run_pass(&args, &addr, "lgt", true);
    let traced_events_per_sec = traced_events as f64 / traced_wall;
    let traced_ratio = traced_events_per_sec / events_per_sec;
    eprintln!(
        "loadgen: traced {traced_events} events in {traced_wall:.2}s -> {traced_events_per_sec:.0} \
         events/sec (ratio {traced_ratio:.3}); client latency p50 {:.1}us p99 {:.1}us",
        quantile_or_zero(&traced_latencies, 0.50),
        quantile_or_zero(&traced_latencies, 0.99),
    );

    // Server-side view of the traced pass, read off the in-process
    // server's merged exposition page: per-tenant request latency
    // histograms and phase counters under the `tenant_lgt*_` prefix.
    let mut server_latency = Histogram::default();
    let mut phase_ns = [0u64; 5];
    if let Some(server) = &server {
        let registry = server.registry_snapshot();
        for tenant in 0..args.tenants {
            if let Some(h) = registry.histogram(&format!("tenant_lgt{tenant}_request_latency_us")) {
                server_latency.merge(h);
            }
            for (acc, name) in phase_ns.iter_mut().zip(PHASE_NAMES) {
                *acc += registry.counter(&format!("tenant_lgt{tenant}_request_{name}_ns"));
            }
        }
        let spent: u64 = phase_ns.iter().sum();
        let share = |ns: u64| {
            if spent == 0 {
                0.0
            } else {
                ns as f64 / spent as f64
            }
        };
        eprintln!(
            "loadgen: server-side p50 {:.1}us p99 {:.1}us over {} requests; phase shares \
             decode {:.3} quota {:.3} apply {:.3} journal {:.3} encode {:.3}",
            quantile_or_zero(&server_latency, 0.50),
            quantile_or_zero(&server_latency, 0.99),
            server_latency.count(),
            share(phase_ns[0]),
            share(phase_ns[1]),
            share(phase_ns[2]),
            share(phase_ns[3]),
            share(phase_ns[4]),
        );
    } else {
        eprintln!("loadgen: external server (--addr); skipping server-side registry readout");
    }

    if let Some(out) = &args.out {
        if let Some(dir) = std::path::Path::new(out).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        let spent: u64 = phase_ns.iter().sum::<u64>().max(1);
        let json = format!(
            "{{\n  \"experiment\": \"server\",\n  \"threads\": {},\n  \"tenants\": {},\n  \
             \"events_per_tenant\": {},\n  \"batch\": {},\n  \"total_events\": {},\n  \
             \"wall_seconds\": {:.3},\n  \"latency_samples\": {},\n  \"metrics\": {{\n    \
             \"server_events_per_sec\": {:.0},\n    \"p50_placement_latency_us\": {:.2},\n    \
             \"p99_placement_latency_us\": {:.2},\n    \"traced_events_per_sec\": {:.0},\n    \
             \"traced_vs_untraced_ratio\": {:.4},\n    \"p50_client_latency_us\": {:.2},\n    \
             \"p99_client_latency_us\": {:.2},\n    \"p50_server_latency_us\": {:.2},\n    \
             \"p99_server_latency_us\": {:.2},\n    \"phase_share_decode\": {:.4},\n    \
             \"phase_share_quota\": {:.4},\n    \"phase_share_apply\": {:.4},\n    \
             \"phase_share_journal\": {:.4},\n    \"phase_share_encode\": {:.4}\n  }}\n}}\n",
            args.threads,
            args.tenants,
            args.events_per_tenant,
            args.batch,
            total_events,
            wall,
            latencies.count(),
            events_per_sec,
            quantile_or_zero(&latencies, 0.50),
            quantile_or_zero(&latencies, 0.99),
            traced_events_per_sec,
            traced_ratio,
            quantile_or_zero(&traced_latencies, 0.50),
            quantile_or_zero(&traced_latencies, 0.99),
            quantile_or_zero(&server_latency, 0.50),
            quantile_or_zero(&server_latency, 0.99),
            phase_ns[0] as f64 / spent as f64,
            phase_ns[1] as f64 / spent as f64,
            phase_ns[2] as f64 / spent as f64,
            phase_ns[3] as f64 / spent as f64,
            phase_ns[4] as f64 / spent as f64,
        );
        let mut file = std::fs::File::create(out).expect("create output file");
        file.write_all(json.as_bytes()).expect("write snapshot");
        eprintln!("loadgen: wrote {out}");
    }

    if let Some(server) = server {
        server.stop();
    }
}
