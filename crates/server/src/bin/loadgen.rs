//! Socket load generator for the allocation daemon.
//!
//! Drives `--threads` client threads × `--tenants` tenants of batched
//! arrive/depart waves against a `dbp-server` (an in-process one on a
//! loopback port by default, or `--addr` for an external daemon),
//! recording aggregate placement events/sec and the p99 latency of
//! individually-timed placement frames into a perf_check-compatible
//! snapshot (`results/BENCH_server.json` by convention).
//!
//! The workload is the serving analogue of the bench suite's wave
//! pattern: at each integer step, the items that arrived two steps ago
//! depart, then a fresh batch arrives — departures before arrivals at
//! every shared instant, sizes cycling on a 1/128 grid so the tick
//! engine carries the whole stream.

use dbp_numeric::rat;
use dbp_proto::{Event, ItemId, TickGrid};
use dbp_server::{Client, DbpServer, ServerConfig};
use std::io::Write;
use std::time::Instant;

struct Args {
    threads: usize,
    tenants: usize,
    events_per_tenant: u64,
    batch: usize,
    sample_every: usize,
    addr: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 4,
        tenants: 8,
        events_per_tenant: 250_000,
        batch: 1024,
        sample_every: 64,
        addr: None,
        out: Some("results/BENCH_server.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--tenants" => args.tenants = value("--tenants").parse().expect("--tenants"),
            "--events-per-tenant" => {
                args.events_per_tenant = value("--events-per-tenant")
                    .parse()
                    .expect("--events-per-tenant")
            }
            "--batch" => args.batch = value("--batch").parse().expect("--batch"),
            "--sample-every" => {
                args.sample_every = value("--sample-every").parse().expect("--sample-every")
            }
            "--addr" => args.addr = Some(value("--addr")),
            "--out" => args.out = Some(value("--out")),
            "--no-out" => args.out = None,
            other => panic!("unknown flag `{other}` (see loadgen source for usage)"),
        }
    }
    assert!(args.threads >= 1 && args.tenants >= 1 && args.batch >= 1);
    args
}

/// One tenant's deterministic wave stream, chunked into per-step
/// batches: departures of the step-before-last wave, then the next
/// wave of arrivals, all at integer times on the declared grid.
fn wave_batches(events_total: u64, batch: usize) -> Vec<Vec<Event>> {
    let wave = batch.max(2) / 2;
    let mut batches = Vec::new();
    let mut next_id: u32 = 0;
    let mut arrived: std::collections::VecDeque<(i128, Vec<ItemId>)> =
        std::collections::VecDeque::new();
    let mut produced: u64 = 0;
    let mut step: i128 = 0;
    while produced < events_total {
        let mut events = Vec::with_capacity(batch);
        if let Some(&(t, _)) = arrived.front() {
            if t <= step - 2 {
                let (_, ids) = arrived.pop_front().unwrap();
                for id in ids {
                    events.push(Event::Depart {
                        id,
                        time: rat(step, 1),
                    });
                }
            }
        }
        let mut ids = Vec::with_capacity(wave);
        for k in 0..wave {
            let id = ItemId(next_id);
            next_id = next_id.wrapping_add(1);
            ids.push(id);
            events.push(Event::Arrive {
                id,
                size: rat(1 + ((k as i128 + step) % 64), 128),
                time: rat(step, 1),
            });
        }
        arrived.push_back((step, ids));
        produced += events.len() as u64;
        batches.push(events);
        step += 1;
    }
    batches
}

fn main() {
    let args = parse_args();

    // In-process server unless an external address was given: open
    // auth, no journal directory, no scrape endpoint — the socket and
    // the placement path are what's under test.
    let server = if args.addr.is_none() {
        Some(DbpServer::start(ServerConfig::default()).expect("server starts"))
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| server.as_ref().unwrap().local_addr().to_string());

    eprintln!(
        "loadgen: {} threads x {} tenants, {} events/tenant, batch {}, against {addr}",
        args.threads, args.tenants, args.events_per_tenant, args.batch
    );

    let started = Instant::now();
    let per_thread: Vec<(u64, Vec<f64>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..args.threads {
            let addr = addr.clone();
            let args = &args;
            handles.push(scope.spawn(move || {
                let mut events_done: u64 = 0;
                let mut latencies_us: Vec<f64> = Vec::new();
                for tenant in (thread..args.tenants).step_by(args.threads) {
                    let mut client = Client::builder("firstfit")
                        .tenant(format!("lg{tenant}"))
                        .grid(TickGrid::new(1, 128))
                        .without_journal()
                        .connect(addr.as_str())
                        .expect("connect");
                    let batches = wave_batches(args.events_per_tenant, args.batch);
                    for (i, events) in batches.iter().enumerate() {
                        if i % args.sample_every == args.sample_every - 1 {
                            // Individually-timed placement frames: one
                            // round trip per event, the latency the
                            // paper's serving story cares about.
                            for event in events {
                                let t0 = Instant::now();
                                client.apply(event).expect("placement");
                                latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                            }
                        } else {
                            client.ingest(events).expect("batch placement");
                        }
                        events_done += events.len() as u64;
                    }
                    // Leave tenants live (no finish): the benchmark
                    // measures steady-state placement, not teardown.
                }
                (events_done, latencies_us)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let total_events: u64 = per_thread.iter().map(|(n, _)| n).sum();
    let mut latencies: Vec<f64> = per_thread.into_iter().flat_map(|(_, l)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).min(latencies.len()) - 1;
        latencies[idx]
    };
    let events_per_sec = total_events as f64 / wall;

    eprintln!(
        "loadgen: {total_events} events in {wall:.2}s -> {events_per_sec:.0} events/sec; \
         placement latency p50 {:.1}us p99 {:.1}us ({} samples)",
        pct(0.50),
        pct(0.99),
        latencies.len()
    );

    if let Some(out) = &args.out {
        if let Some(dir) = std::path::Path::new(out).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        let json = format!(
            "{{\n  \"experiment\": \"server\",\n  \"threads\": {},\n  \"tenants\": {},\n  \
             \"events_per_tenant\": {},\n  \"batch\": {},\n  \"total_events\": {},\n  \
             \"wall_seconds\": {:.3},\n  \"latency_samples\": {},\n  \"metrics\": {{\n    \
             \"server_events_per_sec\": {:.0},\n    \"p50_placement_latency_us\": {:.2},\n    \
             \"p99_placement_latency_us\": {:.2}\n  }}\n}}\n",
            args.threads,
            args.tenants,
            args.events_per_tenant,
            args.batch,
            total_events,
            wall,
            latencies.len(),
            events_per_sec,
            pct(0.50),
            pct(0.99),
        );
        let mut file = std::fs::File::create(out).expect("create output file");
        file.write_all(json.as_bytes()).expect("write snapshot");
        eprintln!("loadgen: wrote {out}");
    }

    if let Some(server) = server {
        server.stop();
    }
}
