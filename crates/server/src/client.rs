//! A typed wire client whose builder mirrors `Session::builder`.
//!
//! In-process and over-the-wire callers read identically:
//!
//! ```no_run
//! use dbp_numeric::rat;
//! use dbp_proto::ItemId;
//! use dbp_server::Client;
//!
//! let mut client = Client::builder("firstfit")
//!     .tenant("acme")
//!     .token("s3cret")
//!     .connect("127.0.0.1:9500")
//!     .unwrap();
//! let bin = client.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
//! println!("placed in {bin:?}");
//! ```
//!
//! Every call is one synchronous request/response exchange; server
//! refusals come back as [`ClientError::Remote`] carrying the typed
//! [`WireError`], so quota and auth failures are matchable, not
//! string-parsed.

use dbp_numeric::Rational;
use dbp_proto::{
    fast, parse_frame_payload, read_frame_raw, write_frame_bytes, Backend, BinId, Event, FrameRead,
    Hello, ItemId, PackingOutcome, RawFrame, Request, Response, SessionMetrics, SessionSnapshot,
    TickGrid, WireError,
};
use serde::Serialize;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport trouble (connect, read, write, framing damage).
    Io(io::Error),
    /// The server answered with a typed error frame.
    Remote(WireError),
    /// The server broke protocol (wrong frame type, early close).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Builder mirroring `Session::builder`: configure the tenant session
/// shape, then [`connect`](ClientBuilder::connect).
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    hello: Hello,
}

impl ClientBuilder {
    fn new(algo: &str) -> ClientBuilder {
        ClientBuilder {
            hello: Hello::new("default", algo),
        }
    }

    /// Tenant key to attach to (default `"default"`).
    pub fn tenant(mut self, tenant: impl Into<String>) -> ClientBuilder {
        self.hello.tenant = tenant.into();
        self
    }

    /// Auth token for the server's token policy.
    pub fn token(mut self, token: impl Into<String>) -> ClientBuilder {
        self.hello.token = Some(token.into());
        self
    }

    /// Engine backend (mirrors `SessionBuilder::backend`).
    pub fn backend(mut self, backend: Backend) -> ClientBuilder {
        self.hello.backend = backend;
        self
    }

    /// Declared tick grid (mirrors `SessionBuilder::grid`).
    pub fn grid(mut self, grid: TickGrid) -> ClientBuilder {
        self.hello.grid = Some(grid);
        self
    }

    /// Shard the tenant across `n` sessions routed by `id % n`.
    pub fn shards(mut self, n: u32) -> ClientBuilder {
        self.hello.shards = n;
        self
    }

    /// Enable per-session telemetry (mirrors
    /// `SessionBuilder::telemetry`).
    pub fn telemetry(mut self) -> ClientBuilder {
        self.hello.telemetry = true;
        self
    }

    /// Disable server-side journaling for this tenant: memory stays
    /// flat, `snapshot` becomes unavailable, and a server crash loses
    /// the stream (mirrors `SessionBuilder::without_checkpoints`).
    pub fn without_journal(mut self) -> ClientBuilder {
        self.hello.journal = false;
        self
    }

    /// Connects, performs the hello exchange, and returns an attached
    /// client.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
        let writer = BufWriter::with_capacity(1 << 16, stream);
        let mut client = Client {
            reader,
            writer,
            out: Vec::new(),
            scratch: Vec::new(),
            resumed_events: 0,
        };
        match client.exchange(&Request::Hello(self.hello))? {
            Response::Hello { resumed_events, .. } => {
                client.resumed_events = resumed_events;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("hello", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected a `{wanted}` response, got {got:?}"))
}

/// An attached wire client driving one tenant.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    out: Vec<u8>,
    scratch: Vec<u8>,
    resumed_events: u64,
}

impl Client {
    /// Starts a builder for `algo` (CLI-style names: `firstfit`,
    /// `bestfit`, ...), mirroring `Session::builder`.
    pub fn builder(algo: &str) -> ClientBuilder {
        ClientBuilder::new(algo)
    }

    /// How many journaled events the server replayed before this
    /// connection attached (0 for a fresh tenant).
    pub fn resumed_events(&self) -> u64 {
        self.resumed_events
    }

    /// One request/response exchange. Error frames are *not* turned
    /// into `Err` here — callers match on the expected variant.
    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        // Placement frames take the canonical fast writer; everything
        // else is cold and goes through the generic codec.
        self.out.clear();
        match request {
            Request::Event(ev) => fast::write_event_request(&mut self.out, ev),
            Request::Batch(events) => fast::write_batch_request(&mut self.out, events),
            _ => {
                let payload =
                    serde_json::to_string(&request.to_value()).expect("requests always serialize");
                self.out.extend_from_slice(payload.as_bytes());
            }
        }
        write_frame_bytes(&mut self.writer, &self.out)?;
        self.writer.flush()?;
        match read_frame_raw(&mut self.reader, &mut self.scratch)? {
            RawFrame::Eof => Err(ClientError::Protocol(
                "server closed the connection mid-exchange".to_string(),
            )),
            RawFrame::Payload => {
                if let Some(response) = fast::parse_response(&self.scratch) {
                    return Ok(response);
                }
                match parse_frame_payload::<Response>(&self.scratch) {
                    FrameRead::Frame(response) => Ok(response),
                    FrameRead::Eof => unreachable!("payload already delimited"),
                    FrameRead::Malformed(e) => Err(ClientError::Protocol(e)),
                }
            }
        }
    }

    fn expect_bin(&mut self, request: &Request) -> Result<BinId, ClientError> {
        match self.exchange(request)? {
            Response::Bin(bin) => Ok(bin),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("bin", &other)),
        }
    }

    /// An item arrives: returns its assigned bin (mirrors
    /// `Session::arrive`).
    pub fn arrive(
        &mut self,
        id: ItemId,
        size: Rational,
        time: Rational,
    ) -> Result<BinId, ClientError> {
        self.expect_bin(&Request::Event(Event::Arrive { id, size, time }))
    }

    /// An item departs: returns the bin it vacated (mirrors
    /// `Session::depart`).
    pub fn depart(&mut self, id: ItemId, time: Rational) -> Result<BinId, ClientError> {
        self.expect_bin(&Request::Event(Event::Depart { id, time }))
    }

    /// Applies one event (mirrors `Session::apply`).
    pub fn apply(&mut self, event: &Event) -> Result<BinId, ClientError> {
        self.expect_bin(&Request::Event(*event))
    }

    /// Applies a batch in order, returning one placement per event
    /// (mirrors `Session::ingest`, with placements).
    pub fn ingest(&mut self, events: &[Event]) -> Result<Vec<BinId>, ClientError> {
        match self.exchange(&Request::Batch(events.to_vec()))? {
            Response::Bins(bins) => Ok(bins),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("bins", &other)),
        }
    }

    /// Live tenant metrics, folded across shards (mirrors
    /// `Session::metrics`).
    pub fn metrics(&mut self) -> Result<SessionMetrics, ClientError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(*metrics),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// A resumable checkpoint of the tenant session (mirrors
    /// `Session::snapshot`).
    pub fn snapshot(&mut self) -> Result<SessionSnapshot, ClientError> {
        match self.exchange(&Request::Snapshot)? {
            Response::Snapshot(snapshot) => Ok(snapshot),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Finishes the tenant and returns its packing outcomes, one per
    /// shard (mirrors `Session::finish`).
    pub fn finish(mut self) -> Result<Vec<PackingOutcome>, ClientError> {
        match self.exchange(&Request::Finish)? {
            Response::Outcomes(outcomes) => Ok(outcomes),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("outcomes", &other)),
        }
    }

    /// Asks the server to stop (subject to its token policy).
    pub fn shutdown_server(mut self, token: Option<&str>) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown {
            token: token.map(str::to_string),
        })? {
            Response::Shutdown => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}
