//! A typed wire client whose builder mirrors `Session::builder`.
//!
//! In-process and over-the-wire callers read identically:
//!
//! ```no_run
//! use dbp_numeric::rat;
//! use dbp_proto::ItemId;
//! use dbp_server::Client;
//!
//! let mut client = Client::builder("firstfit")
//!     .tenant("acme")
//!     .token("s3cret")
//!     .connect("127.0.0.1:9500")
//!     .unwrap();
//! let bin = client.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
//! println!("placed in {bin:?}");
//! ```
//!
//! Every call is one synchronous request/response exchange; server
//! refusals come back as [`ClientError::Remote`] carrying the typed
//! [`WireError`], so quota and auth failures are matchable, not
//! string-parsed.

use dbp_numeric::Rational;
use dbp_proto::{
    fast, read_frame_raw, write_frame_bytes, Backend, BinId, Event, Hello, ItemId, PackingOutcome,
    RawFrame, Request, Response, SessionMetrics, SessionSnapshot, TickGrid, WireError,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport trouble (connect, read, write, framing damage).
    Io(io::Error),
    /// The server answered with a typed error frame.
    Remote(WireError),
    /// The server broke protocol (wrong frame type, early close).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Builder mirroring `Session::builder`: configure the tenant session
/// shape, then [`connect`](ClientBuilder::connect).
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    hello: Hello,
    tracing: bool,
}

impl ClientBuilder {
    fn new(algo: &str) -> ClientBuilder {
        ClientBuilder {
            hello: Hello::new("default", algo),
            tracing: false,
        }
    }

    /// Tenant key to attach to (default `"default"`).
    pub fn tenant(mut self, tenant: impl Into<String>) -> ClientBuilder {
        self.hello.tenant = tenant.into();
        self
    }

    /// Auth token for the server's token policy.
    pub fn token(mut self, token: impl Into<String>) -> ClientBuilder {
        self.hello.token = Some(token.into());
        self
    }

    /// Engine backend (mirrors `SessionBuilder::backend`).
    pub fn backend(mut self, backend: Backend) -> ClientBuilder {
        self.hello.backend = backend;
        self
    }

    /// Declared tick grid (mirrors `SessionBuilder::grid`).
    pub fn grid(mut self, grid: TickGrid) -> ClientBuilder {
        self.hello.grid = Some(grid);
        self
    }

    /// Shard the tenant across `n` sessions routed by `id % n`.
    pub fn shards(mut self, n: u32) -> ClientBuilder {
        self.hello.shards = n;
        self
    }

    /// Enable per-session telemetry (mirrors
    /// `SessionBuilder::telemetry`).
    pub fn telemetry(mut self) -> ClientBuilder {
        self.hello.telemetry = true;
        self
    }

    /// Disable server-side journaling for this tenant: memory stays
    /// flat, `snapshot` becomes unavailable, and a server crash loses
    /// the stream (mirrors `SessionBuilder::without_checkpoints`).
    pub fn without_journal(mut self) -> ClientBuilder {
        self.hello.journal = false;
        self
    }

    /// Attach a fresh `trace` request id to every frame this client
    /// sends (the hello included) and verify the server echoes it back
    /// on the matching response. Tracing is per-frame and needs no
    /// negotiation — a server accepts traced frames from any client —
    /// so this only controls whether *this* client labels its
    /// requests (and can then join its latency records against the
    /// server's slow-request log).
    pub fn traced(mut self) -> ClientBuilder {
        self.tracing = true;
        self
    }

    /// Connects, performs the hello exchange, and returns an attached
    /// client.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
        let writer = BufWriter::with_capacity(1 << 16, stream);
        let mut client = Client {
            reader,
            writer,
            out: Vec::new(),
            scratch: Vec::new(),
            resumed_events: 0,
            tracing: self.tracing,
            next_trace: 1,
            last_trace: None,
        };
        match client.exchange(&Request::Hello(self.hello))? {
            Response::Hello { resumed_events, .. } => {
                client.resumed_events = resumed_events;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("hello", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected a `{wanted}` response, got {got:?}"))
}

/// An attached wire client driving one tenant.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    out: Vec<u8>,
    scratch: Vec<u8>,
    resumed_events: u64,
    tracing: bool,
    next_trace: u64,
    last_trace: Option<u64>,
}

impl Client {
    /// Starts a builder for `algo` (CLI-style names: `firstfit`,
    /// `bestfit`, ...), mirroring `Session::builder`.
    pub fn builder(algo: &str) -> ClientBuilder {
        ClientBuilder::new(algo)
    }

    /// How many journaled events the server replayed before this
    /// connection attached (0 for a fresh tenant).
    pub fn resumed_events(&self) -> u64 {
        self.resumed_events
    }

    /// The `trace` id the server echoed on the most recent exchange
    /// (`None` before any exchange, or when this client is untraced).
    pub fn echoed_trace(&self) -> Option<u64> {
        self.last_trace
    }

    /// One request/response exchange. Error frames are *not* turned
    /// into `Err` here — callers match on the expected variant. A
    /// traced client stamps each request with a fresh id and checks
    /// the echo, so a response can never be attributed to the wrong
    /// request.
    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        let trace = self.tracing.then(|| {
            let id = self.next_trace;
            self.next_trace += 1;
            id
        });
        // Placement frames take the canonical fast writer; everything
        // else is cold and goes through the generic codec.
        self.out.clear();
        match request {
            Request::Event(ev) => fast::write_event_request_traced(&mut self.out, ev, trace),
            Request::Batch(events) => {
                fast::write_batch_request_traced(&mut self.out, events, trace)
            }
            _ => {
                let payload = serde_json::to_string(&request.to_traced_value(trace))
                    .expect("requests always serialize");
                self.out.extend_from_slice(payload.as_bytes());
            }
        }
        write_frame_bytes(&mut self.writer, &self.out)?;
        self.writer.flush()?;
        let (response, echoed) = match read_frame_raw(&mut self.reader, &mut self.scratch)? {
            RawFrame::Eof => {
                return Err(ClientError::Protocol(
                    "server closed the connection mid-exchange".to_string(),
                ))
            }
            RawFrame::Payload => match fast::parse_response_traced(&self.scratch) {
                Some(traced) => traced,
                None => {
                    let text = std::str::from_utf8(&self.scratch)
                        .map_err(|e| ClientError::Protocol(format!("frame is not UTF-8: {e}")))?;
                    let value = serde_json::parse(text)
                        .map_err(|e| ClientError::Protocol(format!("frame is not JSON: {e}")))?;
                    Response::from_traced_value(&value)
                        .map_err(|e| ClientError::Protocol(e.to_string()))?
                }
            },
        };
        if trace.is_some() && echoed != trace {
            return Err(ClientError::Protocol(format!(
                "trace id mismatch: sent {trace:?}, server echoed {echoed:?}"
            )));
        }
        self.last_trace = echoed;
        Ok(response)
    }

    fn expect_bin(&mut self, request: &Request) -> Result<BinId, ClientError> {
        match self.exchange(request)? {
            Response::Bin(bin) => Ok(bin),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("bin", &other)),
        }
    }

    /// An item arrives: returns its assigned bin (mirrors
    /// `Session::arrive`).
    pub fn arrive(
        &mut self,
        id: ItemId,
        size: Rational,
        time: Rational,
    ) -> Result<BinId, ClientError> {
        self.expect_bin(&Request::Event(Event::Arrive { id, size, time }))
    }

    /// An item departs: returns the bin it vacated (mirrors
    /// `Session::depart`).
    pub fn depart(&mut self, id: ItemId, time: Rational) -> Result<BinId, ClientError> {
        self.expect_bin(&Request::Event(Event::Depart { id, time }))
    }

    /// Applies one event (mirrors `Session::apply`).
    pub fn apply(&mut self, event: &Event) -> Result<BinId, ClientError> {
        self.expect_bin(&Request::Event(*event))
    }

    /// Applies a batch in order, returning one placement per event
    /// (mirrors `Session::ingest`, with placements).
    pub fn ingest(&mut self, events: &[Event]) -> Result<Vec<BinId>, ClientError> {
        match self.exchange(&Request::Batch(events.to_vec()))? {
            Response::Bins(bins) => Ok(bins),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("bins", &other)),
        }
    }

    /// Live tenant metrics, folded across shards (mirrors
    /// `Session::metrics`).
    pub fn metrics(&mut self) -> Result<SessionMetrics, ClientError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(*metrics),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// A resumable checkpoint of the tenant session (mirrors
    /// `Session::snapshot`).
    pub fn snapshot(&mut self) -> Result<SessionSnapshot, ClientError> {
        match self.exchange(&Request::Snapshot)? {
            Response::Snapshot(snapshot) => Ok(snapshot),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Finishes the tenant and returns its packing outcomes, one per
    /// shard (mirrors `Session::finish`).
    pub fn finish(mut self) -> Result<Vec<PackingOutcome>, ClientError> {
        match self.exchange(&Request::Finish)? {
            Response::Outcomes(outcomes) => Ok(outcomes),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("outcomes", &other)),
        }
    }

    /// Asks the server to stop (subject to its token policy).
    pub fn shutdown_server(mut self, token: Option<&str>) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown {
            token: token.map(str::to_string),
        })? {
            Response::Shutdown => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}
