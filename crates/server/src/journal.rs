//! Per-tenant durability: an append-only event journal.
//!
//! One file per tenant under the server's journal directory. The
//! first line is a versioned header recording everything needed to
//! rebuild the session shape (algorithm, backend, grid, shards,
//! telemetry); every line after it is one accepted event in the shared
//! [`dbp_proto`] line format — the same bytes a stream CLI trace uses.
//!
//! The durability contract: an event's journal line is written and
//! flushed **before** the placement response is sent, so any event a
//! client saw acknowledged survives a crash. Recovery replays the
//! journal through the identical session machinery, which makes the
//! resumed tenant bit-identical to one that never stopped — the
//! property the crash-recovery integration test pins down.

use dbp_proto::{event_to_line, parse_event_line, Backend, Event, TickGrid, WIRE_VERSION};
use serde::{Deserialize, Serialize, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The session shape recorded in a journal header (everything a
/// restart needs besides the events themselves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Tenant key.
    pub tenant: String,
    /// Canonical algorithm name (as `Session::algorithm` reports it).
    pub algo: String,
    /// Engine backend.
    pub backend: Backend,
    /// Declared tick grid, if any.
    pub grid: Option<TickGrid>,
    /// Shard count (1 = single session).
    pub shards: u32,
    /// Whether per-session telemetry was on.
    pub telemetry: bool,
}

impl Serialize for JournalHeader {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("tenant".to_string(), Value::Str(self.tenant.clone())),
            ("algo".to_string(), Value::Str(self.algo.clone())),
            ("backend".to_string(), self.backend.to_value()),
            ("shards".to_string(), Value::Int(self.shards as i128)),
            ("telemetry".to_string(), Value::Bool(self.telemetry)),
        ];
        if let Some(grid) = &self.grid {
            fields.push(("grid".to_string(), grid.to_value()));
        }
        Value::Object(vec![
            ("v".to_string(), Value::Int(WIRE_VERSION)),
            ("journal".to_string(), Value::Object(fields)),
        ])
    }
}

impl Deserialize for JournalHeader {
    fn from_value(v: &Value) -> Result<JournalHeader, serde::Error> {
        let body = v
            .get("journal")
            .ok_or_else(|| serde::Error::missing_field("journal", "journal header"))?;
        let get = |name: &str| {
            body.get(name)
                .ok_or_else(|| serde::Error::missing_field(name, "journal header"))
        };
        Ok(JournalHeader {
            tenant: String::from_value(get("tenant")?)?,
            algo: String::from_value(get("algo")?)?,
            backend: Backend::from_value(get("backend")?)?,
            grid: match body.get("grid") {
                Some(Value::Null) | None => None,
                Some(g) => Some(TickGrid::from_value(g)?),
            },
            shards: u32::from_value(get("shards")?)?,
            telemetry: bool::from_value(get("telemetry")?)?,
        })
    }
}

/// An open per-tenant journal, appending accepted events.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

/// The journal file for `tenant` under `dir`. Tenant keys are
/// sanitized to a filename-safe alphabet so a hostile tenant name
/// can't traverse paths.
pub fn journal_path(dir: &Path, tenant: &str) -> PathBuf {
    let safe: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.journal"))
}

impl Journal {
    /// Creates a fresh journal for a new tenant, writing its header.
    pub fn create(dir: &Path, header: &JournalHeader) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let path = journal_path(dir, &header.tenant);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let mut journal = Journal {
            path,
            writer: BufWriter::new(file),
        };
        let line =
            serde_json::to_string(&header.to_value()).expect("journal headers always serialize");
        journal.writer.write_all(line.as_bytes())?;
        journal.writer.write_all(b"\n")?;
        journal.writer.flush()?;
        Ok(journal)
    }

    /// Reopens an existing journal for appending (after recovery).
    pub fn reopen(dir: &Path, tenant: &str) -> io::Result<Journal> {
        let path = journal_path(dir, tenant);
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal {
            path,
            writer: BufWriter::new(file),
        })
    }

    /// Appends accepted events and flushes — must complete before the
    /// events are acknowledged on the wire.
    pub fn append(&mut self, events: &[Event]) -> io::Result<()> {
        for event in events {
            self.writer.write_all(event_to_line(event).as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()
    }

    /// Removes the journal file (after a successful finish — the
    /// tenant's history is sealed in its outcome, nothing to recover).
    pub fn remove(self) -> io::Result<()> {
        let path = self.path.clone();
        drop(self);
        fs::remove_file(path)
    }
}

/// A parsed journal: the header plus every event it recorded.
#[derive(Debug)]
pub struct RecoveredJournal {
    /// Session shape to rebuild.
    pub header: JournalHeader,
    /// Events in acceptance order.
    pub events: Vec<Event>,
}

/// Reads one journal file back.
pub fn read_journal(path: &Path) -> io::Result<RecoveredJournal> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| bad(format!("{}: empty journal", path.display())))??;
    let header_value = serde_json::parse(&header_line)
        .map_err(|e| bad(format!("{}: bad journal header: {e}", path.display())))?;
    let header = JournalHeader::from_value(&header_value)
        .map_err(|e| bad(format!("{}: bad journal header: {e}", path.display())))?;
    let mut events = Vec::new();
    for line in lines {
        let line = line?;
        match parse_event_line(&line) {
            Some(Ok(event)) => events.push(event),
            Some(Err(e)) => return Err(bad(format!("{}: bad journal line: {e}", path.display()))),
            None => {}
        }
    }
    Ok(RecoveredJournal { header, events })
}

/// Every journal found under `dir`, in deterministic (path-sorted)
/// order. Missing directory means no tenants to recover.
pub fn scan_journals(dir: &Path) -> io::Result<Vec<RecoveredJournal>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "journal"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    paths.iter().map(|p| read_journal(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::ItemId;
    use dbp_numeric::rat;

    fn header() -> JournalHeader {
        JournalHeader {
            tenant: "acme".into(),
            algo: "FirstFit".into(),
            backend: Backend::Auto,
            grid: Some(TickGrid::new(1, 64)),
            shards: 2,
            telemetry: true,
        }
    }

    #[test]
    fn journal_round_trips_header_and_events() {
        let dir = std::env::temp_dir().join(format!("dbp-journal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let events = vec![
            Event::Arrive {
                id: ItemId(0),
                size: rat(1, 2),
                time: rat(0, 1),
            },
            Event::Depart {
                id: ItemId(0),
                time: rat(3, 1),
            },
        ];
        let mut journal = Journal::create(&dir, &header()).unwrap();
        journal.append(&events[..1]).unwrap();
        // Reopen mid-life, as recovery does, and keep appending.
        drop(journal);
        let mut journal = Journal::reopen(&dir, "acme").unwrap();
        journal.append(&events[1..]).unwrap();

        let recovered = scan_journals(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].header, header());
        assert_eq!(recovered[0].events, events);

        journal.remove().unwrap();
        assert!(scan_journals(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_tenant_names_stay_in_the_directory() {
        let dir = Path::new("/tmp/journals");
        let path = journal_path(dir, "../../etc/passwd");
        assert!(path.starts_with(dir));
        assert_eq!(path.file_name().unwrap(), "______etc_passwd.journal");
    }

    #[test]
    fn missing_directory_scans_empty() {
        let dir = Path::new("/tmp/definitely-not-a-dbp-journal-dir-12345");
        assert!(scan_journals(dir).unwrap().is_empty());
    }
}
