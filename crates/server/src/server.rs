//! The allocation daemon: accept loop, connection handling, tenant
//! registry, and the merged exposition page.
//!
//! The accept loop follows the `MetricsServer` pattern — a
//! non-blocking `TcpListener` polled against a stop flag — but every
//! accepted connection gets its own thread speaking the
//! length-prefixed [`dbp_proto`] protocol. Connections are stateless
//! beyond "which tenant am I attached to": all tenant state lives in
//! the shared registry, so many connections can drive one tenant and
//! a restarted server rebuilds everything from journals.

use crate::journal::scan_journals;
use crate::quota::Quotas;
use crate::span::{Phase, RequestSpan, SlowRequest, SlowRing};
use crate::tenant::Tenant;
use crate::ServerError;
use dbp_obs::{MetricsRegistry, MetricsServer};
use dbp_proto::{
    fast, read_frame_raw, write_frame_bytes, ErrorKind, RawFrame, Request, Response, WireError,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Who may attach tenants (and stop the server).
#[derive(Debug, Clone, Default)]
pub enum TokenPolicy {
    /// No authentication: any hello is accepted. For loopback
    /// benchmarking and tests.
    #[default]
    Open,
    /// One shared secret for every tenant.
    Shared(String),
    /// A token per tenant key; tenants without an entry are refused.
    PerTenant(HashMap<String, String>),
}

impl TokenPolicy {
    fn check(&self, tenant: &str, token: Option<&str>) -> Result<(), WireError> {
        let expected = match self {
            TokenPolicy::Open => return Ok(()),
            TokenPolicy::Shared(secret) => Some(secret.as_str()),
            TokenPolicy::PerTenant(map) => map.get(tenant).map(String::as_str),
        };
        match (expected, token) {
            (Some(want), Some(got)) if want == got => Ok(()),
            (None, _) => Err(WireError::new(
                ErrorKind::Auth,
                format!("tenant `{tenant}` is not provisioned"),
            )),
            _ => Err(WireError::new(
                ErrorKind::Auth,
                format!("bad or missing token for tenant `{tenant}`"),
            )),
        }
    }

    /// Shutdown uses the same policy: open servers stop on request,
    /// shared-secret servers require the secret, per-tenant servers
    /// accept any provisioned tenant's token.
    fn check_shutdown(&self, token: Option<&str>) -> Result<(), WireError> {
        match self {
            TokenPolicy::Open => Ok(()),
            TokenPolicy::Shared(secret) => match token {
                Some(got) if got == secret => Ok(()),
                _ => Err(WireError::new(
                    ErrorKind::Auth,
                    "bad or missing shutdown token",
                )),
            },
            TokenPolicy::PerTenant(map) => match token {
                Some(got) if map.values().any(|t| t == got) => Ok(()),
                _ => Err(WireError::new(
                    ErrorKind::Auth,
                    "bad or missing shutdown token",
                )),
            },
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Wire-protocol listen address (port 0 picks a free port).
    pub listen: String,
    /// OpenMetrics scrape address; `None` disables the page.
    pub metrics: Option<String>,
    /// Authentication policy.
    pub auth: TokenPolicy,
    /// Quotas applied to every tenant.
    pub quotas: Quotas,
    /// Journal directory; `None` disables durability (snapshots and
    /// recovery) server-wide.
    pub journal_dir: Option<PathBuf>,
    /// Rebuild the exposition page every this many accepted events
    /// (hellos, finishes, and metrics requests always rebuild).
    pub publish_every: u64,
    /// Record placement requests slower than this many milliseconds in
    /// the slow-request ring (`0` records everything). `None` leaves
    /// the ring off unless `trace_out` turns it on.
    pub slow_ms: Option<u64>,
    /// Where to dump the slow-request ring on shutdown: JSONL at this
    /// path, plus a Chrome trace next to it (`.chrome.json`). Setting
    /// this enables the ring even without `slow_ms`.
    pub trace_out: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            metrics: None,
            auth: TokenPolicy::Open,
            quotas: Quotas::unlimited(),
            journal_dir: None,
            publish_every: 8192,
            slow_ms: None,
            trace_out: None,
        }
    }
}

/// Shared server state: the tenant registry plus exposition counters.
struct Shared {
    config: ServerConfig,
    tenants: Mutex<HashMap<String, Arc<Mutex<Option<Tenant>>>>>,
    stop: AtomicBool,
    /// Live client connections, so `stop` can unblock their reads.
    conns: Mutex<Vec<TcpStream>>,
    /// Exposition page (shared with the `MetricsServer` thread).
    page: Option<Arc<Mutex<MetricsRegistry>>>,
    /// When the server started — the zero point of the slow-request
    /// (and Chrome) timeline.
    origin: Instant,
    /// The slow-request ring, when `slow_ms` / `trace_out` enabled it.
    slow: Option<Mutex<SlowRing>>,
    // Server-wide counters for the page.
    connections_total: AtomicU64,
    frames_total: AtomicU64,
    events_total: AtomicU64,
    errors_total: AtomicU64,
    since_publish: AtomicU64,
}

impl Shared {
    /// Builds the exposition page from scratch: server counters,
    /// per-tenant prefixed registries, and the un-prefixed lawful
    /// merge of every tenant's registry.
    fn build_page(&self) -> MetricsRegistry {
        let mut fresh = MetricsRegistry::new();
        // The renderer suffixes counter samples with `_total` itself.
        fresh.inc_by(
            "server_connections",
            self.connections_total.load(Ordering::Relaxed),
        );
        fresh.inc_by("server_frames", self.frames_total.load(Ordering::Relaxed));
        fresh.inc_by("server_events", self.events_total.load(Ordering::Relaxed));
        fresh.inc_by("server_errors", self.errors_total.load(Ordering::Relaxed));
        let tenants = self.tenants.lock().unwrap();
        fresh.set_gauge("server_tenants", tenants.len() as f64);
        for (name, slot) in tenants.iter() {
            let guard = slot.lock().unwrap();
            let Some(tenant) = guard.as_ref() else {
                continue;
            };
            let registry = tenant.registry();
            fresh.merge_prefixed(&tenant_prefix(name), &registry);
            fresh.merge(&registry);
        }
        drop(tenants);
        fresh
    }

    /// Rebuilds the shared page the scrape listener serves.
    fn publish(&self) {
        let Some(page) = &self.page else { return };
        let fresh = self.build_page();
        *page.lock().unwrap() = fresh;
    }

    fn count_events(&self, n: u64) {
        self.events_total.fetch_add(n, Ordering::Relaxed);
        let since = self.since_publish.fetch_add(n, Ordering::Relaxed) + n;
        if since >= self.config.publish_every {
            self.since_publish.store(0, Ordering::Relaxed);
            self.publish();
        }
    }
}

/// `tenant_<sanitized>_` — the per-tenant namespace on the page.
fn tenant_prefix(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("tenant_{safe}_")
}

/// A running allocation daemon.
pub struct DbpServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    metrics_addr: Option<std::net::SocketAddr>,
    accept_handle: Option<JoinHandle<()>>,
    metrics_server: Option<MetricsServer>,
    trace_dumped: bool,
}

impl DbpServer {
    /// Binds the wire and scrape listeners, recovers every journaled
    /// tenant from `config.journal_dir`, and starts serving.
    pub fn start(config: ServerConfig) -> Result<DbpServer, ServerError> {
        let listener = TcpListener::bind(&config.listen).map_err(ServerError::Io)?;
        listener.set_nonblocking(true).map_err(ServerError::Io)?;
        let addr = listener.local_addr().map_err(ServerError::Io)?;

        let metrics_server = match &config.metrics {
            Some(addr) => Some(MetricsServer::start(addr.as_str()).map_err(ServerError::Io)?),
            None => None,
        };
        let metrics_addr = metrics_server.as_ref().map(MetricsServer::local_addr);
        let page = metrics_server.as_ref().map(|s| Arc::clone(s.registry()));

        // Crash recovery: rebuild every journaled tenant before the
        // first connection can attach.
        let mut tenants: HashMap<String, Arc<Mutex<Option<Tenant>>>> = HashMap::new();
        if let Some(dir) = &config.journal_dir {
            for recovered in scan_journals(dir).map_err(ServerError::Io)? {
                let tenant = Tenant::recover(recovered, config.quotas, dir)?;
                tenants.insert(
                    tenant.name().to_string(),
                    Arc::new(Mutex::new(Some(tenant))),
                );
            }
        }

        // The slow ring runs whenever a threshold or a dump path asks
        // for it; `--slow-ms 0` (or a bare `--trace-out`) records every
        // placement, bounded by the ring capacity.
        let slow = (config.slow_ms.is_some() || config.trace_out.is_some()).then(|| {
            Mutex::new(SlowRing::new(Duration::from_millis(
                config.slow_ms.unwrap_or(0),
            )))
        });
        let shared = Arc::new(Shared {
            config,
            tenants: Mutex::new(tenants),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            page,
            origin: Instant::now(),
            slow,
            connections_total: AtomicU64::new(0),
            frames_total: AtomicU64::new(0),
            events_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            since_publish: AtomicU64::new(0),
        });
        shared.publish();

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("dbp-server-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(ServerError::Io)?;

        Ok(DbpServer {
            shared,
            addr,
            metrics_addr,
            accept_handle: Some(accept_handle),
            metrics_server,
            trace_dumped: false,
        })
    }

    /// The bound wire address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The bound scrape address, when metrics are enabled.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_addr
    }

    /// A fresh copy of the merged exposition page, rebuilt now —
    /// available whether or not a scrape listener is running, so
    /// in-process harnesses (loadgen, tests) can read
    /// `tenant_<name>_request_latency_us` and friends without HTTP.
    pub fn registry_snapshot(&self) -> MetricsRegistry {
        self.shared.build_page()
    }

    /// Stops the daemon: closes the listener, severs every client
    /// connection, and joins the accept thread. Tenant journals stay
    /// on disk — from a client's perspective this *is* a crash, and a
    /// restarted server resumes every journaled tenant verbatim.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Blocks until the daemon stops on its own — a wire `shutdown`
    /// frame — then runs the same cleanup as [`DbpServer::stop`].
    /// This is how `mindbp serve` parks its main thread.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(server) = self.metrics_server.take() {
            server.stop();
        }
        self.dump_slow_ring();
    }

    /// Writes the slow-request ring to `trace_out` (JSONL) and its
    /// `.chrome.json` sibling (chrome://tracing / Perfetto). Runs once,
    /// after every connection thread has joined; best-effort on I/O.
    fn dump_slow_ring(&mut self) {
        if self.trace_dumped {
            return;
        }
        self.trace_dumped = true;
        let Some(path) = &self.shared.config.trace_out else {
            return;
        };
        let Some(ring) = &self.shared.slow else {
            return;
        };
        let ring = ring.lock().unwrap();
        let chrome =
            serde_json::to_string(&ring.chrome_trace()).expect("slow-ring chrome traces serialize");
        let _ = std::fs::write(path, ring.to_jsonl());
        let _ = std::fs::write(path.with_extension("chrome.json"), chrome);
    }
}

impl Drop for DbpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The connection ordinal doubles as the Chrome track id
                // for this connection's slow-request spans.
                let conn = shared.connections_total.fetch_add(1, Ordering::Relaxed) + 1;
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().push(clone);
                }
                let conn_shared = Arc::clone(&shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("dbp-server-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, conn_shared, conn);
                    })
                {
                    workers.push(handle);
                }
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Sever live connections so workers blocked in a read unblock
    // (wire-initiated shutdowns reach here with clients still parked).
    for conn in shared.conns.lock().unwrap().drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    for handle in workers {
        let _ = handle.join();
    }
}

// Serializes `response` into `out`, echoing the request's `trace` id
// when there is one. Placement answers take the canonical fast
// writer; cold frames go through the generic codec.
fn encode_response(out: &mut Vec<u8>, response: &Response, trace: Option<u64>) {
    out.clear();
    match response {
        Response::Bin(bin) => fast::write_bin_response_traced(out, *bin, trace),
        Response::Bins(bins) => fast::write_bins_response_traced(out, bins, trace),
        _ => {
            let payload = serde_json::to_string(&response.to_traced_value(trace))
                .expect("responses always serialize");
            out.extend_from_slice(payload.as_bytes());
        }
    }
}

// Encode + frame + flush, for responses outside the timed placement
// path. `out` is reused across frames.
fn send(
    w: &mut impl Write,
    out: &mut Vec<u8>,
    response: &Response,
    trace: Option<u64>,
) -> io::Result<()> {
    encode_response(out, response, trace);
    write_frame_bytes(w, out)?;
    w.flush()
}

/// One decoded request frame, with its optional `trace` id and how
/// long the payload took to parse (the span's Decode phase — socket
/// wait excluded, which is the client's time, not ours).
struct TracedRequest {
    request: Request,
    trace: Option<u64>,
    decode_ns: u64,
}

enum ReadOutcome {
    Eof,
    Malformed(String),
    Frame(TracedRequest),
}

// One request frame: canonical placement frames parse on the fast
// path, everything else falls back to the generic codec. Both paths
// surface the frame's `trace` id — tracing is per-frame and needs no
// negotiation, so a client may start (or stop) sending ids anytime.
fn read_request(r: &mut impl io::BufRead, scratch: &mut Vec<u8>) -> io::Result<ReadOutcome> {
    match read_frame_raw(r, scratch)? {
        RawFrame::Eof => Ok(ReadOutcome::Eof),
        RawFrame::Payload => {
            let t = Instant::now();
            let parsed = match fast::parse_request_traced(scratch) {
                Some(traced) => Ok(traced),
                None => match std::str::from_utf8(scratch) {
                    Ok(text) => match serde_json::parse(text) {
                        Ok(value) => Request::from_traced_value(&value).map_err(|e| e.to_string()),
                        Err(e) => Err(format!("frame is not JSON: {e}")),
                    },
                    Err(e) => Err(format!("frame is not UTF-8: {e}")),
                },
            };
            let decode_ns = t.elapsed().as_nanos() as u64;
            Ok(match parsed {
                Ok((request, trace)) => ReadOutcome::Frame(TracedRequest {
                    request,
                    trace,
                    decode_ns,
                }),
                Err(e) => ReadOutcome::Malformed(e),
            })
        }
    }
}

// Closes a placement span: encodes the response under the Encode
// phase, folds the span into the tenant's wire stats, and offers it
// to the slow ring. Returns whether the response is an error frame.
fn finish_placement(
    shared: &Shared,
    tenant_name: &str,
    conn: u64,
    guard: &mut Option<Tenant>,
    mut span: RequestSpan,
    response: &Response,
    out: &mut Vec<u8>,
) -> bool {
    let trace = span.trace;
    span.time(Phase::Encode, || encode_response(out, response, trace));
    let total = span.finish();
    let slow = match &shared.slow {
        Some(ring) => total >= ring.lock().unwrap().threshold_ns(),
        None => false,
    };
    if let Some(tenant) = guard.as_mut() {
        tenant.record_request(&span, total, slow);
    }
    if slow {
        if let Some(ring) = &shared.slow {
            let entry = SlowRequest::from_span(&span, tenant_name, conn, shared.origin);
            ring.lock().unwrap().offer(entry);
        }
    }
    matches!(response, Response::Error(_))
}

/// One connection's lifecycle: hello, then a request/response loop
/// against the attached tenant. `conn` is the connection ordinal
/// (slow-request Chrome track id).
fn serve_connection(stream: TcpStream, shared: Arc<Shared>, conn: u64) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 16, stream);
    let mut scratch: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();

    // Hello first. Protocol violations before attach get one typed
    // error and the connection closes. A traced hello gets its id
    // echoed like any other frame.
    let (hello, hello_trace) = match read_request(&mut reader, &mut scratch)? {
        ReadOutcome::Eof => return Ok(()),
        ReadOutcome::Malformed(e) => {
            shared.errors_total.fetch_add(1, Ordering::Relaxed);
            send(
                &mut writer,
                &mut out,
                &Response::Error(WireError::new(ErrorKind::Protocol, e)),
                None,
            )?;
            return Ok(());
        }
        ReadOutcome::Frame(TracedRequest {
            request: Request::Hello(hello),
            trace,
            ..
        }) => (hello, trace),
        ReadOutcome::Frame(TracedRequest {
            request: Request::Shutdown { token },
            trace,
            ..
        }) => {
            return handle_shutdown(&mut writer, &mut out, &shared, token.as_deref(), trace);
        }
        ReadOutcome::Frame(TracedRequest { trace, .. }) => {
            shared.errors_total.fetch_add(1, Ordering::Relaxed);
            send(
                &mut writer,
                &mut out,
                &Response::Error(WireError::new(
                    ErrorKind::Protocol,
                    "first frame must be `hello`",
                )),
                trace,
            )?;
            return Ok(());
        }
    };
    shared.frames_total.fetch_add(1, Ordering::Relaxed);

    if let Err(e) = shared
        .config
        .auth
        .check(&hello.tenant, hello.token.as_deref())
    {
        shared.errors_total.fetch_add(1, Ordering::Relaxed);
        send(&mut writer, &mut out, &Response::Error(e), hello_trace)?;
        return Ok(());
    }

    // Attach: reuse the live tenant or create one. The per-tenant slot
    // is created under the registry lock; the (possibly slow) session
    // build happens under the slot lock only.
    let slot = {
        let mut tenants = shared.tenants.lock().unwrap();
        Arc::clone(
            tenants
                .entry(hello.tenant.clone())
                .or_insert_with(|| Arc::new(Mutex::new(None))),
        )
    };
    {
        let mut guard = slot.lock().unwrap();
        if guard.is_none() {
            match Tenant::create(
                &hello,
                shared.config.quotas,
                shared.config.journal_dir.as_deref(),
            ) {
                Ok(tenant) => *guard = Some(tenant),
                Err(e) => {
                    // The empty slot stays in the map: it publishes
                    // nothing and a corrected hello reuses it.
                    drop(guard);
                    shared.errors_total.fetch_add(1, Ordering::Relaxed);
                    send(
                        &mut writer,
                        &mut out,
                        &Response::Error(e.into_wire()),
                        hello_trace,
                    )?;
                    return Ok(());
                }
            }
        }
        let resumed = guard.as_ref().map(Tenant::accepted).unwrap_or(0);
        send(
            &mut writer,
            &mut out,
            &Response::Hello {
                tenant: hello.tenant.clone(),
                resumed_events: resumed,
            },
            hello_trace,
        )?;
    }
    shared.publish();

    // Steady state.
    loop {
        let TracedRequest {
            request,
            trace,
            decode_ns,
        } = match read_request(&mut reader, &mut scratch) {
            Ok(ReadOutcome::Eof) => return Ok(()),
            Ok(ReadOutcome::Frame(traced)) => traced,
            Ok(ReadOutcome::Malformed(e)) => {
                shared.errors_total.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut writer,
                    &mut out,
                    &Response::Error(WireError::new(ErrorKind::Protocol, e)),
                    None,
                )?;
                continue;
            }
            Err(e) => {
                // Transport damage or severed socket: nothing more to
                // say on this connection.
                return Err(e);
            }
        };
        shared.frames_total.fetch_add(1, Ordering::Relaxed);

        let response = match request {
            Request::Hello(_) => Response::Error(WireError::new(
                ErrorKind::Protocol,
                "connection is already attached to a tenant",
            )),
            // Placement requests are timed end to end: the tenant
            // charges Quota/Apply/Journal to the span, encoding runs
            // under the guard so the span covers it, and only the
            // socket write falls outside the measured window.
            Request::Event(event) => {
                let mut span = RequestSpan::new("event", 1, trace, decode_ns);
                let mut guard = slot.lock().unwrap();
                let response = match guard.as_mut() {
                    Some(tenant) => match tenant.apply(&event, &mut span) {
                        Ok(bin) => Response::Bin(bin),
                        Err(e) => Response::Error(e.into_wire()),
                    },
                    None => Response::Error(gone(&hello.tenant)),
                };
                let failed = finish_placement(
                    &shared,
                    &hello.tenant,
                    conn,
                    &mut guard,
                    span,
                    &response,
                    &mut out,
                );
                drop(guard);
                if failed {
                    shared.errors_total.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.count_events(1);
                }
                write_frame_bytes(&mut writer, &out)?;
                writer.flush()?;
                continue;
            }
            Request::Batch(events) => {
                let mut span = RequestSpan::new("batch", events.len() as u64, trace, decode_ns);
                let mut guard = slot.lock().unwrap();
                let response = match guard.as_mut() {
                    Some(tenant) => match tenant.batch(&events, &mut span) {
                        Ok(bins) => Response::Bins(bins),
                        Err(e) => Response::Error(e.into_wire()),
                    },
                    None => Response::Error(gone(&hello.tenant)),
                };
                let failed = finish_placement(
                    &shared,
                    &hello.tenant,
                    conn,
                    &mut guard,
                    span,
                    &response,
                    &mut out,
                );
                drop(guard);
                if failed {
                    shared.errors_total.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.count_events(events.len() as u64);
                }
                write_frame_bytes(&mut writer, &out)?;
                writer.flush()?;
                continue;
            }
            Request::Snapshot => {
                let guard = slot.lock().unwrap();
                match guard.as_ref() {
                    Some(tenant) => match tenant.snapshot() {
                        Ok(snapshot) => Response::Snapshot(snapshot),
                        Err(e) => Response::Error(e),
                    },
                    None => Response::Error(gone(&hello.tenant)),
                }
            }
            Request::Metrics => {
                let guard = slot.lock().unwrap();
                let response = match guard.as_ref() {
                    Some(tenant) => Response::Metrics(Box::new(tenant.metrics())),
                    None => Response::Error(gone(&hello.tenant)),
                };
                drop(guard);
                shared.publish();
                response
            }
            Request::Finish => {
                let mut guard = slot.lock().unwrap();
                match guard.take() {
                    Some(tenant) => match tenant.finish() {
                        Ok(outcomes) => {
                            drop(guard);
                            shared.tenants.lock().unwrap().remove(&hello.tenant);
                            shared.publish();
                            Response::Outcomes(outcomes)
                        }
                        Err((tenant, e)) => {
                            *guard = Some(*tenant);
                            Response::Error(e)
                        }
                    },
                    None => Response::Error(gone(&hello.tenant)),
                }
            }
            Request::Shutdown { token } => {
                return handle_shutdown(&mut writer, &mut out, &shared, token.as_deref(), trace);
            }
        };
        if matches!(response, Response::Error(_)) {
            shared.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        send(&mut writer, &mut out, &response, trace)?;
    }
}

fn gone(tenant: &str) -> WireError {
    WireError::new(
        ErrorKind::Unavailable,
        format!("tenant `{tenant}` has finished; say hello again to restart it"),
    )
}

fn handle_shutdown(
    writer: &mut impl Write,
    out: &mut Vec<u8>,
    shared: &Arc<Shared>,
    token: Option<&str>,
    trace: Option<u64>,
) -> io::Result<()> {
    match shared.config.auth.check_shutdown(token) {
        Ok(()) => {
            send(writer, out, &Response::Shutdown, trace)?;
            shared.stop.store(true, Ordering::Relaxed);
            Ok(())
        }
        Err(e) => {
            shared.errors_total.fetch_add(1, Ordering::Relaxed);
            send(writer, out, &Response::Error(e), trace)
        }
    }
}
