//! Per-tenant admission quotas.
//!
//! Quotas are *admission* controls, enforced before an event touches
//! the tenant's session, so a rejected event never perturbs packing
//! state. Bin and item caps are deliberately conservative (they
//! pre-check against the current session view rather than simulating
//! the placement), which keeps the hot path at two integer compares;
//! the rate limit is a classic token bucket holding one second of
//! burst.

use std::time::Instant;

/// Per-tenant resource limits. `None` disables a dimension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quotas {
    /// Maximum concurrently open bins across the tenant's shards.
    /// Conservative: arrivals are refused while the tenant is *at*
    /// the cap, even if the item would have fit an open bin.
    pub max_open_bins: Option<u64>,
    /// Maximum in-flight (arrived, not departed) items.
    pub max_active_items: Option<u64>,
    /// Sustained events per second, with a burst allowance of one
    /// second's worth.
    pub max_events_per_sec: Option<u64>,
}

impl Quotas {
    /// No limits on any dimension.
    pub fn unlimited() -> Quotas {
        Quotas::default()
    }
}

/// Token bucket: capacity and refill rate are both
/// `max_events_per_sec`, so a tenant can burst one second of events
/// and then sustains exactly the configured rate.
#[derive(Debug)]
pub struct RateLimiter {
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl RateLimiter {
    /// A bucket starting full.
    pub fn new(events_per_sec: u64) -> RateLimiter {
        let rate = events_per_sec as f64;
        RateLimiter {
            rate,
            tokens: rate,
            last: Instant::now(),
        }
    }

    /// Takes `n` tokens, refilling for elapsed wall time first.
    /// Returns `false` (taking nothing) if the bucket cannot cover
    /// the whole batch — a partial batch admit would split one wire
    /// frame into applied and refused halves.
    pub fn admit(&mut self, n: u64) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.rate);
        let need = n as f64;
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bursts_then_refuses() {
        let mut rl = RateLimiter::new(10);
        assert!(rl.admit(10), "full bucket covers one second of burst");
        assert!(!rl.admit(1), "drained bucket refuses");
    }

    #[test]
    fn batches_admit_all_or_nothing() {
        let mut rl = RateLimiter::new(10);
        assert!(rl.admit(4));
        assert!(!rl.admit(100), "oversized batch refused whole");
        assert!(rl.admit(6), "refusal consumed nothing");
    }

    #[test]
    fn bucket_refills_with_time() {
        let mut rl = RateLimiter::new(1_000_000);
        assert!(rl.admit(1_000_000));
        assert!(!rl.admit(1_000_000));
        std::thread::sleep(std::time::Duration::from_millis(20));
        // ~20ms at 1M/s refills ~20k tokens.
        assert!(rl.admit(10_000));
    }
}
