//! Request-phase spans and the slow-request ring.
//!
//! Every placement request (event or batch) a connection serves is
//! timed as a [`RequestSpan`]: five monotonic phases — Decode (frame
//! bytes → `Request`), Quota (admission), Apply (session placement),
//! Journal (append + flush), Encode (response → frame bytes) — on the
//! same `Instant`-based span discipline as `dbp_obs::prof`. Finished
//! spans fold into the owning tenant's [`WireStats`] (a log₂ latency
//! histogram plus per-phase nanosecond counters the exposition page
//! publishes as `tenant_<name>_request_latency_us`,
//! `tenant_<name>_request_<phase>_ns_total`, ...), and requests over
//! the server's `--slow-ms` threshold additionally land in a bounded
//! [`SlowRing`] dumped on shutdown as JSONL and as Chrome trace spans
//! (`chrome_trace_with_spans`), where they share a timeline with
//! in-engine `PhaseProbe` spans.
//!
//! Spans carry the frame's optional `trace` request id (see
//! `dbp_proto::frame`), so a slow-log line is joinable against
//! client-side records — but timing itself is unconditional: untraced
//! requests are measured identically, the id only labels them.

use dbp_obs::{chrome_trace_with_spans, Histogram, MetricsRegistry};
use serde::Value;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The five timed request phases, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Frame bytes → parsed `Request` (excludes socket wait).
    Decode = 0,
    /// Quota admission (rate limiter + arrival head-room checks).
    Quota = 1,
    /// Session / fleet placement.
    Apply = 2,
    /// Journal append + flush (the durability fsync before the ack).
    Journal = 3,
    /// Response → frame bytes (excludes the socket write).
    Encode = 4,
}

/// Phase names, indexed by `Phase as usize` — used for metric names
/// and Chrome span labels.
pub const PHASE_NAMES: [&str; 5] = ["decode", "quota", "apply", "journal", "encode"];

/// One placement request being timed.
#[derive(Debug)]
pub struct RequestSpan {
    /// The frame's `trace` request id, if the client sent one.
    pub trace: Option<u64>,
    /// `"event"` or `"batch"`.
    pub kind: &'static str,
    /// Events carried by the request (1 for single events).
    pub events: u64,
    /// Nanoseconds attributed to each phase.
    pub phase_ns: [u64; 5],
    /// Journal flushes performed while serving this request.
    pub fsyncs: u64,
    /// The request was refused at admission.
    pub quota_refused: bool,
    /// When the span opened (directly after decode completed).
    started: Instant,
    total_ns: u64,
}

impl RequestSpan {
    /// Opens a span for a just-decoded request; `decode_ns` is the
    /// parse time the frame reader already measured.
    pub fn new(kind: &'static str, events: u64, trace: Option<u64>, decode_ns: u64) -> RequestSpan {
        let mut phase_ns = [0u64; 5];
        phase_ns[Phase::Decode as usize] = decode_ns;
        RequestSpan {
            trace,
            kind,
            events,
            phase_ns,
            fsyncs: 0,
            quota_refused: false,
            started: Instant::now(),
            total_ns: 0,
        }
    }

    /// Attributes `elapsed` to `phase` (phases re-entered accumulate).
    pub fn record(&mut self, phase: Phase, elapsed: Duration) {
        self.phase_ns[phase as usize] += elapsed.as_nanos() as u64;
    }

    /// Times `f` under `phase`.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let answer = f();
        self.record(phase, t.elapsed());
        answer
    }

    /// Closes the span: total latency = decode + everything since the
    /// span opened (so inter-phase glue is counted, phases are an
    /// attribution of it). Idempotent from the first call's clock.
    pub fn finish(&mut self) -> u64 {
        if self.total_ns == 0 {
            self.total_ns =
                self.phase_ns[Phase::Decode as usize] + self.started.elapsed().as_nanos() as u64;
        }
        self.total_ns
    }

    /// Request start relative to `origin` (the span opened *after*
    /// decode, so decode time is subtracted back out).
    pub fn start_since(&self, origin: Instant) -> Duration {
        self.started
            .saturating_duration_since(origin)
            .saturating_sub(Duration::from_nanos(self.phase_ns[Phase::Decode as usize]))
    }
}

/// Per-tenant wire-level SLO accumulators, folded into the tenant's
/// exposition registry next to its stream telemetry.
#[derive(Debug, Default)]
pub struct WireStats {
    /// End-to-end request latency in microseconds (log₂ buckets, so
    /// p50/p99 are derivable from the rendered `_bucket` series).
    pub latency_us: Histogram,
    /// Nanoseconds attributed to each phase, across all requests —
    /// the per-phase share counters (share = phase / sum of phases).
    pub phase_ns: [u64; 5],
    /// Placement requests served (including refused ones).
    pub requests: u64,
    /// Requests that carried a `trace` id.
    pub traced_requests: u64,
    /// Requests refused at quota admission.
    pub quota_refusals: u64,
    /// Journal append + flush calls.
    pub journal_fsyncs: u64,
    /// Requests at or over the slow threshold.
    pub slow_requests: u64,
}

impl WireStats {
    /// Folds one finished span in.
    pub fn record(&mut self, span: &RequestSpan, total_ns: u64, slow: bool) {
        self.latency_us.observe(total_ns as f64 / 1e3);
        for (acc, ns) in self.phase_ns.iter_mut().zip(span.phase_ns) {
            *acc += ns;
        }
        self.requests += 1;
        if span.trace.is_some() {
            self.traced_requests += 1;
        }
        if span.quota_refused {
            self.quota_refusals += 1;
        }
        self.journal_fsyncs += span.fsyncs;
        if slow {
            self.slow_requests += 1;
        }
    }

    /// Publishes the accumulators into `registry` under the names the
    /// page merges (`request_latency_us`, `request_<phase>_ns`,
    /// `quota_refusals`, `journal_fsyncs`, ...).
    pub fn fold_into(&self, registry: &mut MetricsRegistry) {
        if self.requests == 0 {
            return;
        }
        registry.merge_histogram("request_latency_us", &self.latency_us);
        for (name, ns) in PHASE_NAMES.iter().zip(self.phase_ns) {
            registry.inc_by(&format!("request_{name}_ns"), ns);
        }
        registry.inc_by("requests", self.requests);
        registry.inc_by("traced_requests", self.traced_requests);
        registry.inc_by("quota_refusals", self.quota_refusals);
        registry.inc_by("journal_fsyncs", self.journal_fsyncs);
        registry.inc_by("slow_requests", self.slow_requests);
    }
}

/// One slow-log entry: a finished span pinned to the server timeline.
#[derive(Debug, Clone)]
pub struct SlowRequest {
    /// Tenant the request was served for.
    pub tenant: String,
    /// `"event"` or `"batch"`.
    pub kind: &'static str,
    /// The frame's `trace` id, if any.
    pub trace: Option<u64>,
    /// Connection ordinal (Chrome track id).
    pub conn: u64,
    /// Request start, µs since the server started.
    pub start_us: f64,
    /// End-to-end latency, µs.
    pub total_us: f64,
    /// Per-phase attribution, µs, indexed like [`PHASE_NAMES`].
    pub phase_us: [f64; 5],
    /// Events carried by the request.
    pub events: u64,
    /// The request was refused at admission.
    pub refused: bool,
}

impl SlowRequest {
    /// Builds an entry from a finished span.
    pub fn from_span(span: &RequestSpan, tenant: &str, conn: u64, origin: Instant) -> SlowRequest {
        let mut phase_us = [0f64; 5];
        for (us, ns) in phase_us.iter_mut().zip(span.phase_ns) {
            *us = ns as f64 / 1e3;
        }
        SlowRequest {
            tenant: tenant.to_string(),
            kind: span.kind,
            trace: span.trace,
            conn,
            start_us: span.start_since(origin).as_nanos() as f64 / 1e3,
            total_us: span.total_ns as f64 / 1e3,
            phase_us,
            events: span.events,
            refused: span.quota_refused,
        }
    }

    /// The JSONL line value.
    pub fn to_value(&self) -> Value {
        let mut obj = vec![
            ("tenant".to_string(), Value::Str(self.tenant.clone())),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
            (
                "trace".to_string(),
                match self.trace {
                    Some(id) => Value::Int(id as i128),
                    None => Value::Null,
                },
            ),
            ("conn".to_string(), Value::Int(self.conn as i128)),
            ("start_us".to_string(), Value::Float(self.start_us)),
            ("total_us".to_string(), Value::Float(self.total_us)),
            ("events".to_string(), Value::Int(self.events as i128)),
            ("refused".to_string(), Value::Bool(self.refused)),
        ];
        for (name, us) in PHASE_NAMES.iter().zip(self.phase_us) {
            obj.push((format!("{name}_us"), Value::Float(us)));
        }
        Value::Object(obj)
    }

    /// Chrome `"X"` spans: one request-level span plus one child per
    /// non-empty phase, laid out sequentially inside it. Server spans
    /// live on `pid` 3 (the engine timeline uses 1, the profiler 2)
    /// with one track per connection.
    pub fn chrome_spans(&self) -> Vec<Value> {
        let span = |name: String, ts: f64, dur: f64| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(name)),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Float(ts)),
                ("dur".to_string(), Value::Float(dur)),
                ("pid".to_string(), Value::Int(3)),
                ("tid".to_string(), Value::Int(self.conn as i128)),
            ])
        };
        let label = match self.trace {
            Some(id) => format!("{} {} trace={id}", self.tenant, self.kind),
            None => format!("{} {}", self.tenant, self.kind),
        };
        let mut spans = vec![span(label, self.start_us, self.total_us)];
        let mut at = self.start_us;
        for (name, us) in PHASE_NAMES.iter().zip(self.phase_us) {
            if us > 0.0 {
                spans.push(span((*name).to_string(), at, us));
                at += us;
            }
        }
        spans
    }
}

/// A bounded ring of the slowest-path evidence: requests at or over
/// the threshold, newest kept, oldest evicted.
#[derive(Debug)]
pub struct SlowRing {
    threshold_ns: u64,
    cap: usize,
    entries: VecDeque<SlowRequest>,
    evicted: u64,
}

/// Ring capacity: enough to hold a burst, small enough to never
/// matter for memory.
pub const SLOW_RING_CAP: usize = 256;

impl SlowRing {
    /// A ring recording requests slower than `threshold`.
    pub fn new(threshold: Duration) -> SlowRing {
        SlowRing {
            threshold_ns: threshold.as_nanos() as u64,
            cap: SLOW_RING_CAP,
            entries: VecDeque::new(),
            evicted: 0,
        }
    }

    /// The recording threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Records one slow request, evicting the oldest at capacity.
    pub fn offer(&mut self, entry: SlowRequest) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(entry);
    }

    /// Entries currently held, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &SlowRequest> {
        self.entries.iter()
    }

    /// How many entries the ring has evicted (so a dump can say it is
    /// a suffix, not the whole story).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The ring as JSONL, one request per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(
                &serde_json::to_string(&entry.to_value()).expect("slow entries serialize"),
            );
            out.push('\n');
        }
        out
    }

    /// The ring as a Chrome trace document (via
    /// `chrome_trace_with_spans`, so engine `TraceEvent`s could ride
    /// along on the same timeline).
    pub fn chrome_trace(&self) -> Value {
        let spans = self
            .entries
            .iter()
            .flat_map(SlowRequest::chrome_spans)
            .collect();
        chrome_trace_with_spans(&[], spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished_span() -> RequestSpan {
        let mut span = RequestSpan::new("event", 1, Some(7), 1_000);
        span.record(Phase::Quota, Duration::from_nanos(500));
        span.record(Phase::Apply, Duration::from_nanos(2_000));
        span.record(Phase::Journal, Duration::from_nanos(3_000));
        span.fsyncs = 1;
        span.record(Phase::Encode, Duration::from_nanos(250));
        span.finish();
        span
    }

    #[test]
    fn spans_accumulate_phases_and_total_covers_them() {
        let mut span = finished_span();
        assert_eq!(span.phase_ns, [1_000, 500, 2_000, 3_000, 250]);
        let total = span.finish();
        // Total includes decode plus wall time since open, which
        // bounds the timed phases after decode from above.
        assert!(total >= 1_000);
        // finish() is stable.
        assert_eq!(span.finish(), total);
    }

    #[test]
    fn wire_stats_fold_spans_into_registry_names() {
        let mut stats = WireStats::default();
        let span = finished_span();
        stats.record(&span, 10_000, true);
        let mut refused = RequestSpan::new("batch", 8, None, 100);
        refused.quota_refused = true;
        let total = refused.finish();
        stats.record(&refused, total, false);

        assert_eq!(stats.requests, 2);
        assert_eq!(stats.traced_requests, 1);
        assert_eq!(stats.quota_refusals, 1);
        assert_eq!(stats.journal_fsyncs, 1);
        assert_eq!(stats.slow_requests, 1);
        assert_eq!(stats.latency_us.count(), 2);

        let mut registry = MetricsRegistry::new();
        stats.fold_into(&mut registry);
        assert_eq!(registry.histogram("request_latency_us").unwrap().count(), 2);
        assert_eq!(registry.counter("request_decode_ns"), 1_100);
        assert_eq!(registry.counter("request_journal_ns"), 3_000);
        assert_eq!(registry.counter("requests"), 2);
        assert_eq!(registry.counter("quota_refusals"), 1);
        assert_eq!(registry.counter("journal_fsyncs"), 1);
        assert_eq!(registry.counter("slow_requests"), 1);

        // An untouched accumulator publishes nothing (a tenant that
        // never saw a placement keeps its page lean).
        let mut empty = MetricsRegistry::new();
        WireStats::default().fold_into(&mut empty);
        assert_eq!(empty.counter("requests"), 0);
        assert!(empty.histogram("request_latency_us").is_none());
    }

    #[test]
    fn slow_ring_bounds_entries_and_renders_both_dumps() {
        let mut ring = SlowRing::new(Duration::from_millis(0));
        let origin = Instant::now();
        for i in 0..(SLOW_RING_CAP + 3) {
            let mut span = RequestSpan::new("event", 1, (i % 2 == 0).then_some(i as u64), 10);
            span.finish();
            ring.offer(SlowRequest::from_span(&span, "acme", 1, origin));
        }
        assert_eq!(ring.entries().count(), SLOW_RING_CAP);
        assert_eq!(ring.evicted(), 3);

        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), SLOW_RING_CAP);
        let first: Value = serde_json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("tenant").and_then(Value::as_str), Some("acme"));
        assert!(first.get("total_us").is_some());
        assert!(first.get("decode_us").is_some());

        let chrome = ring.chrome_trace();
        let events = chrome
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("chrome trace has traceEvents");
        // Each entry contributes a request span plus its decode span.
        assert!(events.len() >= 2 * SLOW_RING_CAP);
        let request_span = events
            .iter()
            .find(|e| {
                e.get("name")
                    .and_then(Value::as_str)
                    .is_some_and(|n| n.contains("trace="))
            })
            .expect("traced request span present");
        assert_eq!(
            request_span.get("pid").and_then(Value::as_int),
            Some(3),
            "server spans live on pid 3"
        );
    }
}
