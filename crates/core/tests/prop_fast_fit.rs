//! Equivalence of the tree-backed algorithms with their linear-scan
//! references.
//!
//! `FirstFitFast` / `BestFitFast` / `WorstFitFast` answer placements
//! from a `FitTree` index instead of scanning the snapshot; nothing
//! about the *packing* may change. These properties replay random
//! instances — dense with equal-time departure/arrival boundaries,
//! exact fills, and mid-run bin closures — through both
//! implementations and require placement-for-placement identical
//! outcomes (assignments, per-bin histories, usage accounting, and
//! peak concurrency; only the reported algorithm name differs).

use dbp_core::prelude::*;
use dbp_core::{PackingAlgorithm, PackingOutcome};
use dbp_numeric::rat;
use proptest::prelude::*;

/// Strategy: a well-formed instance with up to 40 items.
///
/// Quarter-grid arrivals and durations force many simultaneous
/// events (departure-before-arrival ties at equal timestamps); the
/// size law mixes tiny and near-unit items so both the "fits
/// somewhere" and "forces a new bin" branches fire constantly.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=60, 1i128..=20).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den); // in (0, 1]
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..40)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Runs both implementations and checks every outcome field except
/// the algorithm name.
fn assert_equivalent(
    inst: &Instance,
    fast: &mut dyn PackingAlgorithm,
    slow: &mut dyn PackingAlgorithm,
) -> Result<(), TestCaseError> {
    let f: PackingOutcome = Runner::new(inst).run(fast).expect("fast run succeeds");
    let s: PackingOutcome = Runner::new(inst).run(slow).expect("reference run succeeds");
    prop_assert_eq!(
        f.assignments(),
        s.assignments(),
        "{} diverged from {}",
        fast.name(),
        slow.name()
    );
    prop_assert_eq!(f.bins(), s.bins());
    prop_assert_eq!(f.total_usage(), s.total_usage());
    prop_assert_eq!(f.max_open_bins(), s.max_open_bins());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn first_fit_fast_is_bit_identical(inst in instance_strategy()) {
        assert_equivalent(&inst, &mut FirstFitFast::new(), &mut FirstFit::new())?;
    }

    #[test]
    fn best_fit_fast_is_bit_identical(inst in instance_strategy()) {
        assert_equivalent(&inst, &mut BestFitFast::new(), &mut BestFit::new())?;
    }

    #[test]
    fn worst_fit_fast_is_bit_identical(inst in instance_strategy()) {
        assert_equivalent(&inst, &mut WorstFitFast::new(), &mut WorstFit::new())?;
    }

    /// Reusing one fast-algorithm value across runs (engine calls
    /// `reset`) must not leak index state between runs.
    #[test]
    fn fast_algorithms_reset_cleanly(inst in instance_strategy()) {
        let mut ff = FirstFitFast::new();
        let first = Runner::new(&inst).run(&mut ff).unwrap();
        let second = Runner::new(&inst).run(&mut ff).unwrap();
        prop_assert_eq!(first, second);
    }
}

/// A deterministic adversarial sweep far bigger than the proptest
/// cases: a staircase of overlapping large items (every bin is
/// singleton, hundreds concurrently open) salted with small items
/// that slot into earlier bins. This is exactly the Θ(n·B) shape the
/// index exists for, so run it once at full size as a regression
/// anchor.
#[test]
fn staircase_equivalence_at_scale() {
    let n: i128 = 1500;
    let window: i128 = 300;
    let mut b = Instance::builder();
    for i in 0..n {
        let size = if i % 5 == 0 {
            rat(11 + (i * 13) % 23, 100) // small: joins an earlier bin
        } else {
            rat(51 + (i * 7) % 49, 100) // large: forces its own bin
        };
        b = b.item(size, rat(i, 1), rat(i + window, 1));
    }
    let inst = b.build().unwrap();
    let fast = Runner::new(&inst).run(&mut FirstFitFast::new()).unwrap();
    let slow = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    assert_eq!(fast.assignments(), slow.assignments());
    assert_eq!(fast.bins(), slow.bins());
    assert_eq!(fast.total_usage(), slow.total_usage());
    assert!(
        fast.max_open_bins() >= window as usize / 2,
        "staircase should keep hundreds of bins concurrently open, got {}",
        fast.max_open_bins()
    );
}
