//! Equivalence of the chunked (autovectorizing) residual-gap scans
//! with their per-slot scalar references.
//!
//! The [`dbp_core::scan`] sweeps process gaps eight lanes at a time
//! with branchless min/max folds; the `*_scalar` functions are the
//! obviously-correct one-slot-at-a-time definitions. Every policy
//! must agree with its reference on both the hit/miss decision and
//! the *position* — First Fit's lowest index, Best Fit's
//! tightest-then-lowest, Worst Fit's widest-then-lowest — across
//! ragged lengths (remainder lanes), saturated arrays, and dense tie
//! plateaus.

use dbp_core::scan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Uniform random gaps at ragged lengths around the 8-lane chunk
    /// boundary.
    #[test]
    fn chunked_scans_match_scalar_references(
        gaps in prop::collection::vec(0u64..=256, 0..=67),
        size in 1u64..=256,
    ) {
        prop_assert_eq!(
            scan::first_fit(&gaps, size),
            scan::first_fit_scalar(&gaps, size)
        );
        prop_assert_eq!(
            scan::best_fit(&gaps, size),
            scan::best_fit_scalar(&gaps, size)
        );
        prop_assert_eq!(
            scan::worst_fit(&gaps, size),
            scan::worst_fit_scalar(&gaps, size)
        );
    }

    /// Tie-heavy arrays: gaps drawn from a three-value alphabet so
    /// equal-gap plateaus span whole chunks, stressing the
    /// lowest-index tie-break inside and across lanes.
    #[test]
    fn chunked_scans_break_ties_like_scalar(
        picks in prop::collection::vec(0usize..3, 0..=67),
        size in 1u64..=8,
    ) {
        let alphabet = [3u64, 8, 20];
        let gaps: Vec<u64> = picks.iter().map(|&p| alphabet[p]).collect();
        prop_assert_eq!(
            scan::first_fit(&gaps, size),
            scan::first_fit_scalar(&gaps, size)
        );
        prop_assert_eq!(
            scan::best_fit(&gaps, size),
            scan::best_fit_scalar(&gaps, size)
        );
        prop_assert_eq!(
            scan::worst_fit(&gaps, size),
            scan::worst_fit_scalar(&gaps, size)
        );
    }
}
