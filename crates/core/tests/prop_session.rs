//! Property-based tests of the streaming session layer.
//!
//! The contract under test (DESIGN.md, "Streaming sessions"): feeding
//! a session the canonical event stream of an instance produces an
//! outcome *bit-identical* to the batch [`Runner`] replay — same
//! assignments, same usage intervals, same totals — for every
//! algorithm and engine backend, and a session checkpointed and
//! resumed at any point finishes exactly like one that never stopped.

use dbp_core::prelude::*;
use dbp_core::session::{Session, SessionSnapshot};
use dbp_core::{event_schedule, PackingAlgorithm};
use dbp_numeric::rat;
use dbp_simcore::EventClass;
use proptest::prelude::*;

/// Strategy: a well-formed instance with up to 20 items, sizes from
/// small fractions, arrivals on a quarter grid — lots of equal-time
/// ties so the departure-before-arrival canonical order is exercised.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=40, 1i128..=16).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den);
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..20)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Strategy: an instance that fits a `TickGrid::new(4, 8)` — sizes
/// are eighths, times are quarters — so Auto sessions with a declared
/// grid run on the integer tick engine.
fn gridded_instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 0i128..=40, 1i128..=16).prop_map(|(eighths, arr4, dur4)| {
        let size = rat(eighths, 8);
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..20)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// The canonical wire stream of an instance: the batch engine's own
/// event order (time-sorted, departures before arrivals at ties),
/// rendered as [`Event`]s.
fn events_of(inst: &Instance) -> Vec<Event> {
    event_schedule(inst)
        .iter()
        .map(|entry| match entry.class {
            EventClass::Arrival => Event::Arrive {
                id: entry.payload,
                size: inst.item(entry.payload).size,
                time: entry.time,
            },
            EventClass::Departure => Event::Depart {
                id: entry.payload,
                time: entry.time,
            },
            EventClass::Control => unreachable!("instances schedule no control events"),
        })
        .collect()
}

/// Algorithms a session can stream through: the linear zoo plus the
/// indexed fast variants (which are also the tick-capable ones).
fn algorithms() -> Vec<Box<dyn PackingAlgorithm>> {
    vec![
        Box::new(FirstFit::new()),
        Box::new(BestFit::new()),
        Box::new(WorstFit::new()),
        Box::new(FirstFitFast::new()),
        Box::new(BestFitFast::new()),
        Box::new(WorstFitFast::new()),
    ]
}

/// Streams `events` into a fresh session built by `make` and finishes
/// it.
fn stream(
    events: &[Event],
    make: impl FnOnce() -> Result<Session<'static>, SessionError>,
) -> PackingOutcome {
    let mut session = make().expect("session builds");
    session.ingest(events).expect("canonical stream is valid");
    session.finish().expect("finish after a valid stream")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Streaming one event at a time is bit-identical to the batch
    /// replay, for every algorithm, linear and indexed.
    #[test]
    fn streaming_matches_batch_bit_for_bit(inst in instance_strategy()) {
        let events = events_of(&inst);
        for mut algo in algorithms() {
            let batch = Runner::new(&inst)
                .backend(Backend::Exact)
                .run(algo.as_mut())
                .unwrap();
            let name = batch.algorithm().to_string();
            let streamed = match name.as_str() {
                "FirstFit" => stream(&events, || Session::builder(FirstFit::new()).build()),
                "BestFit" => stream(&events, || Session::builder(BestFit::new()).build()),
                "WorstFit" => stream(&events, || Session::builder(WorstFit::new()).build()),
                "FirstFitFast" => stream(&events, || Session::builder(FirstFitFast::new()).build()),
                "BestFitFast" => stream(&events, || Session::builder(BestFitFast::new()).build()),
                "WorstFitFast" => stream(&events, || Session::builder(WorstFitFast::new()).build()),
                other => unreachable!("unexpected algorithm {other}"),
            };
            prop_assert_eq!(streamed, batch);
        }
    }

    /// With a declared grid, an Auto session runs the integer tick
    /// engine — and its outcome is still bit-identical to the exact
    /// batch replay.
    #[test]
    fn tick_sessions_match_exact_batch(inst in gridded_instance_strategy()) {
        let events = events_of(&inst);
        let batch = Runner::new(&inst)
            .backend(Backend::Exact)
            .run(&mut FirstFitFast::new())
            .unwrap();
        let mut session = Session::builder(FirstFitFast::new())
            .grid(TickGrid::new(4, 8))
            .build()
            .unwrap();
        session.ingest(&events).unwrap();
        if !events.is_empty() {
            prop_assert!(session.tick_active(), "grid declared but tick not engaged");
        }
        prop_assert_eq!(session.finish().unwrap(), batch);
    }

    /// A session snapshotted after a random prefix and resumed from
    /// the checkpoint finishes exactly like one that never stopped.
    #[test]
    fn snapshot_resume_is_seamless(inst in instance_strategy(), cut in 0usize..=40) {
        let events = events_of(&inst);
        let full = stream(&events, || Session::builder(FirstFit::new()).build());

        let cut = cut.min(events.len());
        let mut first = Session::builder(FirstFit::new()).build().unwrap();
        first.ingest(&events[..cut]).unwrap();
        let checkpoint = first.snapshot().unwrap();

        let mut resumed = Session::resume(&checkpoint).unwrap();
        prop_assert_eq!(resumed.metrics(), first.metrics());
        resumed.ingest(&events[cut..]).unwrap();
        prop_assert_eq!(resumed.finish().unwrap(), full);
    }

    /// Live metrics agree with the finished outcome: after the last
    /// event, accrued usage equals the outcome's total usage and the
    /// bin tallies match.
    #[test]
    fn final_metrics_agree_with_outcome(inst in instance_strategy()) {
        let events = events_of(&inst);
        let mut session = Session::builder(BestFit::new()).build().unwrap();
        session.ingest(&events).unwrap();
        let metrics = session.metrics();
        let outcome = session.finish().unwrap();
        prop_assert_eq!(metrics.events as usize, events.len());
        prop_assert_eq!(metrics.arrivals as usize, inst.len());
        prop_assert_eq!(metrics.departures as usize, inst.len());
        prop_assert_eq!(metrics.bins_opened, outcome.bins().len());
        prop_assert_eq!(metrics.usage_time, outcome.total_usage());
        prop_assert_eq!(metrics.open_bins, 0);
        prop_assert_eq!(metrics.active_items, 0);
    }
}

// ---------------------------------------------------------------
// Typed rejection: every contract violation maps to a specific
// `SessionError`, and a rejected event never corrupts the session.
// ---------------------------------------------------------------

#[test]
fn rejects_departure_after_arrival_at_same_instant() {
    let mut session = Session::builder(FirstFit::new()).build().unwrap();
    session.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
    session.arrive(ItemId(1), rat(1, 4), rat(5, 1)).unwrap();
    // Departure at t=5 after an arrival at t=5: half-open intervals
    // require departures first, so this must be a typed rejection.
    let err = session.depart(ItemId(0), rat(5, 1)).unwrap_err();
    assert_eq!(err, SessionError::DepartureAfterArrival { time: rat(5, 1) });
    // The session is still usable: later departures proceed.
    session.depart(ItemId(0), rat(6, 1)).unwrap();
    session.depart(ItemId(1), rat(7, 1)).unwrap();
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.assignments().len(), 2);
}

#[test]
fn rejects_sizes_outside_unit_interval() {
    let mut session = Session::builder(FirstFit::new()).build().unwrap();
    let zero = session.arrive(ItemId(0), rat(0, 1), rat(0, 1)).unwrap_err();
    assert_eq!(
        zero,
        SessionError::InvalidSize {
            id: ItemId(0),
            size: rat(0, 1)
        }
    );
    let over = session.arrive(ItemId(0), rat(3, 2), rat(0, 1)).unwrap_err();
    assert_eq!(
        over,
        SessionError::InvalidSize {
            id: ItemId(0),
            size: rat(3, 2)
        }
    );
    // Size exactly 1 is legal.
    session.arrive(ItemId(0), rat(1, 1), rat(0, 1)).unwrap();
}

#[test]
fn rejects_time_regression_and_unknown_departure_as_packing_errors() {
    let mut session = Session::builder(FirstFit::new()).build().unwrap();
    session.arrive(ItemId(0), rat(1, 2), rat(10, 1)).unwrap();
    let back = session.arrive(ItemId(1), rat(1, 2), rat(9, 1)).unwrap_err();
    assert!(matches!(back, SessionError::Packing(_)), "{back:?}");
    let ghost = session.depart(ItemId(7), rat(11, 1)).unwrap_err();
    assert!(matches!(ghost, SessionError::Packing(_)), "{ghost:?}");
}

#[test]
fn ingest_reports_the_failing_index_and_applies_the_prefix() {
    let events = vec![
        Event::Arrive {
            id: ItemId(0),
            size: rat(1, 2),
            time: rat(0, 1),
        },
        Event::Arrive {
            id: ItemId(1),
            size: rat(5, 2), // invalid size: rejected at index 1
            time: rat(1, 1),
        },
        Event::Depart {
            id: ItemId(0),
            time: rat(2, 1),
        },
    ];
    let mut session = Session::builder(FirstFit::new()).build().unwrap();
    let err = session.ingest(&events).unwrap_err();
    assert_eq!(err.index, 1);
    assert!(matches!(err.error, SessionError::InvalidSize { .. }));
    // Events before the failing index were applied; nothing after.
    let metrics = session.metrics();
    assert_eq!(metrics.events, 1);
    assert!(session.is_active(ItemId(0)));
}

#[test]
fn snapshot_without_checkpoints_is_a_typed_error() {
    let mut session = Session::builder(FirstFit::new())
        .without_checkpoints()
        .build()
        .unwrap();
    session.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
    assert_eq!(
        session.snapshot().unwrap_err(),
        SessionError::CheckpointsDisabled
    );
}

#[test]
fn resume_rejects_unknown_and_mismatched_algorithms() {
    let snapshot = SessionSnapshot {
        algorithm: "NoSuchFit".to_string(),
        backend: Backend::Auto,
        grid: None,
        telemetry: false,
        events: Vec::new(),
    };
    assert_eq!(
        Session::resume(&snapshot).unwrap_err(),
        SessionError::UnknownAlgorithm("NoSuchFit".to_string())
    );
    assert_eq!(
        Session::resume_with(&snapshot, Box::new(FirstFit::new())).unwrap_err(),
        SessionError::AlgorithmMismatch {
            expected: "NoSuchFit".to_string(),
            got: "FirstFit".to_string(),
        }
    );
}

#[test]
fn strict_tick_sessions_reject_off_grid_events() {
    let mut session = Session::builder(FirstFitFast::new())
        .backend(Backend::Tick)
        .grid(TickGrid::new(1, 4))
        .build()
        .unwrap();
    session.arrive(ItemId(0), rat(1, 2), rat(0, 1)).unwrap();
    let err = session.arrive(ItemId(1), rat(1, 3), rat(1, 1)).unwrap_err();
    assert_eq!(
        err,
        SessionError::OffGrid {
            what: "size",
            value: rat(1, 3)
        }
    );
}

#[test]
fn equal_time_burst_streams_like_batch() {
    // Dense tie at t=1: two departures then three arrivals, all at
    // the same instant — the canonical order the batch engine uses.
    let inst = Instance::builder()
        .item(rat(1, 2), rat(0, 1), rat(1, 1))
        .item(rat(1, 2), rat(0, 1), rat(1, 1))
        .item(rat(1, 2), rat(1, 1), rat(2, 1))
        .item(rat(1, 2), rat(1, 1), rat(2, 1))
        .item(rat(1, 2), rat(1, 1), rat(2, 1))
        .build()
        .unwrap();
    let batch = Runner::new(&inst)
        .backend(Backend::Exact)
        .run(&mut FirstFit::new())
        .unwrap();
    let streamed = stream(&events_of(&inst), || {
        Session::builder(FirstFit::new()).build()
    });
    assert_eq!(streamed, batch);
}
