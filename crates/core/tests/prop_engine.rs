//! Property-based tests of the packing engine and algorithm zoo.
//!
//! These establish the *model-level* invariants every run must
//! satisfy regardless of algorithm: conservation (every item packed
//! exactly once), capacity feasibility, exact usage accounting, and
//! the defining greediness property of the Any-Fit family.

use dbp_core::prelude::*;
use dbp_core::PackingAlgorithm;
use dbp_numeric::{rat, IntervalSet, Rational};
use proptest::prelude::*;

/// Strategy: a well-formed instance with up to 24 items.
///
/// Sizes are drawn from `{1/8, 1/6, …, 1}`-style small fractions,
/// arrivals from a small integer-ish grid with halves and quarters,
/// durations `≥ 1/2`. This hits lots of simultaneous-event ties,
/// exact fills and bin closings.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=40, 1i128..=16).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den); // in (0, 1]
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..24)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Every algorithm under test, freshly constructed.
fn algorithms() -> Vec<Box<dyn PackingAlgorithm>> {
    vec![
        Box::new(FirstFit::new()),
        Box::new(BestFit::new()),
        Box::new(WorstFit::new()),
        Box::new(LastFit::new()),
        Box::new(NextFit::new()),
        Box::new(RandomFit::seeded(0xDBF)),
        Box::new(HybridFirstFit::classic()),
    ]
}

/// Replays `inst` with `algo` and checks the universal outcome
/// invariants shared by all algorithms.
fn check_universal(inst: &Instance, algo: &mut dyn PackingAlgorithm) -> PackingOutcome {
    let out = Runner::new(inst).run(algo).unwrap_or_else(|e| {
        panic!("{} failed on valid instance: {e}", algo.name());
    });

    // (1) Conservation: every item assigned exactly once.
    assert_eq!(out.assignments().len(), inst.len(), "{}", algo.name());
    for item in inst.items() {
        assert!(
            out.bin_of(item.id).is_some(),
            "{} lost {}",
            algo.name(),
            item.id
        );
    }

    // (2) Bin membership is consistent with assignments.
    for bin in out.bins() {
        for id in &bin.items {
            assert_eq!(out.bin_of(*id), Some(bin.id));
        }
    }

    // (3) Capacity feasibility, replayed independently of the engine:
    // at every event time, the total size of active items per bin ≤ 1.
    for t in inst.event_times() {
        for bin in out.bins() {
            let level: Rational = bin
                .items
                .iter()
                .map(|id| inst.item(*id))
                .filter(|r| r.active_at(t))
                .map(|r| r.size)
                .sum();
            assert!(
                level <= Rational::ONE,
                "{}: bin {} over capacity at t={t}: {level}",
                algo.name(),
                bin.id
            );
        }
    }

    // (4) Usage periods are exactly the hull of the members' activity:
    // opened at the first arrival, closed at the last departure.
    for bin in out.bins() {
        let first_arrival = bin
            .items
            .iter()
            .map(|id| inst.item(*id).arrival())
            .min()
            .expect("bins are never empty");
        let last_departure = bin
            .items
            .iter()
            .map(|id| inst.item(*id).departure())
            .max()
            .unwrap();
        assert_eq!(bin.usage.lo(), first_arrival, "{}", algo.name());
        assert_eq!(bin.usage.hi(), last_departure, "{}", algo.name());
        // A bin must be continuously non-empty over its usage period:
        // the union of member activity covers the usage interval.
        let member_union =
            IntervalSet::from_intervals(bin.items.iter().map(|id| inst.item(*id).interval));
        assert_eq!(
            member_union.measure(),
            bin.usage.len(),
            "{}: bin {} went empty mid-usage (would have closed)",
            algo.name(),
            bin.id
        );
    }

    // (5) Objective accounting: total usage is the sum of periods.
    let direct: Rational = out.bins().iter().map(|b| b.usage.len()).sum();
    assert_eq!(out.total_usage(), direct);

    // (6) Lower bounds (Propositions 1 and 2 applied to ANY packing):
    // usage ≥ span(R) and usage ≥ vol(R).
    assert!(out.total_usage() >= inst.span(), "{}", algo.name());
    assert!(out.total_usage() >= inst.vol(), "{}", algo.name());

    // (7) The union of usage periods is exactly the active-time union.
    let usage_union = IntervalSet::from_intervals(out.bins().iter().map(|b| b.usage));
    assert_eq!(usage_union, inst.active_set(), "{}", algo.name());

    // (8) Level integral per bin equals the members' demand.
    for bin in out.bins() {
        let demand: Rational = bin.items.iter().map(|id| inst.item(*id).demand()).sum();
        assert_eq!(bin.level_integral, demand, "{}", algo.name());
    }

    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_algorithms_satisfy_universal_invariants(inst in instance_strategy()) {
        for mut algo in algorithms() {
            check_universal(&inst, algo.as_mut());
        }
    }

    #[test]
    fn any_fit_algorithms_never_open_unnecessarily(inst in instance_strategy()) {
        // Defining property (§I): an Any-Fit algorithm opens a new bin
        // only when no open bin fits. We verify by replaying the
        // outcome: when an item opened bin k, every bin open at that
        // moment must have lacked room.
        for mut algo in [
            Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>,
            Box::new(BestFit::new()),
            Box::new(WorstFit::new()),
            Box::new(LastFit::new()),
            Box::new(RandomFit::seeded(7)),
        ] {
            let out = Runner::new(&inst).run(algo.as_mut()).unwrap();
            for bin in out.bins() {
                let opener = bin.items[0];
                let t = inst.item(opener).arrival();
                let size = inst.item(opener).size;
                // Bins open at time t that were opened before this one:
                for other in out.bins() {
                    if other.id >= bin.id || !other.usage.contains_point(t) {
                        continue;
                    }
                    // Level of `other` at t, *after* same-instant
                    // departures, counting only items placed before
                    // the opener (same-instant arrivals run in id
                    // order):
                    let level: Rational = other
                        .items
                        .iter()
                        .map(|id| inst.item(*id))
                        .filter(|r| {
                            r.active_at(t) && (r.arrival() < t || r.id < opener)
                        })
                        .map(|r| r.size)
                        .sum();
                    prop_assert!(
                        level + size > Rational::ONE,
                        "{}: item {} opened {} while {} had room (level {} + size {})",
                        out.algorithm(), opener, bin.id, other.id, level, size
                    );
                }
            }
        }
    }

    #[test]
    fn first_fit_chooses_earliest_feasible(inst in instance_strategy()) {
        // Sharper FF-specific check: each item went to the
        // earliest-opened bin that had room at its arrival.
        let out = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        for item in inst.items() {
            let chosen = out.bin_of(item.id).unwrap();
            let t = item.arrival();
            for other in out.bins() {
                if other.id >= chosen || !other.usage.contains_point(t) {
                    continue;
                }
                if other.usage.lo() == t && other.items[0] >= item.id {
                    continue; // opened by a later same-instant item
                }
                let level: Rational = other
                    .items
                    .iter()
                    .map(|id| inst.item(*id))
                    .filter(|r| {
                        r.active_at(t) && (r.arrival() < t || r.id < item.id)
                    })
                    .map(|r| r.size)
                    .sum();
                prop_assert!(
                    level + item.size > Rational::ONE,
                    "FF skipped feasible earlier bin {} for {}",
                    other.id, item.id
                );
            }
        }
    }

    #[test]
    fn runs_are_deterministic(inst in instance_strategy()) {
        for mut algo in algorithms() {
            let a = Runner::new(&inst).run(algo.as_mut()).unwrap();
            let b = Runner::new(&inst).run(algo.as_mut()).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// MinUsageTime DBP is invariant under time scaling and
    /// translation: same assignments, costs scaled/unchanged.
    #[test]
    fn time_scale_and_translation_invariance(
        inst in instance_strategy(),
        c_num in 1i128..=5,
        c_den in 1i128..=5,
        dt in -20i128..=20,
    ) {
        let c = rat(c_num, c_den);
        let base = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();

        let scaled = inst.scaled_time(c);
        let scaled_out = Runner::new(&scaled).run(&mut FirstFit::new()).unwrap();
        prop_assert_eq!(scaled_out.assignments(), base.assignments());
        prop_assert_eq!(scaled_out.total_usage(), base.total_usage() * c);
        prop_assert_eq!(scaled.mu(), inst.mu());

        let moved = inst.translated(rat(dt, 1));
        let moved_out = Runner::new(&moved).run(&mut FirstFit::new()).unwrap();
        prop_assert_eq!(moved_out.assignments(), base.assignments());
        prop_assert_eq!(moved_out.total_usage(), base.total_usage());
    }

    /// Concatenated disjoint phases cost exactly the sum of the
    /// phases (bins never span the gap).
    #[test]
    fn concatenation_is_additive(a in instance_strategy(), b in instance_strategy()) {
        let joined = a.then(&b, Rational::ONE);
        let cost_a = Runner::new(&a).run(&mut FirstFit::new()).unwrap().total_usage();
        let cost_b = Runner::new(&b).run(&mut FirstFit::new()).unwrap().total_usage();
        let cost_joined = Runner::new(&joined).run(&mut FirstFit::new()).unwrap().total_usage();
        prop_assert_eq!(cost_joined, cost_a + cost_b);
    }

    #[test]
    fn hybrid_pools_are_class_pure(inst in instance_strategy()) {
        let mut hff = HybridFirstFit::classic();
        let out = Runner::new(&inst).run(&mut hff).unwrap();
        for bin in out.bins() {
            let classes: Vec<usize> = bin
                .items
                .iter()
                .map(|id| hff.class_of(inst.item(*id).size))
                .collect();
            prop_assert!(classes.windows(2).all(|w| w[0] == w[1]),
                "mixed-class bin {:?}", bin);
        }
    }
}
