//! Equivalence of the tick-compiled integer engine with the exact
//! Rational engine.
//!
//! Tick compilation rescales an instance onto its denominator-LCM
//! grid and replays it in pure `u64`/`u128` arithmetic; nothing about
//! the *packing* may change. These properties replay random
//! instances — dense with equal-time departure/arrival boundaries,
//! exact fills, and mid-run bin closures — through the `TickEngine`
//! and through both the linear-scan references and the tree-backed
//! `*Fast` algorithms, and require **bit-identical** outcomes:
//! assignments, per-bin usage intervals, exact level integrals and
//! peaks, the `Σ_k |U_k|` objective, and peak concurrency. A separate
//! property drives instances that cannot compile (oversized LCMs,
//! out-of-range horizons) through `run_packing_auto` and asserts the
//! Rational fallback is transparent.

use dbp_core::prelude::*;
use dbp_core::tick::{CompiledInstance, TickPolicy};
use dbp_core::{PackingAlgorithm, PackingOutcome};
use dbp_numeric::rat;
use proptest::prelude::*;

/// Strategy: a well-formed instance with up to 40 items on a mixed
/// grid (halves..eighths for sizes, quarters for times), forcing many
/// simultaneous events and nontrivial LCMs.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=8, 1i128..=8, 0i128..=60, 1i128..=20).prop_map(|(num, den, arr4, dur4)| {
        let size = rat(num.min(den), den); // in (0, 1]
        let arrival = rat(arr4, 4);
        let duration = rat(dur4, 4);
        (size, arrival, arrival + duration)
    });
    prop::collection::vec(item, 0..40)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Strategy: equal-timestamp bursts — every item arrives at one of
/// only three instants and departs at one of three others, so the
/// half-open tie-breaking (departures first, then arrivals in item
/// order) decides nearly every placement.
fn burst_strategy() -> impl Strategy<Value = Instance> {
    let item = (1i128..=6, 0i128..=2, 0i128..=2).prop_map(|(num, slot, hold)| {
        let size = rat(num, 6);
        let arrival = rat(slot * 2, 1);
        let departure = arrival + rat(2 * (hold + 1), 1);
        (size, arrival, departure)
    });
    prop::collection::vec(item, 1..30)
        .prop_map(|specs| Instance::new(specs).expect("strategy produces valid specs"))
}

/// Strategy: instances guaranteed to overflow tick compilation — a
/// salted mix of normal items plus one item whose timestamp
/// denominators are coprime five-digit primes (LCM far past the
/// `u32::MAX` scale cap).
fn overflow_strategy() -> impl Strategy<Value = Instance> {
    instance_strategy().prop_map(|inst| {
        let mut specs: Vec<_> = inst
            .items()
            .iter()
            .map(|it| (it.size, it.arrival(), it.departure()))
            .collect();
        specs.push((rat(1, 2), rat(1, 99991), rat(1, 99991) + rat(1, 99989)));
        Instance::new(specs).expect("overflow salt keeps specs valid")
    })
}

/// Compiles and runs `policy`, then checks full outcome equality
/// (name included) against the linear reference and field equality
/// against the `*Fast` tree algorithm.
fn assert_tick_equivalent(
    inst: &Instance,
    policy: TickPolicy,
    linear: &mut dyn PackingAlgorithm,
    fast: &mut dyn PackingAlgorithm,
) -> Result<(), TestCaseError> {
    let compiled = CompiledInstance::compile(inst).expect("strategy instances compile");
    let tick: PackingOutcome = compiled.run(policy).expect("tick run succeeds");
    let exact: PackingOutcome = Runner::new(inst)
        .run(linear)
        .expect("reference run succeeds");
    prop_assert_eq!(
        &tick,
        &exact,
        "tick {} diverged from reference",
        policy.name()
    );
    let tree: PackingOutcome = Runner::new(inst).run(fast).expect("fast run succeeds");
    prop_assert_eq!(tick.assignments(), tree.assignments());
    prop_assert_eq!(tick.bins(), tree.bins());
    prop_assert_eq!(tick.total_usage(), tree.total_usage());
    prop_assert_eq!(tick.max_open_bins(), tree.max_open_bins());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn tick_first_fit_is_bit_identical(inst in instance_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::FirstFit,
            &mut FirstFit::new(),
            &mut FirstFitFast::new(),
        )?;
    }

    #[test]
    fn tick_best_fit_is_bit_identical(inst in instance_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::BestFit,
            &mut BestFit::new(),
            &mut BestFitFast::new(),
        )?;
    }

    #[test]
    fn tick_worst_fit_is_bit_identical(inst in instance_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::WorstFit,
            &mut WorstFit::new(),
            &mut WorstFitFast::new(),
        )?;
    }

    /// Equal-timestamp bursts: the integer engine must reproduce the
    /// heap's departure-before-arrival, item-order tie-breaking.
    #[test]
    fn tick_handles_equal_time_bursts(inst in burst_strategy()) {
        assert_tick_equivalent(
            &inst,
            TickPolicy::FirstFit,
            &mut FirstFit::new(),
            &mut FirstFitFast::new(),
        )?;
        assert_tick_equivalent(
            &inst,
            TickPolicy::BestFit,
            &mut BestFit::new(),
            &mut BestFitFast::new(),
        )?;
    }

    /// Instances that refuse to compile run through the Rational
    /// fallback — transparently, algorithm name included.
    #[test]
    fn auto_fallback_is_transparent(inst in overflow_strategy()) {
        prop_assert!(CompiledInstance::compile(&inst).is_err());
        for (policy, mut linear) in [
            (TickPolicy::FirstFit, Box::new(FirstFit::new()) as Box<dyn PackingAlgorithm>),
            (TickPolicy::BestFit, Box::new(BestFit::new())),
            (TickPolicy::WorstFit, Box::new(WorstFit::new())),
        ] {
            #[allow(deprecated)] // compat-shim coverage: the legacy auto entry point
            let auto = run_packing_auto(&inst, policy).expect("fallback run succeeds");
            let exact = Runner::new(&inst).run(linear.as_mut()).expect("reference run succeeds");
            prop_assert_eq!(auto, exact, "fallback {} diverged", policy.name());
        }
    }

    /// `run_packing_auto` on compilable instances takes the tick path
    /// and still equals the reference exactly.
    #[test]
    fn auto_takes_the_tick_path_when_possible(inst in instance_strategy()) {
        prop_assert!(CompiledInstance::compile(&inst).is_ok());
        #[allow(deprecated)] // compat-shim coverage: the legacy auto entry point
        let auto = run_packing_auto(&inst, TickPolicy::FirstFit).unwrap();
        let exact = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
        prop_assert_eq!(auto, exact);
    }
}

/// Deterministic anchor at scale: the staircase instance keeps
/// hundreds of bins concurrently open; the compiled replay must agree
/// with the exact engine on every book.
#[test]
fn staircase_tick_equivalence_at_scale() {
    let n: i128 = 1500;
    let window: i128 = 300;
    let mut b = Instance::builder();
    for i in 0..n {
        let size = if i % 5 == 0 {
            rat(11 + (i * 13) % 23, 100)
        } else {
            rat(51 + (i * 7) % 49, 100)
        };
        b = b.item(size, rat(i, 1), rat(i + window, 1));
    }
    let inst = b.build().unwrap();
    let compiled = CompiledInstance::compile(&inst).unwrap();
    assert_eq!(compiled.time_scale(), 1);
    assert_eq!(compiled.size_scale(), 100);
    let tick = compiled.run(TickPolicy::FirstFit).unwrap();
    let exact = Runner::new(&inst).run(&mut FirstFit::new()).unwrap();
    assert_eq!(tick, exact);
    assert!(tick.max_open_bins() >= window as usize / 2);
}
